"""Private counting on hierarchical domains (Theorems 8 and 9).

The paper's tree-counting technique applies to any monotone counting function
on a tree.  This example uses the two applications discussed in Section 1.1.3:

* a hierarchical histogram over a state -> area -> zip-code hierarchy
  ("how many customers live below each node?"), and
* colored tree counting ("how many distinct products were bought below each
  node?"), under both pure and approximate DP.

Run with::

    python examples/hierarchical_tree_counting.py
"""

from __future__ import annotations

import numpy as np

from repro import PrivacyBudget, private_colored_counts, private_hierarchical_counts
from repro.trees.colored import ColoredItem, exact_colored_counts, exact_hierarchical_counts
from repro.trees.hierarchy import build_hierarchy_from_paths

STATES = ("CA", "NY", "TX")
AREAS_PER_STATE = 3
ZIPS_PER_AREA = 4
PRODUCTS = ("book", "lamp", "mug", "pen", "chair")


def build_geography():
    paths = []
    for state in STATES:
        for area_index in range(AREAS_PER_STATE):
            area = f"{state}-area{area_index}"
            for zip_index in range(ZIPS_PER_AREA):
                paths.append((state, area, f"{area}-zip{zip_index}"))
    return build_hierarchy_from_paths(paths), paths


def main() -> None:
    rng = np.random.default_rng(5)
    tree, zip_paths = build_geography()
    print(
        f"hierarchy: {tree.num_nodes} nodes, height {tree.height()}, "
        f"{len(tree.leaves())} zip codes"
    )

    # Customers: each customer lives in one zip code and bought one product.
    customers = [
        (zip_paths[int(rng.integers(0, len(zip_paths)))], PRODUCTS[int(rng.integers(0, len(PRODUCTS)))])
        for _ in range(2000)
    ]
    locations = [tuple(zip_path) for zip_path, _ in customers]
    items = [ColoredItem(tuple(zip_path), product) for zip_path, product in customers]

    # ------------------------------------------------------------------
    # Hierarchical histogram (Theorem 8, pure DP).
    # ------------------------------------------------------------------
    exact = exact_hierarchical_counts(tree, locations)
    result = private_hierarchical_counts(
        tree, locations, budget=PrivacyBudget(1.0), beta=0.05, rng=rng
    )
    print()
    print("customers per state (pure DP, epsilon = 1):")
    for state in STATES:
        node = ("path", (state,))
        print(
            f"  {state}: exact {exact[node]:5d}   noisy {result[node]:8.1f}"
        )
    worst = max(abs(result[node] - exact[node]) for node in tree.nodes())
    print(f"max error over all {tree.num_nodes} nodes: {worst:.1f} "
          f"(analytic bound {result.error_bound:.1f})")

    # ------------------------------------------------------------------
    # Colored tree counting (Theorem 9, approximate DP).
    # ------------------------------------------------------------------
    exact_colors = exact_colored_counts(tree, items)
    colored = private_colored_counts(
        tree, items, budget=PrivacyBudget(5.0, 1e-6), beta=0.05, rng=rng
    )
    print()
    print("distinct products per state (approximate DP, epsilon = 5):")
    for state in STATES:
        node = ("path", (state,))
        print(
            f"  {state}: exact {exact_colors[node]:3d}   noisy {colored[node]:6.1f}"
        )
    worst = max(abs(colored[node] - exact_colors[node]) for node in tree.nodes())
    print(
        f"max error over all nodes: {worst:.1f} "
        f"(analytic bound {colored.error_bound:.1f})"
    )


if __name__ == "__main__":
    main()
