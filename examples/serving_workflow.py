"""End-to-end serving workflow: build under a ledger, store, serve, query.

This demo plays all three roles of the serving story in one process:

1. **Curator** — builds releases through the fluent ``Dataset`` API (two
   structure kinds of the same genome panel: the heavy-path trie and a
   Theorem 4 q-gram release) against a budget ledger with a global
   ``(epsilon, delta)`` cap, storing each release in a versioned on-disk
   release store.  A third build against the panel is refused by the
   ledger *before* it touches the data.
2. **Operator** — loads the store, compiles every release to the array form
   and serves them over HTTP (the same path as ``dpsc serve``).
3. **Analyst** — uses the stdlib client for single queries, one vectorized
   batch of thousands of patterns, and server-side mining; all post-
   processing, all free of privacy cost, and bit-identical to querying the
   in-memory structure.

Run with::

    python examples/serving_workflow.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro import (
    BudgetLedger,
    Dataset,
    PrivacyBudget,
    QueryService,
    ReleaseStore,
    ServingClient,
)
from repro.exceptions import BudgetExceededError
from repro.serving import create_server
from repro.workloads.genome import genome_with_motifs
from repro.workloads.transit import transit_trajectories

EPSILON = 20.0
CAP = PrivacyBudget(epsilon=45.0, delta=1e-5)


def curator(store: ReleaseStore, ledger: BudgetLedger) -> None:
    print("=== curator ===")
    print(f"global cap: epsilon = {CAP.epsilon}, delta = {CAP.delta}")
    rng = np.random.default_rng(11)
    genome = genome_with_motifs(1000, 12, rng)
    genome_panel = (
        Dataset.from_database(genome)
        .with_budget(EPSILON)
        .with_beta(0.1)
        .with_threshold(40.0)
        .with_ledger(ledger, "genome-panel")
    )

    record = genome_panel.build("heavy-path", rng=rng).release(store, "genome")
    print(f"released genome v{record.version}: {record.num_patterns} patterns")

    # A second release of the *same* panel — this time the fixed-length
    # Theorem 4 q-gram structure — composes on the ledger: 2 * EPSILON = 40
    # of the 45 cap spent.
    record = (
        genome_panel.with_budget(EPSILON, 1e-6)
        .build("qgram-t4", rng=rng, q=4)
        .release(store, "genome-4grams")
    )
    print(f"released genome-4grams v{record.version}: {record.num_patterns} patterns")

    transit = transit_trajectories(1000, 12, rng)
    record = (
        Dataset.from_database(transit)
        .with_budget(EPSILON)
        .with_beta(0.1)
        .with_threshold(45.0)
        .with_ledger(ledger, "transit-trips")
        .build("heavy-path", rng=rng)
        .release(store, "transit")
    )
    print(f"released transit v{record.version}: {record.num_patterns} patterns")

    spent = ledger.spent("genome-panel")
    print(f"ledger[genome-panel]: spent epsilon = {spent.epsilon:g}")

    # A third genome-panel release would compose to 60 > 45: the ledger
    # must refuse it before any construction runs.
    try:
        genome_panel.build("heavy-path", rng=rng)
    except BudgetExceededError as error:
        print(f"third genome-panel build refused: {error}")


def analyst(client: ServingClient) -> None:
    print()
    print("=== analyst ===")
    for info in client.releases():
        marker = "*" if info["default"] else " "
        print(
            f"{marker} release {info['name']}: {info['num_patterns']} patterns, "
            f"epsilon = {info['epsilon']:g}, {info['compiled_bytes']} compiled bytes"
        )

    for pattern in ("ACG", "GGCC", "GATTACA"):
        count = client.query(pattern, release="genome")
        print(f"  query({pattern!r}) = {count:.1f}")

    # One vectorized round trip for thousands of patterns.
    alphabet = "ACGT"
    rng = np.random.default_rng(3)
    batch = [
        "".join(alphabet[i] for i in rng.integers(0, 4, size=rng.integers(1, 7)))
        for _ in range(5000)
    ]
    counts = client.batch(batch, release="genome")
    positive = sum(1 for c in counts if c > 0)
    print(f"  batch of {len(batch)} patterns: {positive} with positive counts")

    frequent = client.mine(60.0, release="genome", min_length=3)
    print(f"  mining at tau = 60: {[p for p, _ in frequent[:5]]}")

    # The q-gram release serves fixed-length traffic through the compiled
    # trie's uniform-length batch path.
    counts = client.batch(["ACGT", "GGCC", "TTTT"], release="genome-4grams")
    print(f"  genome-4grams batch: {[round(c, 1) for c in counts]}")

    health = client.healthz()
    print(
        f"  server health: {health['queries']} queries, "
        f"{health['batch_patterns']} batched patterns, "
        f"{health.get('micro_batches_flushed', 0)} micro-batches"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as directory:
        root = Path(directory)
        store = ReleaseStore(root / "releases")
        ledger = BudgetLedger(CAP, path=root / "ledger.json")
        curator(store, ledger)

        service = QueryService.from_store(store, default_release="genome")
        server = create_server(service, port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        print(f"\nserving {store.names()} on http://{host}:{port}")

        try:
            analyst(ServingClient(f"http://{host}:{port}"))
        finally:
            server.shutdown()
            server.server_close()
            service.close()


if __name__ == "__main__":
    main()
