"""Private q-gram publishing for genome-like data (Theorem 4).

Khatri et al. (2019) publish differentially private suffix-tree counts of
genomic sequences; Kim et al. (2021) extract frequent n-grams privately.
This example reproduces that pipeline with the paper's (epsilon, delta)-DP
fixed-length q-gram structure, which is built in near-linear time and only
ever stores q-grams that actually occur in the reads:

1. generate DNA-like reads with planted motifs (a stand-in for a private
   genome panel — see DESIGN.md "Substitutions");
2. build the Theorem 4 structure (kind ``"qgram-t4"`` of the unified API)
   for q = 4;
3. publish the noisy q-gram counts and compare them with the exact ones;
4. mine the frequent q-grams at the structure's own threshold.

Run with::

    python examples/genome_qgram_publishing.py
"""

from __future__ import annotations

import numpy as np

from repro import Dataset, mine_frequent_qgrams
from repro.analysis.metrics import mining_quality
from repro.strings.qgrams import qgram_capped_counts
from repro.workloads import genome_with_motifs

Q = 4
EPSILON = 25.0
DELTA = 1e-6


def main() -> None:
    rng = np.random.default_rng(11)
    reads = genome_with_motifs(
        1500, 16, rng, motifs=("ACGTAC", "GGCC"), planting_probability=0.7
    )
    print(
        f"reads: n = {reads.num_documents}, length = {reads.max_length}, "
        f"alphabet = {''.join(reads.alphabet)}"
    )

    # Document Count semantics (Delta = 1): each donor contributes at most
    # once to every q-gram, which is both the natural privacy unit for a
    # genome panel and the setting where Theorem 4's sqrt(ell * Delta) error
    # shines.
    structure = (
        Dataset.from_database(reads)
        .with_budget(EPSILON, DELTA)
        .with_beta(0.1)
        .with_contribution_cap(1)
        .build("qgram-t4", rng=rng, q=Q)
    )
    print(f"construction: {structure.metadata.construction}")
    print(f"construction time: {structure.profile.total_seconds:.2f}s")
    print(f"stored {Q}-grams: {structure.num_stored_patterns}")
    print(f"error bound alpha = {structure.error_bound:.1f}")

    exact = qgram_capped_counts(reads.documents, Q, delta=1)
    print()
    print("published counts for the ten most frequent 4-grams:")
    top = sorted(exact.items(), key=lambda item: -item[1])[:10]
    for qgram, count in top:
        print(f"  {qgram}: exact {count:5d}   noisy {structure.query(qgram):8.1f}")

    threshold = structure.metadata.threshold
    result = mine_frequent_qgrams(structure, threshold, q=Q)
    quality = mining_quality(
        result.pattern_set(), exact, threshold, result.alpha, restrict_to_length=Q
    )
    print()
    print(
        f"mining at tau = {threshold:.1f}: reported {quality.num_reported} q-grams "
        f"(exactly frequent: {quality.num_frequent}), precision "
        f"{quality.precision:.2f}, recall {quality.recall:.2f}"
    )
    print(
        "guarantee check (Definition 2): "
        f"recall over clearly-frequent = {quality.guarantee_recall:.2f}, "
        f"precision against clearly-infrequent = {quality.guarantee_precision:.2f}"
    )


if __name__ == "__main__":
    main()
