"""Privately counting user activity over time windows, continually.

Section 1.1.3 of the paper discusses counting over *time windows*: data
arrives bucketed by time slot, and the curator wants to publish counts
after every window, not once at the end.  Naive sequential composition
makes that ruinously expensive — T windows cost ``T * epsilon``.  The
continual-release pipeline brings it down to ``O(log T)``: windows are
epochs on an append-only :class:`~repro.api.CorpusStream`, and every
epoch's release is the *post-processing sum* of per-dyadic-interval
heavy-path structures (the classic binary-tree trick of
:func:`~repro.dp.canonical_cover`, applied to the epoch axis).  Each
window of documents lands in exactly one dyadic interval per level, so
same-level structures compose in parallel, and the total spend after T
windows is ``bit_length(T) * epsilon`` — the ``O(log T)`` tree bound.

This example streams eight windows of user trajectories (strings of
station ids) through an :class:`~repro.serving.EpochScheduler`:

1. every window publishes a fresh substring-count release into a
   versioned store, charged against a shared budget ledger;
2. the per-window *marginal* charge is the full epoch budget only at
   power-of-two windows and zero otherwise;
3. after the stream drains, any window's snapshot can still be queried:
   versions are pinned by epoch, and querying is free post-processing.

Run with::

    python examples/distinct_users_time_windows.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import CorpusStream, PrivacyBudget
from repro.core.params import ConstructionParams
from repro.serving import BudgetLedger, EpochScheduler, ReleaseStore

NUM_WINDOWS = 8          # e.g. 8 three-hour buckets ~ one day
USERS_PER_WINDOW = 15
TRIP_LENGTH = 10
STATIONS = "abcdefgh"
EPSILON = 8.0            # per-epoch budget of the tree schedule


def window_trajectories(rng: np.random.Generator) -> list[str]:
    """One window of activity: each user's trip as a station-id string."""
    trips = []
    for _ in range(USERS_PER_WINDOW):
        start = rng.integers(len(STATIONS))
        steps = rng.integers(-1, 2, size=TRIP_LENGTH - 1)
        stations = (start + np.concatenate([[0], np.cumsum(steps)])) % len(STATIONS)
        trips.append("".join(STATIONS[int(s)] for s in stations))
    return trips


def main() -> None:
    rng = np.random.default_rng(17)
    stream = CorpusStream(name="activity")
    params = ConstructionParams(budget=PrivacyBudget(EPSILON), beta=0.1)

    with tempfile.TemporaryDirectory() as scratch:
        store = ReleaseStore(Path(scratch) / "store")
        # The cap funds the whole horizon at the tree bound — a naive
        # schedule would blow through it halfway.
        levels = NUM_WINDOWS.bit_length()
        ledger = BudgetLedger(
            PrivacyBudget(levels * EPSILON, 1e-6),
            path=Path(scratch) / "ledger.json",
        )
        scheduler = EpochScheduler(stream, store, ledger, params=params, seed=17)

        print(f"continual release over {NUM_WINDOWS} time windows "
              f"(epoch budget epsilon = {EPSILON}):")
        for window in range(1, NUM_WINDOWS + 1):
            stream.append_epoch(window_trajectories(rng))   # the window closes...
            release = scheduler.run_epoch()                 # ...and is released
            print(
                f"  window {window}: v{release.version} published, "
                f"marginal eps {release.epsilon:4.1f}, "
                f"total spent {release.spent_epsilon:5.1f} "
                f"(naive composition would be {window * EPSILON:5.1f})"
            )

        total = scheduler.continual.total_epsilon
        print(
            f"\nafter {NUM_WINDOWS} windows: spent eps = {total:g} "
            f"= bit_length({NUM_WINDOWS}) * {EPSILON:g} — the O(log T) tree "
            f"bound — vs {NUM_WINDOWS * EPSILON:g} for naive re-release."
        )

        # Query the live head and a pinned historical window.  Both are
        # post-processing: no further privacy cost.
        service = scheduler.current_service()
        try:
            pattern = "ab"
            print(f"\nquery({pattern!r}) on the latest window's release: "
                  f"{service.query(pattern, 'activity'):.1f}")
        finally:
            service.close()
        half_day = NUM_WINDOWS // 2
        pinned_version = scheduler.version_for_epoch(half_day)
        print(
            f"window {half_day}'s snapshot is pinned as store version "
            f"{pinned_version}: in-flight readers keep their epoch while the "
            "tier hot-reloads ahead of them."
        )
        print(
            "\nNote: replaying the same stream with the same seed reproduces "
            "every release digest exactly — the per-interval RNGs are seeded "
            "by (seed, interval), not by arrival time."
        )


if __name__ == "__main__":
    main()
