"""Privately counting events and distinct users over time windows.

Section 1.1.3 of the paper points out that its tree-counting technique covers
the "counting distinct elements in a time window" problem: build a dyadic
tree over time slots, let every data item carry its user id as a *color*, and
release, for every dyadic window, the number of distinct users active in it.
Because the distinct count is monotone but **not additive** (a user active in
two child windows is counted once in the parent), the generic heavy-path
algorithm (Theorems 8/9) is needed — the range-counting reduction only covers
additive histograms.

This example builds both releases on a synthetic activity log:

1. events per window (additive) — via the range-counting reduction of
   `repro.trees.range_counting`, and
2. distinct users per window (non-additive) — via colored tree counting.

Run with::

    python examples/distinct_users_time_windows.py
"""

from __future__ import annotations

import numpy as np

from repro import PrivacyBudget, private_colored_counts
from repro.trees.colored import ColoredItem, exact_colored_counts, exact_hierarchical_counts
from repro.trees.hierarchy import build_balanced_hierarchy
from repro.trees.range_counting import range_counting_tree_counts

NUM_SLOTS = 128          # e.g. 128 five-minute buckets ~ one day
NUM_USERS = 300
NUM_EVENTS = 5000
EPSILON = 2.0


def window_label(node) -> str:
    """Human-readable label of a tree node (a contiguous slot range)."""
    if isinstance(node, tuple) and node[0] == "range":
        return f"slots [{node[1]}, {node[2]})"
    if isinstance(node, tuple) and node[0] == "leaf":
        return f"slot {node[1]}"
    return "all slots"


def main() -> None:
    rng = np.random.default_rng(17)
    tree = build_balanced_hierarchy(list(range(NUM_SLOTS)), branching=2)

    # Synthetic activity log: a daily rush-hour pattern with a stable user
    # population; each event is (time slot, user id).
    rush = np.clip(rng.normal(loc=NUM_SLOTS * 0.6, scale=NUM_SLOTS * 0.15, size=NUM_EVENTS), 0, NUM_SLOTS - 1)
    slots = rush.astype(int)
    users = rng.integers(0, NUM_USERS, size=NUM_EVENTS)
    events = [ColoredItem(element=int(slot), color=int(user)) for slot, user in zip(slots, users)]

    interesting_nodes = [
        tree.root,
        ("range", 64, 96),
        ("range", 96, 128),
        ("leaf", 80),
    ]

    # ------------------------------------------------------------------
    # 1. Events per window: additive, so the range-counting reduction applies.
    #    Replacing one event moves one unit between two slots => d = 2.
    # ------------------------------------------------------------------
    exact_events = exact_hierarchical_counts(tree, [item.element for item in events])
    leaf_counts = {leaf: float(exact_events[leaf]) for leaf in tree.leaves()}
    event_estimates, released = range_counting_tree_counts(
        tree.root,
        tree.children,
        leaf_counts,
        leaf_sensitivity=2.0,
        budget=PrivacyBudget(EPSILON),
        beta=0.05,
        rng=rng,
    )
    print(f"events per window (range-counting reduction, epsilon = {EPSILON}):")
    for node in interesting_nodes:
        print(
            f"  {window_label(node):18s} exact {exact_events[node]:6d}   "
            f"noisy {event_estimates[node]:9.1f}"
        )
    print(f"  error bound for any window: {released.range_error_bound:.1f}")

    # ------------------------------------------------------------------
    # 2. Distinct users per window: monotone but not additive, so the
    #    heavy-path algorithm (colored tree counting) is required.
    #    Replacing one event touches at most two leaves' color sets => d = 2.
    # ------------------------------------------------------------------
    exact_users = exact_colored_counts(tree, events)
    user_estimates = private_colored_counts(
        tree, events, budget=PrivacyBudget(EPSILON), beta=0.05, rng=rng
    )
    print()
    print(f"distinct active users per window (colored counting, epsilon = {EPSILON}):")
    for node in interesting_nodes:
        print(
            f"  {window_label(node):18s} exact {exact_users[node]:6d}   "
            f"noisy {user_estimates[node]:9.1f}"
        )
    worst = max(abs(user_estimates[node] - exact_users[node]) for node in tree.nodes())
    print(
        f"  max error over all {tree.num_nodes} windows: {worst:.1f} "
        f"(analytic bound {user_estimates.error_bound:.1f})"
    )
    print()
    print(
        "Note: both releases are built once; querying any of the "
        f"{tree.num_nodes} dyadic windows afterwards is free post-processing."
    )


if __name__ == "__main__":
    main()
