"""Private sequential-pattern mining on transit trajectories (Theorem 2).

Chen et al. (2012) publish frequent travel patterns from the Montreal transit
system under differential privacy.  This example rebuilds that analysis on a
synthetic transit workload (see DESIGN.md "Substitutions"): traveller
trajectories are strings of station identifiers, and the paper's
(epsilon, delta)-DP Document Count structure (Theorem 2) is mined for popular
trip segments.

The key property demonstrated here is that one private construction supports
*many* analyses: we mine at several thresholds, compare Document Count and
Substring Count semantics, and query individual segments — all without any
additional privacy cost.

Run with::

    python examples/transit_pattern_mining.py
"""

from __future__ import annotations

import numpy as np

from repro import Dataset, check_mining_guarantee, mine_frequent_substrings
from repro.workloads import TransitNetwork, transit_trajectories

EPSILON = 30.0


def main() -> None:
    rng = np.random.default_rng(3)
    network = TransitNetwork(num_lines=3, stations_per_line=6)
    trips = transit_trajectories(6000, 10, rng, network=network)
    print(
        f"trajectories: n = {trips.num_documents}, max length = {trips.max_length}, "
        f"stations = {trips.alphabet_size}"
    )
    popular_segment = network.lines[0][1] + network.lines[0][2]
    print(
        f"exact riders of segment {popular_segment!r}: "
        f"{trips.document_count(popular_segment)}"
    )

    # Document Count semantics: each traveller contributes at most once per
    # pattern, which is the natural privacy unit for trajectory data.  Under
    # approximate DP this is exactly the regime where Theorem 2 improves the
    # error from ~ell to ~sqrt(ell).
    structure = (
        Dataset.from_database(trips)
        .with_budget(EPSILON, 1e-6)
        .with_beta(0.1)
        .with_contribution_cap(1)
        .build("heavy-path", rng=rng)
    )
    print(f"construction: {structure.metadata.construction}")
    print(f"error bound alpha = {structure.error_bound:.1f}")
    print(
        f"noisy riders of segment {popular_segment!r}: "
        f"{structure.query(popular_segment):.1f}"
    )

    print()
    print("mining popular trip segments at three thresholds (no extra privacy cost):")
    # Exact document counts of every occurring segment, for scoring only.
    # Single stations are excluded because the mining below asks for
    # segments of at least two stops.
    from repro.strings.naive import document_count_table

    exact_table = {
        segment: riders
        for segment, riders in document_count_table(list(trips)).items()
        if len(segment) >= 2
    }
    base = structure.metadata.threshold
    for factor in (1.0, 1.5, 2.5):
        threshold = base * factor
        result = mine_frequent_substrings(structure, threshold, min_length=2)
        violations = check_mining_guarantee(result, exact_table)
        top = ", ".join(pattern for pattern, _ in result.patterns[:8])
        print(
            f"  tau = {threshold:7.1f}: {len(result.patterns):3d} segments, "
            f"guarantee ok = {violations.ok}"
            + (f"   (top: {top})" if top else "")
        )


if __name__ == "__main__":
    main()
