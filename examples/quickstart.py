"""Quickstart: build a differentially private counting structure and query it.

This walks through the library's core loop on the paper's running example and
on a slightly larger synthetic collection:

1. wrap documents in a :class:`Dataset` (the unified fluent API; see
   docs/API.md);
2. run the epsilon-DP construction (Theorem 1, kind ``"heavy-path"``) once —
   this is the only step that touches the data and therefore the only step
   that costs privacy;
3. query the resulting counter as often as you like (post-processing),
   one pattern at a time or as a vectorized batch;
4. mine frequent substrings at several thresholds, still without any further
   privacy loss.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Dataset, StringDatabase, mine_frequent_substrings
from repro.workloads import planted_motif_documents


def toy_example() -> None:
    print("=== The paper's running example (Example 1) ===")
    database = StringDatabase(["aaaa", "abe", "absab", "babe", "bee", "bees"])
    print(f"documents: {list(database)}")
    print(f"exact count('ab')   = {database.substring_count('ab')}")
    print(f"exact count_1('ab') = {database.document_count('ab')}")

    structure = (
        Dataset.from_database(database)
        .with_budget(epsilon=2.0)
        .with_beta(0.1)
        .build("heavy-path", rng=np.random.default_rng(0))
    )
    print(f"construction: {structure.metadata.construction}")
    print(f"error bound alpha = {structure.error_bound:.1f}")
    print(f"noisy count('ab') = {structure.query('ab'):.1f}")
    print(
        "On six tiny documents the calibrated noise dwarfs every count, so the "
        "structure stores nothing and queries return 0 — exactly what the "
        "error bound promises.  The next section uses a larger collection."
    )


def realistic_example() -> None:
    print()
    print("=== A larger collection with a planted frequent motif ===")
    rng = np.random.default_rng(7)
    database = planted_motif_documents(
        5000, 12, ("a", "b", "c", "d"), rng, motif="abba", planting_probability=0.9
    )
    print(
        f"n = {database.num_documents} documents, ell = {database.max_length}, "
        f"|Sigma| = {database.alphabet_size}"
    )
    print(f"exact count_1('abba') = {database.document_count('abba')}")

    # A generous budget keeps the demonstration fast and the output non-empty;
    # shrink epsilon to see the privacy/utility trade-off.
    structure = (
        Dataset.from_database(database)
        .with_budget(epsilon=40.0)
        .with_beta(0.1)
        .build("heavy-path", rng=rng)
    )
    print(f"error bound alpha = {structure.error_bound:.1f}")
    print(f"stored patterns: {structure.num_stored_patterns}")
    print(f"noisy count('abba') = {structure.query('abba'):.1f}")
    batch = structure.query_many(["abba", "abb", "dcba"])
    print(f"batched counts for ['abba', 'abb', 'dcba'] = {np.round(batch, 1)}")

    # Post-processing: query and mine as often as you like.
    for threshold in (structure.metadata.threshold, 2 * structure.metadata.threshold):
        result = mine_frequent_substrings(structure, threshold)
        top = ", ".join(pattern for pattern, _ in result.patterns[:6])
        print(
            f"mining at tau = {threshold:7.1f}: {len(result.patterns):3d} patterns"
            + (f"   (top: {top})" if top else "")
        )


if __name__ == "__main__":
    toy_example()
    realistic_example()
