"""End-to-end release workflow: build once, publish, analyse forever.

The decisive property of the paper's data structures is that *only the
construction* touches the sensitive database.  The released structure is a
plain trie of noisy counts, so a data curator can

1. build the structure once with a fixed privacy budget,
2. serialize it to JSON and hand it to untrusted analysts, and
3. let every analyst query, mine and post-process it without any further
   privacy accounting — including with thresholds and pattern lengths chosen
   *after* seeing the data.

This example plays both roles on a synthetic genome-read workload (the
scenario of Khatri et al. 2019, see DESIGN.md "Substitutions"): the curator
builds and saves a Document Count structure; the analyst reloads it from
disk, compares q-gram frequencies, and mines motifs at several thresholds.

Run with::

    python examples/private_release_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    Dataset,
    PrivateCountingTrie,
    mine_frequent_qgrams,
    mine_frequent_substrings,
)
from repro.workloads import genome_with_motifs

EPSILON = 25.0
DELTA = 1e-6


def curator_builds_and_publishes(release_path: Path) -> None:
    """The trusted curator's side: one private construction, one file."""
    rng = np.random.default_rng(11)
    reads = genome_with_motifs(4000, 12, rng)
    print("=== curator ===")
    print(
        f"database: n = {reads.num_documents} reads, ell = {reads.max_length}, "
        f"alphabet = {reads.alphabet_size}"
    )

    structure = (
        Dataset.from_database(reads)
        .with_budget(EPSILON, DELTA)
        .with_beta(0.1)
        .with_contribution_cap(1)  # Document Count semantics
        .build("heavy-path", rng=rng)
    )
    print(f"construction: {structure.metadata.construction}")
    print(f"privacy budget spent: epsilon = {EPSILON}, delta = {DELTA}")
    print(f"error bound alpha = {structure.error_bound:.1f}")
    print(f"stored patterns: {structure.num_stored_patterns}")

    structure.save(release_path)
    print(f"released structure written to {release_path}")


def analyst_reloads_and_explores(release_path: Path) -> None:
    """The untrusted analyst's side: everything below is post-processing."""
    print()
    print("=== analyst ===")
    structure = PrivateCountingTrie.load(release_path)
    print(
        f"reloaded structure: {structure.num_stored_patterns} patterns, "
        f"alpha = {structure.error_bound:.1f}, "
        f"budget = (eps={structure.metadata.epsilon}, delta={structure.metadata.delta})"
    )

    # Ad-hoc queries.
    for pattern in ("ACG", "TTT", "GATTACA"):
        print(f"  noisy document count of {pattern!r}: {structure.query(pattern):.1f}")

    # Frequent 3-grams, then frequent substrings of any length, at thresholds
    # chosen after looking at the first results — all free of privacy cost.
    for threshold in (structure.metadata.threshold, 2 * structure.metadata.threshold):
        qgrams = mine_frequent_qgrams(structure, q=3, threshold=threshold)
        print(
            f"  frequent 3-grams at tau = {threshold:.0f}: "
            f"{[pattern for pattern, _ in qgrams.patterns[:6]]}"
        )
    motifs = mine_frequent_substrings(structure, structure.metadata.threshold, min_length=4)
    print(
        f"  candidate motifs (length >= 4): "
        f"{[pattern for pattern, _ in motifs.patterns[:5]]}"
    )
    print(
        "  mining guarantee slack alpha(tau) = "
        f"{structure.mining_alpha(structure.metadata.threshold):.1f}"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as directory:
        release_path = Path(directory) / "private_counts.json"
        curator_builds_and_publishes(release_path)
        analyst_reloads_and_explores(release_path)


if __name__ == "__main__":
    main()
