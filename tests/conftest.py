"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import StringDatabase


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def example_db() -> StringDatabase:
    """The paper's running example (Example 1)."""
    return StringDatabase(["aaaa", "abe", "absab", "babe", "bee", "bees"])


@pytest.fixture
def small_db() -> StringDatabase:
    """A tiny database used by the heavier construction tests."""
    return StringDatabase(["abab", "abba", "baba", "bbbb", "aabb"])
