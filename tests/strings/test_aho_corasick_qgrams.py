"""Tests for repro.strings.aho_corasick and repro.strings.qgrams."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings import naive
from repro.strings.aho_corasick import AhoCorasick
from repro.strings.qgrams import (
    distinct_qgrams,
    iter_qgrams,
    qgram_capped_counts,
    qgram_document_counts,
    qgram_substring_counts,
)


class TestAhoCorasick:
    def test_basic_counts(self):
        automaton = AhoCorasick(["ab", "be", "e"])
        counts = automaton.count_occurrences("abe")
        assert counts == {"ab": 1, "be": 1, "e": 1}

    def test_overlapping_patterns(self):
        automaton = AhoCorasick(["aa", "aaa"])
        counts = automaton.count_occurrences("aaaa")
        assert counts == {"aa": 3, "aaa": 2}

    def test_nested_suffix_patterns(self):
        automaton = AhoCorasick(["abab", "bab", "ab", "b"])
        counts = automaton.count_occurrences("ababab")
        assert counts == {"abab": 2, "bab": 2, "ab": 3, "b": 3}

    def test_duplicate_pattern_shares_index(self):
        automaton = AhoCorasick()
        first = automaton.add_pattern("ab")
        second = automaton.add_pattern("ab")
        assert first == second
        assert automaton.patterns == ["ab"]

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            AhoCorasick([""])

    def test_add_after_build_rejected(self):
        automaton = AhoCorasick(["a"])
        automaton.build()
        with pytest.raises(RuntimeError):
            automaton.add_pattern("b")

    def test_count_over_documents_with_cap(self):
        automaton = AhoCorasick(["a"])
        documents = ["aaa", "ba", "bbb"]
        assert automaton.count_over_documents(documents, delta=1) == {"a": 2}
        assert automaton.count_over_documents(documents, delta=5) == {"a": 4}
        with pytest.raises(ValueError):
            automaton.count_over_documents(documents, delta=0)

    @given(
        st.lists(st.text(alphabet="ab", min_size=1, max_size=4), min_size=1, max_size=6),
        st.text(alphabet="ab", min_size=0, max_size=30),
    )
    @settings(max_examples=80)
    def test_matches_naive_on_random_inputs(self, patterns, text):
        automaton = AhoCorasick(patterns)
        counts = automaton.count_occurrences(text)
        for pattern in set(patterns):
            assert counts[pattern] == naive.count_occurrences(pattern, text)


class TestQGrams:
    def test_iter_qgrams(self):
        assert list(iter_qgrams("abcd", 2)) == ["ab", "bc", "cd"]
        assert list(iter_qgrams("ab", 3)) == []
        with pytest.raises(ValueError):
            list(iter_qgrams("ab", 0))

    def test_distinct_qgrams(self):
        assert distinct_qgrams(["abab", "ba"], 2) == {"ab", "ba"}

    def test_counts_on_example(self):
        documents = ["aaaa", "abe", "absab", "babe", "bee", "bees"]
        substring = qgram_substring_counts(documents, 2)
        document = qgram_document_counts(documents, 2)
        assert substring["ab"] == 4
        assert document["ab"] == 3
        assert substring["aa"] == 3
        assert document["aa"] == 1

    def test_capped_counts_between_document_and_substring(self):
        documents = ["aaaa", "aab"]
        capped = qgram_capped_counts(documents, 2, delta=2)
        assert capped["aa"] == 3  # min(2,3) + min(2,1)
        with pytest.raises(ValueError):
            qgram_capped_counts(documents, 2, delta=0)

    @given(st.lists(st.text(alphabet="ab", min_size=1, max_size=8), min_size=1, max_size=5), st.integers(1, 3))
    @settings(max_examples=60)
    def test_qgram_tables_match_naive(self, documents, q):
        substring = qgram_substring_counts(documents, q)
        document = qgram_document_counts(documents, q)
        for qgram in distinct_qgrams(documents, q):
            assert substring[qgram] == naive.substring_count(qgram, documents)
            assert document[qgram] == naive.document_count(qgram, documents)
