"""Tests for repro.strings.generalized_index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings import naive
from repro.strings.alphabet import Alphabet
from repro.strings.generalized_index import GeneralizedSuffixIndex, MergeSortTree

DOCS = st.lists(st.text(alphabet="abc", min_size=1, max_size=8), min_size=1, max_size=6)
PATTERNS = st.text(alphabet="abc", min_size=0, max_size=4)


class TestMergeSortTree:
    def test_count_less_than(self):
        tree = MergeSortTree(np.array([5, 1, 4, 1, 3]))
        assert tree.count_less_than(0, 5, 4) == 3
        assert tree.count_less_than(1, 3, 2) == 1
        assert tree.count_less_than(2, 2, 100) == 0

    def test_invalid_interval(self):
        tree = MergeSortTree(np.array([1, 2]))
        with pytest.raises(ValueError):
            tree.count_less_than(1, 3, 0)

    @given(st.lists(st.integers(-10, 10), min_size=1, max_size=40), st.data())
    @settings(max_examples=60)
    def test_matches_naive(self, values, data):
        array = np.array(values)
        tree = MergeSortTree(array)
        lo = data.draw(st.integers(0, len(values)))
        hi = data.draw(st.integers(lo, len(values)))
        threshold = data.draw(st.integers(-12, 12))
        assert tree.count_less_than(lo, hi, threshold) == int(
            (array[lo:hi] < threshold).sum()
        )


class TestExampleCounts:
    def setup_method(self):
        self.documents = ["aaaa", "abe", "absab", "babe", "bee", "bees"]
        self.index = GeneralizedSuffixIndex(self.documents)

    def test_paper_example(self):
        assert self.index.substring_count("ab") == 4
        assert self.index.document_count("ab") == 3

    def test_empty_pattern(self):
        assert self.index.substring_count("") == sum(len(d) for d in self.documents)
        assert self.index.document_count("") == 6
        assert self.index.count("", 2) == sum(min(2, len(d)) for d in self.documents)

    def test_absent_and_foreign_patterns(self):
        assert self.index.substring_count("zzz") == 0
        assert self.index.document_count("xy") == 0
        assert self.index.count("Q", 3) == 0

    def test_letter_counts_include_missing_letters(self):
        alphabet = Alphabet(("a", "b", "e", "s", "z"))
        index = GeneralizedSuffixIndex(self.documents, alphabet)
        counts = index.letter_counts(delta=1)
        assert counts["z"] == 0
        assert counts["a"] == 4  # documents containing 'a'


class TestAgainstNaive:
    @given(DOCS, PATTERNS, st.integers(1, 6))
    @settings(max_examples=80, deadline=None)
    def test_counts_match_naive(self, documents, pattern, delta):
        index = GeneralizedSuffixIndex(documents)
        assert index.substring_count(pattern) == naive.substring_count(pattern, documents)
        assert index.document_count(pattern) == naive.document_count(pattern, documents)
        assert index.count(pattern, delta) == naive.count_delta(pattern, documents, delta)

    @given(DOCS)
    @settings(max_examples=30, deadline=None)
    def test_every_substring_count_matches(self, documents):
        index = GeneralizedSuffixIndex(documents)
        for pattern in naive.all_substrings(documents, max_length=3):
            assert index.substring_count(pattern) == naive.substring_count(
                pattern, documents
            )


class TestIntervalExtension:
    def test_extend_interval_matches_direct_search(self):
        documents = ["abab", "abba", "bbab"]
        index = GeneralizedSuffixIndex(documents)
        lo, hi = index.pattern_interval("a")
        lo2, hi2 = index.extend_interval(lo, hi, 1, "b")
        assert (lo2, hi2) == index.pattern_interval("ab")
        lo3, hi3 = index.extend_interval(lo2, hi2, 2, "a")
        assert (lo3, hi3) == index.pattern_interval("aba")

    def test_extend_with_unknown_character(self):
        index = GeneralizedSuffixIndex(["ab"])
        lo, hi = index.pattern_interval("a")
        assert index.extend_interval(lo, hi, 1, "z") == (lo, lo)

    @given(DOCS, st.text(alphabet="abc", min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_incremental_equals_direct(self, documents, pattern):
        index = GeneralizedSuffixIndex(documents)
        lo, hi = 0, len(index.suffix_array)
        for depth, char in enumerate(pattern):
            lo, hi = index.extend_interval(lo, hi, depth, char)
        assert (hi - lo) == index.substring_count(pattern)


class TestHelpers:
    def test_is_within_document(self):
        index = GeneralizedSuffixIndex(["abc", "de"])
        assert index.is_within_document(0, 3)
        assert not index.is_within_document(0, 4)
        assert not index.is_within_document(2, 2)

    def test_decode_prefix(self):
        index = GeneralizedSuffixIndex(["abc", "de"])
        assert index.decode_prefix(0, 2) == "ab"
        assert index.decode_prefix(4, 2) == "de"

    def test_max_document_length(self):
        index = GeneralizedSuffixIndex(["a", "abcd"])
        assert index.max_document_length == 4
        assert index.num_documents == 2
        assert index.total_length == 5
