"""Tests for repro.strings.documents and repro.strings.naive."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidDocumentError
from repro.strings import naive
from repro.strings.alphabet import Alphabet
from repro.strings.documents import concatenate_documents

DOCS = st.lists(st.text(alphabet="abc", min_size=1, max_size=8), min_size=1, max_size=5)


class TestConcatenation:
    def test_structure(self):
        text = concatenate_documents(["ab", "c"], Alphabet(("a", "b", "c")))
        assert len(text) == 5  # "ab$0c$1"
        assert text.num_documents == 2
        assert text.total_length == 3
        assert text.doc_starts.tolist() == [0, 3]
        assert text.doc_lengths.tolist() == [2, 1]
        assert text.doc_ids.tolist() == [0, 0, 0, 1, 1]

    def test_sentinels_are_unique(self):
        text = concatenate_documents(["a", "a", "a"])
        sentinel_codes = [int(text.codes[i]) for i in range(len(text)) if text.is_sentinel_position(i)]
        assert len(sentinel_codes) == 3
        assert len(set(sentinel_codes)) == 3

    def test_position_helpers(self):
        text = concatenate_documents(["abc", "de"])
        assert text.document_of(4) == 1
        assert text.offset_in_document(5) == 1
        assert text.remaining_in_document(0) == 3
        assert text.remaining_in_document(3) == 0  # the sentinel of document 0

    def test_substring_decoding(self):
        text = concatenate_documents(["abc", "de"])
        assert text.substring(0, 3) == "abc"
        with pytest.raises(InvalidDocumentError):
            text.substring(2, 3)  # crosses the sentinel

    def test_empty_collection_rejected(self):
        with pytest.raises(InvalidDocumentError):
            concatenate_documents([])

    @given(DOCS)
    @settings(max_examples=40)
    def test_lengths_consistent(self, documents):
        text = concatenate_documents(documents)
        assert len(text) == sum(len(d) for d in documents) + len(documents)
        assert text.total_length == sum(len(d) for d in documents)


class TestNaiveCounting:
    def test_count_occurrences_overlapping(self):
        assert naive.count_occurrences("aa", "aaaa") == 3
        assert naive.count_occurrences("ab", "abab") == 2
        assert naive.count_occurrences("z", "abab") == 0

    def test_empty_pattern_counts_length(self):
        assert naive.count_occurrences("", "abcd") == 4

    def test_example1_from_paper(self):
        documents = ["aaaa", "abe", "absab", "babe", "bee", "bees"]
        assert naive.document_count("ab", documents) == 3
        assert naive.substring_count("ab", documents) == 4

    def test_count_capped(self):
        assert naive.count_capped("a", "aaaa", 2) == 2
        assert naive.count_capped("a", "aaaa", 10) == 4
        with pytest.raises(ValueError):
            naive.count_capped("a", "aaaa", 0)

    def test_count_delta_interpolates(self):
        documents = ["aaaa", "baaa"]
        assert naive.count_delta("a", documents, 1) == 2
        assert naive.count_delta("a", documents, 3) == 6
        assert naive.count_delta("a", documents, 10) == 7

    def test_all_substrings(self):
        subs = naive.all_substrings(["aba"])
        assert subs == {"a", "b", "ab", "ba", "aba"}
        assert naive.all_substrings(["aba"], max_length=1) == {"a", "b"}

    def test_tables_consistent_with_single_queries(self):
        documents = ["abab", "bba"]
        substr_table = naive.substring_count_table(documents)
        doc_table = naive.document_count_table(documents)
        for pattern in naive.all_substrings(documents):
            assert substr_table[pattern] == naive.substring_count(pattern, documents)
            assert doc_table[pattern] == naive.document_count(pattern, documents)

    @given(DOCS, st.text(alphabet="abc", min_size=1, max_size=3), st.integers(1, 5))
    @settings(max_examples=60)
    def test_count_delta_monotone_in_delta(self, documents, pattern, delta):
        small = naive.count_delta(pattern, documents, delta)
        large = naive.count_delta(pattern, documents, delta + 1)
        assert small <= large <= naive.substring_count(pattern, documents)
        assert naive.document_count(pattern, documents) == naive.count_delta(
            pattern, documents, 1
        )
