"""Tests for repro.strings.alphabet."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidDocumentError, InvalidPatternError
from repro.strings.alphabet import Alphabet, infer_alphabet


class TestAlphabetBasics:
    def test_size_and_membership(self):
        alphabet = Alphabet(("a", "b", "c"))
        assert alphabet.size == 3
        assert len(alphabet) == 3
        assert "a" in alphabet
        assert "z" not in alphabet
        assert list(alphabet) == ["a", "b", "c"]

    def test_duplicate_symbols_rejected(self):
        with pytest.raises(InvalidDocumentError):
            Alphabet(("a", "a"))

    def test_multicharacter_symbols_rejected(self):
        with pytest.raises(InvalidDocumentError):
            Alphabet(("ab",))

    def test_code_and_symbol_roundtrip(self):
        alphabet = Alphabet(("x", "y", "z"))
        for index, symbol in enumerate("xyz"):
            assert alphabet.code(symbol) == index
            assert alphabet.symbol(index) == symbol

    def test_unknown_character_raises(self):
        alphabet = Alphabet(("a",))
        with pytest.raises(InvalidPatternError):
            alphabet.code("b")
        with pytest.raises(InvalidPatternError):
            alphabet.symbol(5)


class TestEncoding:
    def test_encode_decode_roundtrip(self):
        alphabet = Alphabet(("a", "b", "c"))
        text = "abccba"
        encoded = alphabet.encode(text)
        assert encoded.dtype == np.int64
        assert alphabet.decode(encoded) == text

    def test_encode_unknown_character(self):
        alphabet = Alphabet(("a", "b"))
        with pytest.raises(InvalidPatternError):
            alphabet.encode("abz")

    def test_sentinels_are_outside_alphabet(self):
        alphabet = Alphabet(("a", "b"))
        assert alphabet.sentinel_code(0) == 2
        assert alphabet.sentinel_code(3) == 5
        assert alphabet.is_sentinel(2)
        assert not alphabet.is_sentinel(1)

    def test_negative_sentinel_index_rejected(self):
        alphabet = Alphabet(("a",))
        with pytest.raises(InvalidDocumentError):
            alphabet.sentinel_code(-1)


class TestValidation:
    def test_validate_document(self):
        alphabet = Alphabet(("a", "b"))
        alphabet.validate_document("ab", max_length=4)

    def test_empty_document_rejected(self):
        alphabet = Alphabet(("a",))
        with pytest.raises(InvalidDocumentError):
            alphabet.validate_document("")

    def test_too_long_document_rejected(self):
        alphabet = Alphabet(("a",))
        with pytest.raises(InvalidDocumentError):
            alphabet.validate_document("aaaa", max_length=3)

    def test_out_of_alphabet_document_rejected(self):
        alphabet = Alphabet(("a",))
        with pytest.raises(InvalidDocumentError):
            alphabet.validate_document("ab")


class TestInference:
    def test_infer_alphabet_sorted(self):
        alphabet = infer_alphabet(["bca", "aab"])
        assert alphabet.symbols == ("a", "b", "c")

    def test_infer_alphabet_with_extra(self):
        alphabet = infer_alphabet(["aa"], extra=["z"])
        assert alphabet.symbols == ("a", "z")

    def test_infer_empty_collection_rejected(self):
        with pytest.raises(InvalidDocumentError):
            infer_alphabet([])

    @given(st.lists(st.text(alphabet="abcde", min_size=1, max_size=8), min_size=1, max_size=5))
    def test_inferred_alphabet_encodes_all_documents(self, documents):
        alphabet = infer_alphabet(documents)
        for document in documents:
            assert alphabet.decode(alphabet.encode(document)) == document
