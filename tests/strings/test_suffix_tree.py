"""Tests for repro.strings.suffix_tree."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings.naive import count_occurrences
from repro.strings.suffix_tree import SuffixTree


def encode(text: str) -> np.ndarray:
    return np.fromiter((ord(c) for c in text), dtype=np.int64, count=len(text))


def build(text: str) -> SuffixTree:
    return SuffixTree.build(encode(text))


class TestConstruction:
    def test_leaf_count_equals_text_length(self):
        tree = build("banana")
        # The builder appends a unique terminator, so 7 suffixes / leaves.
        leaves = [node for node in tree.nodes if node.is_leaf]
        assert len(leaves) == 7

    def test_root_interval_covers_everything(self):
        tree = build("banana")
        assert tree.root.sa_lo == 0
        assert tree.root.sa_hi == 7

    def test_parent_child_consistency(self):
        tree = build("mississippi")
        for node in tree.nodes:
            for child_id in node.children:
                child = tree.nodes[child_id]
                assert child.parent == node.node_id
                assert child.string_depth > node.string_depth
                assert node.sa_lo <= child.sa_lo <= child.sa_hi <= node.sa_hi

    def test_children_partition_parent_interval(self):
        tree = build("abracadabra")
        for node in tree.nodes:
            if node.children:
                total = sum(
                    tree.nodes[c].sa_hi - tree.nodes[c].sa_lo for c in node.children
                )
                assert total == node.sa_hi - node.sa_lo

    @given(st.text(alphabet="ab", min_size=1, max_size=25))
    @settings(max_examples=50)
    def test_number_of_nodes_is_linear(self, text):
        tree = SuffixTree.build(encode(text))
        # A suffix tree over N+1 leaves has at most 2(N+1) nodes.
        assert tree.num_nodes <= 2 * (len(text) + 1)


class TestFrequencies:
    @given(st.text(alphabet="abc", min_size=1, max_size=20), st.integers(1, 4))
    @settings(max_examples=60)
    def test_minimal_node_frequencies_count_occurrences(self, text, depth):
        tree = SuffixTree.build(encode(text))
        seen = {}
        for node_id in tree.minimal_nodes_at_depth(depth):
            node = tree.nodes[node_id]
            start = tree.node_prefix_start(node_id)
            prefix = text[start : start + depth]
            if len(prefix) < depth:
                # the prefix runs into the artificial terminator; skip.
                continue
            seen[prefix] = node.frequency
        for prefix, frequency in seen.items():
            assert frequency == count_occurrences(prefix, text)

    def test_minimal_nodes_cover_distinct_substrings(self):
        text = "abab"
        tree = build(text)
        nodes = tree.minimal_nodes_at_depth(2)
        prefixes = set()
        for node_id in nodes:
            start = tree.node_prefix_start(node_id)
            prefixes.add(text[start : start + 2])
        # "ab" and "ba" plus possibly prefixes hitting the terminator.
        assert {"ab", "ba"} <= prefixes


class TestWeightedAncestors:
    def test_ancestor_is_minimal_locus(self):
        text = "banana"
        tree = build(text)
        leaf = tree.leaf_for_position(1)  # suffix "anana..."
        ancestor = tree.weighted_ancestor(leaf, 3)
        assert tree.nodes[ancestor].string_depth >= 3
        parent = tree.nodes[ancestor].parent
        assert tree.nodes[parent].string_depth < 3
        start = tree.node_prefix_start(ancestor)
        assert text[start : start + 3] == "ana"

    def test_too_deep_request_returns_minus_one(self):
        tree = build("ab")
        leaf = tree.leaf_for_position(1)  # suffix "b", depth 2 with terminator
        assert tree.weighted_ancestor(leaf, 10) == -1

    @given(st.text(alphabet="ab", min_size=2, max_size=20), st.data())
    @settings(max_examples=50)
    def test_weighted_ancestor_matches_linear_scan(self, text, data):
        tree = SuffixTree.build(encode(text))
        position = data.draw(st.integers(0, len(text) - 1))
        target = data.draw(st.integers(1, len(text) - position + 1))
        leaf = tree.leaf_for_position(position)
        expected = -1
        current = leaf
        chain = []
        while current != -1:
            chain.append(current)
            current = tree.nodes[current].parent
        for node_id in reversed(chain):  # from root downwards
            if tree.nodes[node_id].string_depth >= target:
                expected = node_id
                break
        assert tree.weighted_ancestor(leaf, target) == expected

    def test_height_positive(self):
        assert build("banana").height() >= 2
