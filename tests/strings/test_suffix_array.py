"""Tests for repro.strings.suffix_array."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings.suffix_array import SuffixArray, build_lcp_array, build_suffix_array


def naive_suffix_array(text: np.ndarray) -> np.ndarray:
    suffixes = sorted(range(len(text)), key=lambda i: list(text[i:]))
    return np.array(suffixes, dtype=np.int64)


def encode(text: str) -> np.ndarray:
    return np.fromiter((ord(c) for c in text), dtype=np.int64, count=len(text))


class TestSuffixArrayConstruction:
    def test_banana(self):
        text = encode("banana")
        assert build_suffix_array(text).tolist() == [5, 3, 1, 0, 4, 2]

    def test_empty_and_single(self):
        assert build_suffix_array(np.array([], dtype=np.int64)).tolist() == []
        assert build_suffix_array(np.array([7], dtype=np.int64)).tolist() == [0]

    def test_all_equal_characters(self):
        text = encode("aaaaa")
        assert build_suffix_array(text).tolist() == [4, 3, 2, 1, 0]

    @given(st.text(alphabet="abc", min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_matches_naive_construction(self, text):
        encoded = encode(text)
        assert build_suffix_array(encoded).tolist() == naive_suffix_array(encoded).tolist()


class TestLCPArray:
    def test_banana_lcp(self):
        text = encode("banana")
        sa = build_suffix_array(text)
        assert build_lcp_array(text, sa).tolist() == [0, 1, 3, 0, 0, 2]

    @given(st.text(alphabet="ab", min_size=2, max_size=30))
    @settings(max_examples=60)
    def test_lcp_matches_direct_computation(self, text):
        encoded = encode(text)
        sa = build_suffix_array(encoded)
        lcp = build_lcp_array(encoded, sa)
        for rank in range(1, len(text)):
            a = text[sa[rank - 1]:]
            b = text[sa[rank]:]
            common = 0
            while common < min(len(a), len(b)) and a[common] == b[common]:
                common += 1
            assert lcp[rank] == common


class TestPatternSearch:
    def test_interval_and_count(self):
        index = SuffixArray.build(encode("abracadabra"))
        assert index.count_pattern(encode("abra")) == 2
        assert index.count_pattern(encode("a")) == 5
        assert index.count_pattern(encode("zzz")) == 0
        assert sorted(index.occurrences(encode("abra")).tolist()) == [0, 7]

    def test_empty_pattern_full_interval(self):
        index = SuffixArray.build(encode("abc"))
        assert index.pattern_interval(np.array([], dtype=np.int64)) == (0, 3)

    def test_pattern_longer_than_text(self):
        index = SuffixArray.build(encode("ab"))
        assert index.count_pattern(encode("abc")) == 0

    @given(
        st.text(alphabet="abc", min_size=1, max_size=30),
        st.text(alphabet="abc", min_size=1, max_size=4),
    )
    @settings(max_examples=80)
    def test_count_matches_naive(self, text, pattern):
        index = SuffixArray.build(encode(text))
        expected = sum(
            1 for i in range(len(text)) if text.startswith(pattern, i)
        )
        assert index.count_pattern(encode(pattern)) == expected

    def test_rank_is_inverse_of_sa(self):
        index = SuffixArray.build(encode("mississippi"))
        assert np.array_equal(index.sa[index.rank], np.arange(len(index.sa)))
