"""Tests for repro.strings.rmq and repro.strings.lce."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings.lce import CollectionLCE, LCEIndex
from repro.strings.rmq import SparseTableRMQ


def encode(text: str) -> np.ndarray:
    return np.fromiter((ord(c) for c in text), dtype=np.int64, count=len(text))


class TestSparseTableRMQ:
    def test_small_example(self):
        rmq = SparseTableRMQ(np.array([5, 2, 7, 1, 9]))
        assert rmq.query(0, 5) == 1
        assert rmq.query(0, 2) == 2
        assert rmq.query(2, 3) == 7
        assert rmq.query(3, 5) == 1

    def test_invalid_intervals(self):
        rmq = SparseTableRMQ(np.array([1, 2, 3]))
        with pytest.raises(ValueError):
            rmq.query(2, 2)
        with pytest.raises(ValueError):
            rmq.query(-1, 2)
        with pytest.raises(ValueError):
            rmq.query(1, 5)

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=60), st.data())
    @settings(max_examples=60)
    def test_matches_numpy_min(self, values, data):
        array = np.array(values)
        rmq = SparseTableRMQ(array)
        lo = data.draw(st.integers(0, len(values) - 1))
        hi = data.draw(st.integers(lo + 1, len(values)))
        assert rmq.query(lo, hi) == int(array[lo:hi].min())


class TestLCEIndex:
    def test_simple_lce(self):
        index = LCEIndex.from_text(encode("abcabcx"))
        assert index.lce(0, 3) == 3
        assert index.lce(1, 4) == 2
        assert index.lce(0, 6) == 0
        assert index.lce(2, 2) == 5

    @given(st.text(alphabet="ab", min_size=2, max_size=30), st.data())
    @settings(max_examples=60)
    def test_matches_direct_comparison(self, text, data):
        index = LCEIndex.from_text(encode(text))
        i = data.draw(st.integers(0, len(text) - 1))
        j = data.draw(st.integers(0, len(text) - 1))
        expected = 0
        while (
            i + expected < len(text)
            and j + expected < len(text)
            and text[i + expected] == text[j + expected]
        ):
            expected += 1
        if i == j:
            expected = len(text) - i
        assert index.lce(i, j) == expected


class TestCollectionLCE:
    def test_cross_string_lce(self):
        strings = [encode("abcd"), encode("abxx"), encode("cdab")]
        lce = CollectionLCE(strings)
        assert lce.lce(0, 0, 1, 0) == 2
        assert lce.lce(0, 2, 2, 0) == 2
        assert lce.lce(0, 0, 2, 2) == 2

    def test_has_overlap(self):
        strings = [encode("abc"), encode("bcd"), encode("xyz")]
        lce = CollectionLCE(strings)
        assert lce.has_overlap(0, 1, 2)  # "bc" suffix of abc == prefix of bcd
        assert not lce.has_overlap(0, 2, 1)
        assert lce.has_overlap(0, 0, 3)  # whole string overlaps itself
        assert lce.has_overlap(0, 1, 0)  # empty overlap always true

    def test_overlap_longer_than_strings(self):
        strings = [encode("ab"), encode("b")]
        lce = CollectionLCE(strings)
        assert not lce.has_overlap(0, 1, 3)

    @given(
        st.lists(st.text(alphabet="ab", min_size=1, max_size=6), min_size=2, max_size=5),
        st.integers(1, 4),
    )
    @settings(max_examples=60)
    def test_overlap_matches_slicing(self, strings, overlap):
        encoded = [encode(s) for s in strings]
        lce = CollectionLCE(encoded)
        for i, left in enumerate(strings):
            for j, right in enumerate(strings):
                expected = (
                    overlap <= len(left)
                    and overlap <= len(right)
                    and left[len(left) - overlap :] == right[:overlap]
                )
                assert lce.has_overlap(i, j, overlap) == expected
