"""Tests for repro.strings.trie."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings.trie import CompactedTrie, Trie

STRING_SETS = st.lists(st.text(alphabet="abc", min_size=1, max_size=6), min_size=1, max_size=10)


class TestTrie:
    def test_insert_and_find(self):
        trie = Trie()
        node = trie.insert("abc")
        assert node.depth == 3
        assert node.string() == "abc"
        assert trie.find("abc") is node
        assert trie.find("ab") is not None
        assert trie.find("abd") is None
        assert "abc" in trie
        assert "x" not in trie

    def test_num_nodes_counts_shared_prefixes_once(self):
        trie = Trie(["abc", "abd", "ab"])
        # root + a + b + c + d
        assert trie.num_nodes == 5

    def test_iter_strings_yields_all_prefixes(self):
        trie = Trie(["ab", "ba"])
        assert set(trie.iter_strings()) == {"a", "ab", "b", "ba"}

    def test_leaves_and_height(self):
        trie = Trie(["ab", "abc", "b"])
        assert trie.height() == 3
        leaf_strings = {leaf.string() for leaf in trie.leaves()}
        assert leaf_strings == {"abc", "b"}

    def test_delete_subtree(self):
        trie = Trie(["abc", "abd", "axy"])
        node = trie.find("ab")
        removed = trie.delete_subtree(node)
        assert removed == 3  # ab, abc, abd
        assert trie.find("abc") is None
        assert trie.find("axy") is not None
        assert trie.num_nodes == 4  # root, a, x, y

    def test_cannot_delete_root(self):
        trie = Trie(["a"])
        with pytest.raises(ValueError):
            trie.delete_subtree(trie.root)

    def test_counts_default_to_none(self):
        trie = Trie(["a"])
        node = trie.find("a")
        assert node.count is None and node.noisy_count is None

    @given(STRING_SETS)
    @settings(max_examples=60)
    def test_nodes_equal_distinct_prefixes(self, strings):
        trie = Trie(strings)
        prefixes = {s[:i] for s in strings for i in range(1, len(s) + 1)}
        assert trie.num_nodes == len(prefixes) + 1
        for string in strings:
            assert string in trie

    @given(STRING_SETS)
    @settings(max_examples=40)
    def test_subtree_size_consistent(self, strings):
        trie = Trie(strings)
        assert trie.subtree_size(trie.root) == trie.num_nodes


class TestCompactedTrie:
    def test_compaction_dissolves_unary_nodes(self):
        compacted = CompactedTrie(["abcde"])
        # root plus a single leaf whose edge label is the entire string.
        assert compacted.num_nodes == 2
        leaf = compacted.find("abcde")
        assert leaf is not None and leaf.is_leaf

    def test_branching_preserved(self):
        compacted = CompactedTrie(["abc", "abd"])
        # root, branching node "ab", two leaves.
        assert compacted.num_nodes == 4
        assert compacted.find("ab") is not None
        assert compacted.find("abc").is_terminal

    def test_terminal_inner_string_kept_as_node(self):
        compacted = CompactedTrie(["ab", "abcd"])
        node = compacted.find("ab")
        assert node is not None
        assert node.is_terminal

    def test_find_inside_edge_returns_none(self):
        compacted = CompactedTrie(["abcd"])
        assert compacted.find("ab") is None

    @given(STRING_SETS)
    @settings(max_examples=60)
    def test_linear_size(self, strings):
        distinct = set(strings)
        compacted = CompactedTrie(distinct)
        assert compacted.num_nodes <= 2 * len(distinct) + 1

    @given(STRING_SETS)
    @settings(max_examples=60)
    def test_all_inserted_strings_found_and_terminal(self, strings):
        compacted = CompactedTrie(strings)
        for string in strings:
            node = compacted.find(string)
            assert node is not None
            assert node.is_terminal
