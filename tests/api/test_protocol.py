"""Every registered structure kind satisfies the PrivateCounter protocol,
builds through the fluent Dataset entry point, and round-trips through the
release store with identical answers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import CorpusStream, Dataset, PrivateCounter, default_registry
from repro.core.private_trie import PrivateCountingTrie
from repro.serving import CompiledTrie, QueryService, ReleaseStore

DOCUMENTS = ["abab", "abba", "baba", "bbbb", "aabb"]

#: (kind, builder kwargs) for every kind in the default registry; the budget
#: carries delta > 0 so qgram-t4 builds, and noiseless + threshold 1 make
#: the structures deterministic and non-empty on the tiny fixture.  The
#: continual kind builds the same documents as a one-epoch stream — the
#: single-shot special case of the tree schedule.
KIND_KWARGS = {
    "heavy-path": {},
    "heavy-path-continual": {
        "stream": CorpusStream.from_epochs([DOCUMENTS]),
        "seed": 7,
    },
    "qgram-t3": {"q": 2},
    "qgram-t4": {"q": 2},
    "baseline": {"max_nodes": 500},
}


@pytest.fixture(scope="module")
def counters():
    dataset = (
        Dataset.from_documents(DOCUMENTS)
        .with_budget(2.0, 1e-6)
        .with_beta(0.1)
        .noiseless()
        .with_threshold(1.0)
    )
    return {
        kind: dataset.build(kind, rng=np.random.default_rng(7), **kwargs)
        for kind, kwargs in KIND_KWARGS.items()
    }


def test_fixture_covers_every_registered_kind():
    assert set(KIND_KWARGS) == set(default_registry().kinds())


@pytest.mark.parametrize("kind", sorted(KIND_KWARGS))
class TestProtocol:
    def test_satisfies_private_counter(self, counters, kind):
        assert isinstance(counters[kind], PrivateCounter)

    def test_stores_something(self, counters, kind):
        assert counters[kind].num_stored_patterns > 0

    def test_query_many_matches_query_loop(self, counters, kind):
        counter = counters[kind]
        patterns = [p for p, _ in counter.items()] + ["", "zz", "ab", "ba"]
        expected = np.array([counter.query(p) for p in patterns])
        assert np.array_equal(counter.query_many(patterns), expected)

    def test_payload_round_trip_preserves_queries(self, counters, kind):
        counter = counters[kind]
        clone = PrivateCountingTrie.from_payload(counter.to_payload())
        patterns = [p for p, _ in counter.items()] + ["", "zz"]
        for pattern in patterns:
            assert clone.query(pattern) == counter.query(pattern)

    def test_release_store_round_trip(self, counters, kind, tmp_path):
        counter = counters[kind]
        store = ReleaseStore(tmp_path / "store")
        record = counter.release(store, kind)
        assert record.version == 1
        loaded = store.load(kind)
        assert loaded.content_digest() == counter.content_digest()
        patterns = [p for p, _ in counter.items()] + ["", "zz"]
        assert np.array_equal(
            loaded.query_many(patterns), counter.query_many(patterns)
        )

    def test_serves_through_query_service(self, counters, kind):
        counter = counters[kind]
        service = QueryService({kind: counter}, micro_batch=False)
        patterns = [p for p, _ in counter.items()][:5] or ["ab"]
        assert service.batch(patterns, release=kind) == [
            counter.query(p) for p in patterns
        ]

    def test_mine_agrees_with_items(self, counters, kind):
        counter = counters[kind]
        mined = counter.mine(1.0)
        assert set(mined) <= set(counter.items())

    def test_invalidate_cached_views_after_in_place_mutation(self, counters, kind):
        """Structures are read-only by contract; code that edits stored
        counts in place must invalidate, after which query_many agrees
        with query again."""
        counter = counters[kind]
        pattern, original = next(iter(counter.items()))
        counter.query_many([pattern])  # populate the cached view
        node = counter.trie.find(pattern)
        node.noisy_count = original + 123.0
        try:
            counter.invalidate_cached_views()
            assert counter.query_many([pattern])[0] == counter.query(pattern)
        finally:
            node.noisy_count = original
            counter.invalidate_cached_views()


class TestCompiledCounter:
    def test_compiled_trie_satisfies_protocol(self, counters):
        compiled = CompiledTrie.from_structure(counters["heavy-path"])
        assert isinstance(compiled, PrivateCounter)

    def test_compiled_payload_matches_source(self, counters):
        source = counters["heavy-path"]
        compiled = CompiledTrie.from_structure(source)
        assert compiled.to_payload() == source.to_payload()

    def test_compiled_from_payload_round_trip(self, counters):
        source = counters["qgram-t3"]
        compiled = CompiledTrie.from_payload(source.to_payload())
        patterns = [p for p, _ in source.items()] + ["", "zz"]
        assert np.array_equal(
            compiled.query_many(patterns), source.query_many(patterns)
        )

    def test_compiled_trie_releases_through_the_store(self, counters, tmp_path):
        """A compiled trie ships through the same ReleaseStore as its
        source, byte-identical (same JSON, same digest)."""
        source = counters["heavy-path"]
        compiled = CompiledTrie.from_structure(source)
        assert compiled.content_digest() == source.content_digest()
        store = ReleaseStore(tmp_path / "store")
        record = compiled.release(store, "compiled")
        assert record.digest == source.content_digest()
        loaded = store.load("compiled")
        patterns = [p for p, _ in source.items()] + ["", "zz"]
        assert np.array_equal(
            loaded.query_many(patterns), compiled.query_many(patterns)
        )
