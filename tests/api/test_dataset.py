"""The fluent Dataset builder: immutability, parameter threading, ledger
routing, and equivalence with the direct construction functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Dataset
from repro.core.construction import build_private_counting_structure
from repro.core.params import ConstructionParams
from repro.dp.composition import PrivacyBudget
from repro.exceptions import BudgetExceededError, PrivacyParameterError
from repro.serving import BudgetLedger


class TestFluentConfiguration:
    def test_with_methods_return_new_datasets(self, example_db):
        base = Dataset.from_database(example_db)
        configured = base.with_budget(5.0, 1e-6).with_beta(0.2)
        assert base.params.budget.epsilon == 1.0
        assert base.params.beta == 0.05
        assert configured.params.budget == PrivacyBudget(5.0, 1e-6)
        assert configured.params.beta == 0.2

    def test_every_knob_threads_into_params(self, example_db):
        dataset = (
            Dataset.from_database(example_db)
            .with_budget(3.0)
            .with_beta(0.2)
            .with_contribution_cap(1)
            .with_threshold(7.0)
            .with_count_backend("naive")
            .noiseless()
        )
        params = dataset.params
        assert params.budget == PrivacyBudget(3.0, 0.0)
        assert params.beta == 0.2
        assert params.delta_cap == 1
        assert params.threshold == 7.0
        assert params.count_backend == "naive"
        assert params.noiseless

    def test_from_documents_builds_a_database(self):
        dataset = Dataset.from_documents(["ab", "ba"], max_length=4)
        assert dataset.database.num_documents == 2
        assert dataset.database.max_length == 4

    def test_build_without_an_explicit_budget_is_refused(self, example_db):
        """Privacy budgets are never spent implicitly: a dataset whose
        budget was not configured refuses to build."""
        with pytest.raises(PrivacyParameterError, match="with_budget"):
            Dataset.from_database(example_db).build("heavy-path")
        # Other knobs alone do not count as configuring a budget...
        with pytest.raises(PrivacyParameterError, match="with_budget"):
            Dataset.from_database(example_db).with_beta(0.2).build("heavy-path")
        # ... while with_budget and with_params both do.
        assert Dataset.from_database(example_db).with_budget(2.0).budget_configured
        params = ConstructionParams.pure(2.0, beta=0.1)
        assert Dataset.from_database(example_db).with_params(params).budget_configured

    def test_build_matches_direct_construction_bit_for_bit(self, example_db):
        params = ConstructionParams.pure(2.0, beta=0.1)
        direct = build_private_counting_structure(
            example_db, params, rng=np.random.default_rng(42)
        )
        fluent = (
            Dataset.from_database(example_db)
            .with_params(params)
            .build("heavy-path", rng=np.random.default_rng(42))
        )
        # The report carries wall-clock timings, so compare the released
        # values: stored counts and public metadata.
        assert fluent.to_payload()["counts"] == direct.to_payload()["counts"]
        assert fluent.metadata == direct.metadata


class TestLedgerRouting:
    def test_builds_charge_the_ledger(self, example_db):
        ledger = BudgetLedger(PrivacyBudget(5.0))
        dataset = (
            Dataset.from_database(example_db)
            .with_budget(2.0)
            .with_beta(0.1)
            .with_ledger(ledger, "example")
        )
        dataset.build("heavy-path", rng=np.random.default_rng(0))
        assert ledger.spent("example").epsilon == pytest.approx(2.0)

    def test_over_cap_build_is_refused(self, example_db):
        ledger = BudgetLedger(PrivacyBudget(3.0))
        dataset = (
            Dataset.from_database(example_db)
            .with_budget(2.0)
            .with_beta(0.1)
            .with_ledger(ledger, "example")
        )
        dataset.build("heavy-path", rng=np.random.default_rng(0))
        with pytest.raises(BudgetExceededError):
            dataset.build("heavy-path", rng=np.random.default_rng(0))
        assert ledger.spent("example").epsilon == pytest.approx(2.0)

    def test_ledger_guards_every_kind(self, example_db):
        ledger = BudgetLedger(PrivacyBudget(2.5))
        dataset = (
            Dataset.from_database(example_db)
            .with_budget(2.0)
            .with_beta(0.1)
            .noiseless()
            .with_threshold(1.0)
            .with_ledger(ledger, "example")
        )
        counter = dataset.build("qgram-t3", rng=np.random.default_rng(0), q=2)
        assert counter.metadata.qgram_length == 2
        with pytest.raises(BudgetExceededError):
            dataset.build("baseline", rng=np.random.default_rng(0))
