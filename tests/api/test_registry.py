"""Registry behaviour: lookup, registration of custom kinds, required
keyword enforcement, and the error surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    Dataset,
    StructureRegistry,
    default_registry,
    register_structure_kind,
)
from repro.core.construction import build_private_counting_structure
from repro.core.params import ConstructionParams
from repro.exceptions import ReproError, UnknownStructureKindError


@pytest.fixture
def params():
    return ConstructionParams.pure(2.0, beta=0.1, noiseless=True, threshold=1.0)


class TestDefaultRegistry:
    def test_registers_the_paper_kinds(self):
        assert default_registry().kinds() == [
            "heavy-path",
            "qgram-t3",
            "qgram-t4",
            "baseline",
            "heavy-path-continual",
        ]

    def test_unknown_kind_lists_the_registered_ones(self, example_db, params):
        with pytest.raises(UnknownStructureKindError, match="heavy-path"):
            default_registry().build("no-such-kind", example_db, params)

    def test_missing_required_keyword_is_reported(self, example_db, params):
        with pytest.raises(ReproError, match="'q'"):
            default_registry().build("qgram-t3", example_db, params)

    def test_describe_is_json_friendly(self):
        described = default_registry().describe()
        assert {entry["kind"] for entry in described} == set(
            default_registry().kinds()
        )
        assert all(entry["description"] for entry in described)

    def test_duplicate_registration_refused(self):
        registry = default_registry()
        with pytest.raises(ReproError, match="already registered"):
            registry.register("heavy-path", lambda *a, **k: None)


class TestCustomKinds:
    def test_custom_kind_in_isolated_registry(self, example_db, params):
        registry = StructureRegistry()

        def document_counter(database, build_params, *, rng=None, **kwargs):
            return build_private_counting_structure(
                database, build_params.for_document_count(), rng=rng, **kwargs
            )

        registry.register(
            "doc-count", document_counter, description="Delta = 1 heavy-path"
        )
        counter = (
            Dataset.from_database(example_db)
            .with_params(params)
            .with_registry(registry)
            .build("doc-count", rng=np.random.default_rng(0))
        )
        assert counter.metadata.delta_cap == 1
        # The isolated registry does not know the default kinds...
        with pytest.raises(UnknownStructureKindError):
            registry.get("heavy-path")
        # ... and the default registry does not know the custom one.
        assert "doc-count" not in default_registry()

    def test_register_structure_kind_into_default(self, example_db, params):
        def trivial(database, build_params, *, rng=None, **kwargs):
            return build_private_counting_structure(database, build_params, rng=rng)

        try:
            register_structure_kind("tmp-kind", trivial, description="test kind")
            assert "tmp-kind" in default_registry()
            counter = (
                Dataset.from_database(example_db)
                .with_params(params)
                .build("tmp-kind", rng=np.random.default_rng(0))
            )
            assert counter.num_stored_patterns > 0
        finally:
            default_registry().unregister("tmp-kind")
        assert "tmp-kind" not in default_registry()

    def test_overwrite_requires_opt_in(self):
        registry = StructureRegistry()
        registry.register("kind", lambda *a, **k: None)
        with pytest.raises(ReproError):
            registry.register("kind", lambda *a, **k: None)
        registry.register("kind", lambda *a, **k: None, overwrite=True)
        assert len(registry) == 1

    def test_requires_are_enforced_for_custom_kinds(self, example_db, params):
        registry = StructureRegistry()
        registry.register(
            "needs-width",
            lambda db, p, *, rng=None, width: None,
            requires=("width",),
        )
        with pytest.raises(ReproError, match="'width'"):
            registry.build("needs-width", example_db, params)
