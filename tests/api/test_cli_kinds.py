"""End-to-end CLI coverage of the unified API: ``dpsc releases --build
--kind qgram-t3`` stores a q-gram release that serves through the query
service, and ``dpsc mine --kind`` mines it."""

from __future__ import annotations

from repro.cli import main
from repro.serving import QueryService, ReleaseStore


def _build_args(store, kind, extra=()):
    return [
        "releases",
        "--store",
        str(store),
        "--build",
        "genome",
        "--kind",
        kind,
        "--n",
        "60",
        "--ell",
        "10",
        "--epsilon",
        "30",
        "--seed",
        "3",
        *extra,
    ]


class TestReleasesKind:
    def test_qgram_t3_release_serves_end_to_end(self, tmp_path, capsys):
        store_dir = tmp_path / "rel"
        assert main(_build_args(store_dir, "qgram-t3", ["--q", "3"])) == 0
        out = capsys.readouterr().out
        assert "saved genome v1" in out
        assert "theorem-3" in out

        store = ReleaseStore(store_dir)
        structure = store.load("genome")
        assert structure.metadata.qgram_length == 3
        assert structure.metadata.construction.startswith("theorem-3")

        service = QueryService.from_store(store, micro_batch=False)
        patterns = [p for p, _ in structure.items()][:4] or ["ACG"]
        assert service.batch(patterns) == [structure.query(p) for p in patterns]

    def test_qgram_t4_release_needs_delta(self, tmp_path, capsys):
        store_dir = tmp_path / "rel"
        # Without delta the Theorem 4 construction refuses (pure budget)...
        assert main(_build_args(store_dir, "qgram-t4", ["--q", "3"])) == 2
        assert "delta" in capsys.readouterr().err
        # ... and with delta > 0 it builds and lists.
        assert (
            main(_build_args(store_dir, "qgram-t4", ["--q", "3", "--delta", "1e-6"]))
            == 0
        )
        assert "theorem-4" in capsys.readouterr().out

    def test_heavy_path_remains_the_default_kind(self, tmp_path, capsys):
        store_dir = tmp_path / "rel"
        assert main(_build_args(store_dir, "heavy-path")) == 0
        assert "theorem-1" in capsys.readouterr().out

    def test_ledger_composes_across_kinds(self, tmp_path, capsys):
        store_dir = tmp_path / "rel"
        cap = ["--cap-epsilon", "70"]
        assert main(_build_args(store_dir, "heavy-path", cap)) == 0
        assert main(_build_args(store_dir, "qgram-t3", ["--q", "3", *cap])) == 0
        # 30 + 30 spent; the third build would breach the 70 cap.
        assert main(_build_args(store_dir, "qgram-t3", ["--q", "3", *cap])) == 2
        assert "exceed" in capsys.readouterr().err


class TestMineKind:
    def test_mine_accepts_a_qgram_kind(self, capsys):
        code = main(
            [
                "mine",
                "--workload",
                "genome",
                "--kind",
                "qgram-t3",
                "--q",
                "3",
                "--n",
                "60",
                "--ell",
                "10",
                "--epsilon",
                "30",
            ]
        )
        assert code == 0
        assert "kind=qgram-t3" in capsys.readouterr().out

    def test_mine_reports_kind_errors_cleanly(self, capsys):
        code = main(
            [
                "mine",
                "--kind",
                "qgram-t4",
                "--q",
                "3",
                "--n",
                "40",
                "--ell",
                "8",
            ]
        )
        assert code == 2
        assert "delta" in capsys.readouterr().err


def test_quickstart_still_runs(capsys):
    assert main(["quickstart"]) == 0
    assert "error bound" in capsys.readouterr().out


def test_registry_kinds_are_cli_choices():
    from repro.api import default_registry
    from repro.cli import build_parser

    parser = build_parser()
    for kind in default_registry().kinds():
        args = parser.parse_args(["mine", "--kind", kind])
        assert args.kind == kind
