"""Property test: for every registered structure kind, ``query_many`` is
bit-for-bit the per-pattern ``query`` loop — on arbitrary pattern batches,
including empty patterns, misses, characters outside the alphabet and
mixed/uniform lengths (the two vectorized paths of the compiled trie)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CorpusStream, Dataset, default_registry

#: Patterns probe stored entries, near-misses ("c" is in no document) and
#: outside-alphabet characters ("z", NUL); uniform-length lists arise
#: naturally from min/max size collisions.
PATTERN = st.text(alphabet="abcz\x00", min_size=0, max_size=6)
PATTERNS = st.lists(PATTERN, min_size=0, max_size=32)
UNIFORM_PATTERNS = st.integers(1, 4).flatmap(
    lambda width: st.lists(
        st.text(alphabet="abcz", min_size=width, max_size=width),
        min_size=2,
        max_size=32,
    )
)

DOCUMENTS = ["abab", "abba", "baba", "bbbb", "aabb", "abc"]

KIND_KWARGS = {
    "heavy-path": {},
    "heavy-path-continual": {
        "stream": CorpusStream.from_epochs([DOCUMENTS]),
        "seed": 3,
    },
    "qgram-t3": {"q": 2},
    "qgram-t4": {"q": 2},
    "baseline": {"max_nodes": 500},
}


@pytest.fixture(scope="module")
def counters():
    dataset = (
        Dataset.from_documents(DOCUMENTS)
        .with_budget(2.0, 1e-6)
        .with_beta(0.1)
        .noiseless()
        .with_threshold(1.0)
    )
    built = {
        kind: dataset.build(kind, rng=np.random.default_rng(3), **kwargs)
        for kind, kwargs in KIND_KWARGS.items()
    }
    assert set(built) == set(default_registry().kinds())
    return built


@pytest.mark.parametrize("kind", sorted(KIND_KWARGS))
class TestQueryManyEquality:
    @settings(max_examples=60, deadline=None)
    @given(patterns=PATTERNS)
    def test_arbitrary_batches(self, counters, kind, patterns):
        counter = counters[kind]
        expected = np.array(
            [counter.query(p) for p in patterns], dtype=np.float64
        )
        assert np.array_equal(counter.query_many(patterns), expected)

    @settings(max_examples=40, deadline=None)
    @given(patterns=UNIFORM_PATTERNS)
    def test_uniform_length_batches(self, counters, kind, patterns):
        """Fixed-length traffic exercises the compiled trie's uniform batch
        fast path; the counts must still match the loop exactly."""
        counter = counters[kind]
        expected = np.array(
            [counter.query(p) for p in patterns], dtype=np.float64
        )
        assert np.array_equal(counter.query_many(patterns), expected)
