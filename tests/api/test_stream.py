"""Tests for the append-only corpus stream and the continual structure kind.

The api-layer guarantees: the stream freezes its public parameters at the
first epoch (every interval build must see identical metadata); the
``heavy-path-continual`` kind combines one base structure per dyadic
cover interval deterministically (digest-stable under replay, exactly one
fresh build per epoch with a cache); and ``Dataset.from_stream`` plugs
the stream into the registry contract without special-casing callers.
"""

from __future__ import annotations

import pytest

from repro.api import CorpusStream, Dataset, build_continual_structure, default_registry
from repro.api.continual import continual_interval_structures
from repro.core.params import ConstructionParams
from repro.dp.composition import PrivacyBudget
from repro.exceptions import InvalidDocumentError, ReproError

EPOCHS = (
    ("abab", "abba"),
    ("baba",),
    ("aabb", "bbaa"),
    ("abab", "bbbb"),
)


@pytest.fixture
def stream():
    return CorpusStream.from_epochs(EPOCHS, name="demo")


@pytest.fixture
def params():
    return ConstructionParams(budget=PrivacyBudget(2.0), beta=0.1)


class TestCorpusStream:
    def test_append_returns_epoch_numbers(self):
        stream = CorpusStream(name="s")
        assert stream.append_epoch(("ab",)) == 1
        assert stream.append_epoch(("ba",)) == 2
        assert stream.num_epochs == 2 and stream.num_documents == 2

    def test_empty_epochs_are_rejected(self):
        stream = CorpusStream(name="s")
        with pytest.raises(InvalidDocumentError):
            stream.append_epoch(())

    def test_public_parameters_freeze_at_first_epoch(self):
        stream = CorpusStream(name="s")
        stream.append_epoch(("abab",))
        assert stream.max_length == 4
        with pytest.raises(InvalidDocumentError):
            stream.append_epoch(("abcab",))  # 'c' outside the frozen alphabet
        with pytest.raises(InvalidDocumentError):
            stream.append_epoch(("aaaaa",))  # longer than the frozen bound

    def test_dyadic_slicing(self, stream):
        assert stream.documents_in(0, 2) == ["abab", "abba", "baba"]
        assert stream.documents_in(2, 3) == ["aabb", "bbaa"]
        assert stream.epoch_documents(2) == ("baba",)
        assert len(stream.full_database()) == 7
        with pytest.raises(ReproError):
            stream.documents_in(0, 9)
        with pytest.raises(ReproError):
            stream.epoch_documents(5)

    def test_interval_databases_share_public_metadata(self, stream):
        full = stream.full_database()
        part = stream.database_for(2, 3)
        assert part.alphabet.symbols == full.alphabet.symbols
        assert part.max_length == full.max_length

    def test_empty_stream_has_no_database(self):
        with pytest.raises(ReproError):
            CorpusStream(name="s").full_database()


class TestContinualKind:
    def test_registered_and_requires_stream(self):
        kind = default_registry().get("heavy-path-continual")
        assert "stream" in kind.requires
        with pytest.raises(ReproError, match="requires keyword"):
            default_registry().build(
                "heavy-path-continual",
                None,
                ConstructionParams(budget=PrivacyBudget(1.0), beta=0.1),
            )

    def test_one_interval_build_per_epoch_with_cache(self, stream, params):
        cache = {}
        continual_interval_structures(stream, params, epoch=3, cache=cache)
        assert set(cache) == {(0, 2), (2, 3)}
        built_before = dict(cache)
        continual_interval_structures(stream, params, epoch=4, cache=cache)
        assert set(cache) == {(0, 2), (2, 3), (0, 4)}
        # Previously built intervals were reused, not rebuilt.
        assert all(cache[key] is built_before[key] for key in built_before)

    def test_cannot_recurse_into_itself(self, stream, params):
        with pytest.raises(ReproError, match="recurse"):
            continual_interval_structures(
                stream, params, epoch=1, base_kind="heavy-path-continual"
            )

    def test_epoch_must_have_arrived(self, stream, params):
        with pytest.raises(ReproError, match="not yet in stream"):
            build_continual_structure(stream, params, epoch=9)

    def test_combined_counts_are_cover_sums(self, stream, params):
        cache = {}
        combined = build_continual_structure(stream, params, epoch=3, cache=cache)
        parts = [cache[key] for key in ((0, 2), (2, 3))]
        for pattern, count in combined.items():
            expected = sum(dict(part.items()).get(pattern, 0.0) for part in parts)
            assert count == pytest.approx(expected)

    def test_digest_stable_under_replay(self, stream, params):
        first = build_continual_structure(stream, params, epoch=4, seed=5)
        second = build_continual_structure(stream, params, epoch=4, seed=5)
        third = build_continual_structure(stream, params, epoch=4, seed=6)
        assert first.content_digest() == second.content_digest()
        assert first.content_digest() != third.content_digest()

    def test_report_documents_the_cover(self, stream, params):
        structure = build_continual_structure(stream, params, epoch=3)
        assert structure.report["cover"] == [[0, 2], [2, 3]]
        assert structure.report["levels_used"] == 2
        assert set(structure.report["interval_digests"]) == {"0:2", "2:3"}


class TestDatasetFromStream:
    def test_builds_latest_epoch_without_stream_keyword(self, stream, params):
        counter = Dataset.from_stream(stream).with_params(params).build(
            "heavy-path-continual"
        )
        assert counter.metadata.epsilon == pytest.approx(
            stream.num_epochs.bit_length() * params.budget.epsilon
        )
        direct = build_continual_structure(stream, params)
        assert counter.content_digest() == direct.content_digest()

    def test_single_shot_kinds_still_work_on_the_snapshot(self, stream, params):
        counter = Dataset.from_stream(stream).with_params(params).build("baseline")
        assert counter.metadata.num_documents == stream.num_documents
