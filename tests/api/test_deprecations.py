"""The legacy ``build_*`` entry points: warn exactly once per function, and
keep producing bit-for-bit the results of the unified API under a fixed rng."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import (
    build_private_counting_structure,
    build_qgram_structure,
    build_theorem1_structure,
    build_theorem2_structure,
    build_theorem3_qgram_structure,
    build_theorem4_qgram_structure,
)
from repro._deprecation import reset_deprecation_warnings
from repro.api import Dataset
from repro.core.params import ConstructionParams


@pytest.fixture(autouse=True)
def fresh_warning_state():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


def _shim_calls(example_db):
    """One invocation per deprecated shim (cheap noiseless builds)."""
    pure = ConstructionParams.pure(2.0, beta=0.1, noiseless=True, threshold=1.0)
    approx = ConstructionParams.approximate(
        2.0, 1e-6, beta=0.1, noiseless=True, threshold=1.0
    )
    def rng():
        return np.random.default_rng(0)

    return {
        "build_theorem1_structure": lambda: build_theorem1_structure(
            example_db, 2.0, beta=0.1, rng=rng(), threshold=1.0
        ),
        "build_theorem2_structure": lambda: build_theorem2_structure(
            example_db, 2.0, 1e-6, beta=0.1, rng=rng(), threshold=1.0
        ),
        "build_qgram_structure": lambda: build_qgram_structure(
            example_db, 2, pure, rng=rng()
        ),
        "build_theorem3_qgram_structure": lambda: build_theorem3_qgram_structure(
            example_db, 2, pure, rng=rng()
        ),
        "build_theorem4_qgram_structure": lambda: build_theorem4_qgram_structure(
            example_db, 2, approx, rng=rng()
        ),
    }


class TestWarnOnce:
    def test_each_shim_warns_exactly_once(self, example_db):
        for name, call in _shim_calls(example_db).items():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                call()
                call()
            messages = [
                str(w.message)
                for w in caught
                if issubclass(w.category, DeprecationWarning)
                and name in str(w.message)
            ]
            assert len(messages) == 1, (
                f"{name} warned {len(messages)} times: {messages}"
            )
            assert "Dataset" in messages[0]

    def test_importing_repro_is_deprecation_clean(self):
        """Internal code never routes through the shims, so (re)importing
        the package emits no DeprecationWarning (CI enforces the same with
        ``python -W error::DeprecationWarning -c "import repro"``)."""
        import importlib

        import repro

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.reload(repro)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert not deprecations


class TestShimEquivalence:
    def test_old_quickstart_matches_new_api_bit_for_bit(self, example_db):
        """The pre-api quickstart (build_private_counting_structure) must
        keep producing identical structures under a fixed rng."""
        params = ConstructionParams.pure(2.0, beta=0.1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = build_private_counting_structure(
                example_db, params, rng=np.random.default_rng(0)
            )
        new = (
            Dataset.from_database(example_db)
            .with_params(params)
            .build("heavy-path", rng=np.random.default_rng(0))
        )
        assert old.to_payload()["counts"] == new.to_payload()["counts"]
        assert old.metadata == new.metadata

    @pytest.mark.parametrize(
        "shim_name, kind, q",
        [
            ("build_theorem3_qgram_structure", "qgram-t3", 2),
            ("build_theorem4_qgram_structure", "qgram-t4", 2),
        ],
    )
    def test_qgram_shims_match_registry_kinds(self, example_db, shim_name, kind, q):
        params = (
            ConstructionParams.pure(2.0, beta=0.1, noiseless=True, threshold=1.0)
            if kind == "qgram-t3"
            else ConstructionParams.approximate(
                2.0, 1e-6, beta=0.1, noiseless=True, threshold=1.0
            )
        )
        shim = _shim_calls(example_db)[shim_name]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = shim()
        new = (
            Dataset.from_database(example_db)
            .with_params(params)
            .build(kind, rng=np.random.default_rng(0), q=q)
        )
        assert old.to_payload()["counts"] == new.to_payload()["counts"]
        assert old.metadata == new.metadata


class TestLceParameterShim:
    """The dead ``lce`` parameter of ``suffix_prefix_overlaps``: accepted,
    ignored, and announced as deprecated exactly once per process."""

    def test_passing_lce_warns_once_and_changes_nothing(self):
        from repro.core.candidate_set import suffix_prefix_overlaps

        strings = ["abc", "cab", "bca"]
        clean = suffix_prefix_overlaps(strings, 1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = suffix_prefix_overlaps(strings, 1, None)
            suffix_prefix_overlaps(strings, 1, None)  # second call: silent
        assert shimmed == clean
        messages = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(messages) == 1
        assert "lce parameter" in str(messages[0].message)

    def test_not_passing_lce_never_warns(self):
        from repro.core.candidate_set import suffix_prefix_overlaps

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            suffix_prefix_overlaps(["abc", "cab"], 1)
        assert not caught
