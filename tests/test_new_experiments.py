"""Tests for the E18/E19 experiment runners and their CLI registration."""

from __future__ import annotations

import pytest

from repro.analysis import experiments
from repro.cli import EXPERIMENT_REGISTRY, main


class TestTreeStrategyComparison:
    def test_rows_have_expected_columns(self):
        rows = experiments.run_tree_strategy_comparison([16, 64], num_items=60, trials=1)
        assert [row["universe"] for row in rows] == [16, 64]
        for row in rows:
            for key in (
                "heavy_path_max_error",
                "range_counting_max_error",
                "leaf_sum_max_error",
                "heavy_path_bound",
                "range_counting_bound",
                "leaf_sum_bound",
            ):
                assert row[key] >= 0.0

    def test_measured_errors_respect_bounds(self):
        rows = experiments.run_tree_strategy_comparison([32], num_items=100, trials=2)
        row = rows[0]
        assert row["heavy_path_max_error"] <= row["heavy_path_bound"]
        assert row["range_counting_max_error"] <= row["range_counting_bound"]
        assert row["leaf_sum_max_error"] <= row["leaf_sum_bound"]

    def test_leaf_sum_bound_grows_fastest(self):
        rows = experiments.run_tree_strategy_comparison(
            [16, 256], num_items=60, trials=1
        )
        leaf_growth = rows[-1]["leaf_sum_bound"] / rows[0]["leaf_sum_bound"]
        heavy_growth = rows[-1]["heavy_path_bound"] / rows[0]["heavy_path_bound"]
        range_growth = rows[-1]["range_counting_bound"] / rows[0]["range_counting_bound"]
        assert leaf_growth > heavy_growth
        assert leaf_growth > range_growth


class TestCandidateGrowthAblation:
    def test_rows_and_monotone_ratio(self):
        rows = experiments.run_candidate_growth_ablation([8, 16], n=6)
        assert [row["ell"] for row in rows] == [8, 16]
        ratios = [row["alpha_ratio"] for row in rows]
        assert all(ratio >= 1.0 for ratio in ratios)
        assert ratios == sorted(ratios)

    def test_doubling_uses_fewer_levels(self):
        rows = experiments.run_candidate_growth_ablation([16], n=6)
        row = rows[0]
        assert row["doubling_levels"] < row["onestep_levels"]
        assert row["doubling_candidates"] >= row["onestep_candidates"]


class TestCliRegistration:
    @pytest.mark.parametrize("experiment_id", ["E18", "E19"])
    def test_registry_contains_new_experiments(self, experiment_id):
        assert experiment_id in EXPERIMENT_REGISTRY
        title, runner = EXPERIMENT_REGISTRY[experiment_id]
        assert title
        assert callable(runner)

    def test_list_mentions_new_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "E18" in output and "E19" in output

    def test_run_e19_from_cli(self, capsys):
        assert main(["run", "E19"]) == 0
        output = capsys.readouterr().out
        assert "alpha_ratio" in output


class TestCliRunAll:
    def test_unknown_id_still_rejected(self, capsys):
        assert main(["run", "E99"]) == 2

    def test_run_all_accepts_save_directory(self, tmp_path, capsys, monkeypatch):
        """`dpsc run all --save DIR` runs every registered experiment; patch
        the registry to two tiny runners so the test stays fast."""
        import repro.cli as cli

        tiny = {
            "E1": ("tiny one", lambda: [{"value": 1}]),
            "E2": ("tiny two", lambda: [{"value": 2}]),
        }
        monkeypatch.setattr(cli, "EXPERIMENT_REGISTRY", tiny)
        assert cli.main(["run", "all", "--save", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "tiny one" in output and "tiny two" in output
        assert (tmp_path / "E1.json").exists() and (tmp_path / "E2.json").exists()
