"""Cross-backend equivalence and selection tests for the counting engines.

The unified counting layer's contract is that every backend returns
bitwise-identical ``count_many`` vectors on every input — the backend choice
may only ever change speed, never a single count.  These tests enforce that
contract on hand-picked corpora, on property-based random corpora, and
through the ``StringDatabase.count_many`` front door the construction
algorithms use.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import ConstructionParams
from repro.counting import (
    AUTO_BACKEND,
    BACKENDS,
    AhoCorasickEngine,
    CountingEngine,
    NaiveEngine,
    SuffixArrayEngine,
    auto_backend,
    make_engine,
    resolve_backend,
)
from repro.exceptions import PrivacyParameterError
from repro.strings.naive import all_substrings

DOC = st.text(alphabet="abc", min_size=1, max_size=10)
DOCS = st.lists(DOC, min_size=1, max_size=5)
PATTERN = st.text(alphabet="abcd", min_size=0, max_size=6)
PATTERNS = st.lists(PATTERN, min_size=0, max_size=12)


def engines_for(documents):
    return [make_engine(backend, documents) for backend in BACKENDS]


class TestCrossBackendEquality:
    def test_example_collection_all_deltas(self, example_db):
        documents = list(example_db)
        patterns = sorted(all_substrings(documents)) + ["", "zz", "aaaa", "be", "be"]
        for delta in (1, 2, 3, 100):
            reference, *others = [
                engine.count_many(patterns, delta) for engine in engines_for(documents)
            ]
            for counts in others:
                assert np.array_equal(reference, counts)

    @settings(max_examples=60, deadline=None)
    @given(documents=DOCS, patterns=PATTERNS, delta=st.integers(1, 12))
    def test_random_corpora(self, documents, patterns, delta):
        reference, *others = [
            engine.count_many(patterns, delta) for engine in engines_for(documents)
        ]
        for counts in others:
            assert np.array_equal(reference, counts)

    def test_duplicates_and_absent_patterns(self):
        documents = ["abab", "bbb"]
        patterns = ["ab", "ab", "zzz", "", "b", "ab"]
        vectors = [
            engine.count_many(patterns, 2) for engine in engines_for(documents)
        ]
        for counts in vectors:
            assert counts[0] == counts[1] == counts[5]
            assert counts[2] == 0
        assert np.array_equal(vectors[0], vectors[1])
        assert np.array_equal(vectors[0], vectors[2])

    def test_empty_batch(self):
        for engine in engines_for(["ab"]):
            counts = engine.count_many([], 3)
            assert counts.shape == (0,)
            assert counts.dtype == np.int64

    def test_empty_pattern_is_capped_total_length(self):
        documents = ["aaaa", "bb"]
        for engine in engines_for(documents):
            assert engine.count_many([""], 3)[0] == 3 + 2
            assert engine.count_many([""], 100)[0] == 6

    def test_delta_below_one_rejected(self):
        for engine in engines_for(["ab"]):
            with pytest.raises(ValueError):
                engine.count_many(["a"], 0)


class TestBackendSelection:
    def test_concrete_names_resolve_to_themselves(self):
        for backend in BACKENDS:
            assert resolve_backend(backend) == backend
            assert resolve_backend(backend, 10_000, 10) == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("suffix-tree")
        with pytest.raises(ValueError):
            make_engine("auto", ["ab"])  # auto must be resolved first

    def test_auto_prefers_index_for_small_batches(self):
        assert auto_backend(1, 1000) == "suffix-array"
        assert auto_backend(4, 1000) == "suffix-array"

    def test_auto_prefers_automaton_for_level_sized_batches(self):
        assert auto_backend(256, 10_000) == "aho-corasick"
        assert auto_backend(1024, 100_000) == "aho-corasick"

    def test_auto_keeps_tiny_batches_off_huge_corpora(self):
        assert auto_backend(64, 10**7) == "suffix-array"

    def test_auto_without_sizes_falls_back_to_index(self):
        assert resolve_backend(AUTO_BACKEND) == "suffix-array"

    def test_engines_satisfy_protocol(self):
        for engine in engines_for(["ab"]):
            assert isinstance(engine, CountingEngine)
        assert isinstance(NaiveEngine(["a"]), CountingEngine)
        assert isinstance(SuffixArrayEngine(["a"]), CountingEngine)
        assert isinstance(AhoCorasickEngine(["a"]), CountingEngine)


class TestDatabaseFrontDoor:
    def test_count_many_matches_per_pattern_count(self, example_db):
        patterns = ["ab", "be", "", "absab", "nope"]
        for backend in (AUTO_BACKEND,) + BACKENDS:
            counts = example_db.count_many(patterns, 2, backend=backend)
            assert counts.tolist() == [
                example_db.count(p, 2) for p in patterns
            ]

    def test_default_cap_is_max_length(self, example_db):
        counts = example_db.count_many(["a"])
        assert counts[0] == example_db.count("a", example_db.max_length)

    def test_suffix_array_engine_shares_database_index(self, example_db):
        engine = example_db.engine("suffix-array")
        assert engine.index is example_db.index
        assert example_db.engine("suffix-array") is engine  # cached

    def test_engine_rejects_auto(self, example_db):
        with pytest.raises(ValueError):
            example_db.engine(AUTO_BACKEND)

    def test_params_validate_backend(self):
        params = ConstructionParams.pure(1.0, count_backend="aho-corasick")
        assert params.count_backend == "aho-corasick"
        with pytest.raises(PrivacyParameterError):
            ConstructionParams.pure(1.0, count_backend="suffix-tree")


class TestBackendRecordedInReleases:
    def test_construction_records_backend(self, small_db, rng):
        from repro.core.construction import build_private_counting_structure

        params = ConstructionParams.pure(
            2.0, beta=0.1, count_backend="aho-corasick"
        )
        structure = build_private_counting_structure(small_db, params, rng=rng)
        assert structure.metadata.count_backend == "aho-corasick"
        assert structure.to_dict()["metadata"]["count_backend"] == "aho-corasick"

    def test_serialization_roundtrip_keeps_backend(self, small_db, rng):
        from repro.core.construction import build_private_counting_structure
        from repro.core.private_trie import PrivateCountingTrie

        params = ConstructionParams.pure(2.0, beta=0.1, count_backend="naive")
        structure = build_private_counting_structure(small_db, params, rng=rng)
        restored = PrivateCountingTrie.from_json(structure.to_json())
        assert restored.metadata.count_backend == "naive"
        assert restored.content_digest() == structure.content_digest()

    def test_legacy_payload_without_backend_still_loads(self, small_db, rng):
        from repro.core.construction import build_private_counting_structure
        from repro.core.private_trie import PrivateCountingTrie

        params = ConstructionParams.pure(2.0, beta=0.1)
        structure = build_private_counting_structure(small_db, params, rng=rng)
        payload = structure.to_dict()
        payload["metadata"].pop("count_backend", None)
        restored = PrivateCountingTrie.from_dict(payload)
        assert restored.metadata.count_backend == ""
        # The empty default is omitted on re-serialization, so digests of
        # pre-engine releases stay stable across the upgrade.
        assert "count_backend" not in restored.to_dict()["metadata"]


class TestConstructionBackendEquivalence:
    """With noiseless params the whole pipeline must be backend-invariant."""

    @pytest.mark.parametrize("backend", (AUTO_BACKEND,) + BACKENDS)
    def test_noiseless_candidate_sets_match(self, example_db, backend):
        from repro.core.candidate_set import build_candidate_set

        params = ConstructionParams.pure(
            1.0, beta=0.1, noiseless=True, threshold=1.0, count_backend=backend
        )
        reference = build_candidate_set(
            example_db,
            ConstructionParams.pure(1.0, beta=0.1, noiseless=True, threshold=1.0),
        )
        candidates = build_candidate_set(example_db, params)
        assert candidates.levels == reference.levels
        assert candidates.by_length == reference.by_length

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_noiseless_structures_answer_identically(self, small_db, backend):
        from repro.core.construction import build_private_counting_structure

        reference = build_private_counting_structure(
            small_db,
            ConstructionParams.pure(1.0, beta=0.1, noiseless=True, threshold=1.0),
            rng=np.random.default_rng(0),
        )
        structure = build_private_counting_structure(
            small_db,
            ConstructionParams.pure(
                1.0, beta=0.1, noiseless=True, threshold=1.0, count_backend=backend
            ),
            rng=np.random.default_rng(0),
        )
        assert dict(structure.items()) == dict(reference.items())
