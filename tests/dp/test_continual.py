"""Tests for the continual-observation accountant (the dyadic-tree schedule).

The load-bearing properties: the cumulative spend over ``T`` re-releases
equals ``bit_length(T)`` epoch budgets (so it fits a ledger cap of
``levels * epoch_budget``), and from ``T = 4`` on it is *strictly* below
the ``T * epoch_budget`` of naive sequential composition.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.composition import ContinualAccountant, PrivacyBudget
from repro.dp.prefix_sums import canonical_cover
from repro.exceptions import PrivacyParameterError


class TestScheduleGeometry:
    def test_levels_used(self):
        assert ContinualAccountant.levels_used(0) == 0
        assert [ContinualAccountant.levels_used(t) for t in range(1, 9)] == [
            1, 2, 2, 3, 3, 3, 3, 4,
        ]

    def test_new_interval_is_lowbit_block(self):
        assert ContinualAccountant.new_interval(1) == (0, 1)
        assert ContinualAccountant.new_interval(4) == (0, 4)
        assert ContinualAccountant.new_interval(6) == (4, 6)
        assert ContinualAccountant.new_interval(7) == (6, 7)
        with pytest.raises(PrivacyParameterError):
            ContinualAccountant.new_interval(0)

    def test_cover_reuses_canonical_cover(self):
        accountant = ContinualAccountant(PrivacyBudget(1.0), horizon=16)
        for epoch in range(1, 17):
            assert accountant.cover(epoch) == canonical_cover(epoch, 16)
            # ...and the epoch's one fresh build is the cover's last block.
            assert accountant.cover(epoch)[-1] == accountant.new_interval(epoch)

    def test_marginal_only_at_powers_of_two(self):
        accountant = ContinualAccountant(PrivacyBudget(2.0, 0.1), horizon=16)
        charged = [t for t in range(1, 17) if accountant.marginal(t) != (0.0, 0.0)]
        assert charged == [1, 2, 4, 8, 16]
        assert accountant.marginal(8) == (2.0, 0.1)

    def test_horizon_validation(self):
        with pytest.raises(PrivacyParameterError):
            ContinualAccountant(PrivacyBudget(1.0), horizon=0)
        accountant = ContinualAccountant(PrivacyBudget(1.0), horizon=4)
        with pytest.raises(PrivacyParameterError):
            accountant.marginal(5)
        with pytest.raises(PrivacyParameterError):
            accountant.cover(0)


class TestCharging:
    def test_epochs_must_arrive_in_order(self):
        accountant = ContinualAccountant(PrivacyBudget(1.0), horizon=8)
        accountant.charge_epoch()
        with pytest.raises(PrivacyParameterError, match="in order"):
            accountant.charge_epoch(3)  # skipping epoch 2
        with pytest.raises(PrivacyParameterError, match="in order"):
            accountant.charge_epoch(1)  # repeating epoch 1
        charge = accountant.charge_epoch(2)
        assert charge.new_level and charge.levels_used == 2

    def test_charge_records_and_closed_form_agree(self):
        budget = PrivacyBudget(3.0, 0.01)
        accountant = ContinualAccountant(budget, horizon=8)
        for epoch in range(1, 9):
            accountant.charge_epoch(epoch)
            epsilon, delta = accountant.spent_through(epoch)
            assert accountant.total_epsilon == pytest.approx(epsilon)
            assert accountant.total_delta == pytest.approx(delta)
        assert accountant.total_epsilon == pytest.approx(4 * 3.0)

    def test_horizon_is_a_hard_stop(self):
        accountant = ContinualAccountant(PrivacyBudget(1.0), horizon=2)
        accountant.charge_epoch()
        accountant.charge_epoch()
        with pytest.raises(PrivacyParameterError, match="horizon"):
            accountant.charge_epoch()


class TestBudgetProperties:
    @given(
        epochs=st.integers(1, 64),
        epsilon=st.floats(0.05, 50.0),
        delta=st.floats(0.0, 0.01),
    )
    @settings(max_examples=60, deadline=None)
    def test_total_spend_never_exceeds_ledger_cap(self, epochs, epsilon, delta):
        budget = PrivacyBudget(epsilon, delta)
        accountant = ContinualAccountant(budget, horizon=epochs)
        for epoch in range(1, epochs + 1):
            accountant.charge_epoch(epoch)
        cap = accountant.total_budget()
        assert accountant.total_epsilon <= cap.epsilon + 1e-9
        assert accountant.total_delta <= cap.delta + 1e-9
        # The closed form: bit_length(T) epoch budgets, exactly.
        assert accountant.total_epsilon == pytest.approx(
            epochs.bit_length() * epsilon
        )

    @given(epochs=st.integers(4, 64), epsilon=st.floats(0.05, 50.0))
    @settings(max_examples=60, deadline=None)
    def test_strictly_cheaper_than_naive_composition(self, epochs, epsilon):
        accountant = ContinualAccountant(PrivacyBudget(epsilon), horizon=epochs)
        for epoch in range(1, epochs + 1):
            accountant.charge_epoch(epoch)
        naive = accountant.naive_budget()
        assert naive.epsilon == pytest.approx(epochs * epsilon)
        assert accountant.total_epsilon < naive.epsilon - 1e-12
