"""Tests for repro.dp.composition."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.composition import PrivacyAccountant, PrivacyBudget
from repro.exceptions import PrivacyParameterError


class TestPrivacyBudget:
    def test_validation(self):
        with pytest.raises(PrivacyParameterError):
            PrivacyBudget(0.0)
        with pytest.raises(PrivacyParameterError):
            PrivacyBudget(1.0, delta=1.0)
        with pytest.raises(PrivacyParameterError):
            PrivacyBudget(1.0, delta=-0.1)

    def test_purity(self):
        assert PrivacyBudget(1.0).is_pure
        assert not PrivacyBudget(1.0, 1e-6).is_pure

    def test_split_and_scale(self):
        budget = PrivacyBudget(3.0, 0.3)
        third = budget.split(3)
        assert third.epsilon == pytest.approx(1.0)
        assert third.delta == pytest.approx(0.1)
        half = budget.scaled(0.5)
        assert half.epsilon == pytest.approx(1.5)

    def test_split_validation(self):
        with pytest.raises(PrivacyParameterError):
            PrivacyBudget(1.0).split(0)
        with pytest.raises(PrivacyParameterError):
            PrivacyBudget(1.0).scaled(0.0)

    def test_compose(self):
        combined = PrivacyBudget(1.0, 0.1).compose(PrivacyBudget(2.0, 0.2))
        assert combined.epsilon == pytest.approx(3.0)
        assert combined.delta == pytest.approx(0.3)

    @given(st.floats(0.1, 10.0), st.integers(1, 20))
    @settings(max_examples=40)
    def test_splits_recompose_to_budget(self, epsilon, parts):
        budget = PrivacyBudget(epsilon)
        share = budget.split(parts)
        assert share.epsilon * parts == pytest.approx(budget.epsilon)


class TestPrivacyAccountant:
    def test_totals(self):
        accountant = PrivacyAccountant()
        accountant.spend("a", 0.5)
        accountant.spend("b", 0.25, 1e-6)
        assert accountant.total_epsilon == pytest.approx(0.75)
        assert accountant.total_delta == pytest.approx(1e-6)
        assert len(accountant.records) == 2

    def test_within_budget(self):
        accountant = PrivacyAccountant()
        accountant.spend("a", 0.5)
        accountant.spend("b", 0.5)
        assert accountant.within(PrivacyBudget(1.0))
        assert not accountant.within(PrivacyBudget(0.9))

    def test_negative_spend_rejected(self):
        accountant = PrivacyAccountant()
        with pytest.raises(PrivacyParameterError):
            accountant.spend("bad", -0.1)

    def test_summary_mentions_labels(self):
        accountant = PrivacyAccountant()
        accountant.spend("candidates", 0.3)
        summary = accountant.summary()
        assert "candidates" in summary
        assert "total" in summary

    def test_empty_accountant_total(self):
        accountant = PrivacyAccountant()
        assert accountant.total().delta == 0.0
