"""Tests for repro.dp.mechanisms and repro.dp.distributions."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.distributions import (
    gaussian_sum_std,
    gaussian_tail_bound,
    laplace_sum_tail_bound,
    laplace_tail_bound,
    sample_gaussian,
    sample_laplace,
)
from repro.dp.mechanisms import GaussianMechanism, LaplaceMechanism, NoiselessMechanism
from repro.exceptions import PrivacyParameterError, SensitivityError


class TestDistributions:
    def test_zero_scale_sampling(self, rng):
        assert np.all(sample_laplace(0.0, 5, rng) == 0)
        assert np.all(sample_gaussian(0.0, 5, rng) == 0)

    def test_negative_scale_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_laplace(-1.0, 1, rng)
        with pytest.raises(ValueError):
            sample_gaussian(-1.0, 1, rng)

    def test_tail_bounds_monotone_in_beta(self):
        assert laplace_tail_bound(1.0, 0.01) > laplace_tail_bound(1.0, 0.1)
        assert gaussian_tail_bound(1.0, 0.01) > gaussian_tail_bound(1.0, 0.1)

    def test_invalid_beta_rejected(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                laplace_tail_bound(1.0, bad)
            with pytest.raises(ValueError):
                gaussian_tail_bound(1.0, bad)

    def test_laplace_tail_bound_is_valid(self, rng):
        scale, beta = 2.0, 0.05
        bound = laplace_tail_bound(scale, beta)
        samples = sample_laplace(scale, 20000, rng)
        violation_rate = np.mean(np.abs(samples) > bound)
        assert violation_rate <= beta * 1.5

    def test_gaussian_tail_bound_is_valid(self, rng):
        sigma, beta = 3.0, 0.05
        bound = gaussian_tail_bound(sigma, beta)
        samples = sample_gaussian(sigma, 20000, rng)
        violation_rate = np.mean(np.abs(samples) > bound)
        assert violation_rate <= beta * 1.5

    def test_laplace_sum_tail_bound_is_valid(self, rng):
        scale, count, beta = 1.5, 8, 0.05
        bound = laplace_sum_tail_bound(scale, count, beta)
        sums = sample_laplace(scale, (5000, count), rng).sum(axis=1)
        assert np.mean(np.abs(sums) > bound) <= beta * 1.5

    def test_gaussian_sum_std(self):
        assert gaussian_sum_std(2.0, 4) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            gaussian_sum_std(1.0, -1)


class TestLaplaceMechanism:
    def test_parameters_validated(self):
        with pytest.raises(PrivacyParameterError):
            LaplaceMechanism(0.0)
        with pytest.raises(PrivacyParameterError):
            LaplaceMechanism(1.0, delta=0.1)

    def test_scale_and_purity(self):
        mechanism = LaplaceMechanism(2.0)
        assert mechanism.is_pure
        assert mechanism.noise_scale(4.0, 0.0) == pytest.approx(2.0)

    def test_invalid_sensitivity(self):
        mechanism = LaplaceMechanism(1.0)
        with pytest.raises(SensitivityError):
            mechanism.noise_scale(0.0, 0.0)

    def test_randomize_shape_and_bias(self, rng):
        mechanism = LaplaceMechanism(1.0)
        values = np.array([10.0, 20.0, 30.0])
        noisy = mechanism.randomize(values, l1_sensitivity=1.0, rng=rng)
        assert noisy.shape == values.shape
        assert not np.array_equal(noisy, values)

    def test_sup_error_bound_holds_empirically(self, rng):
        mechanism = LaplaceMechanism(1.0)
        bound = mechanism.sup_error_bound(50, 0.1, l1_sensitivity=2.0)
        violations = 0
        trials = 200
        for _ in range(trials):
            noisy = mechanism.randomize(np.zeros(50), l1_sensitivity=2.0, rng=rng)
            if np.max(np.abs(noisy)) > bound:
                violations += 1
        assert violations / trials <= 0.2

    @given(st.floats(0.1, 10.0), st.floats(0.5, 100.0))
    @settings(max_examples=30)
    def test_scale_inversely_proportional_to_epsilon(self, epsilon, sensitivity):
        mechanism = LaplaceMechanism(epsilon)
        assert mechanism.noise_scale(sensitivity, 0.0) == pytest.approx(
            sensitivity / epsilon
        )


class TestGaussianMechanism:
    def test_parameters_validated(self):
        with pytest.raises(PrivacyParameterError):
            GaussianMechanism(1.0, delta=0.0)
        with pytest.raises(PrivacyParameterError):
            GaussianMechanism(0.0, delta=0.1)
        with pytest.raises(PrivacyParameterError):
            GaussianMechanism(1.0, delta=1.5)

    def test_sigma_formula(self):
        mechanism = GaussianMechanism(2.0, 1e-5)
        expected = math.sqrt(2 * math.log(1.25 / 1e-5)) * 3.0 / 2.0
        assert mechanism.noise_scale(0.0, 3.0) == pytest.approx(expected)
        assert not mechanism.is_pure

    def test_sup_error_bound_holds_empirically(self, rng):
        mechanism = GaussianMechanism(1.0, 1e-4)
        bound = mechanism.sup_error_bound(20, 0.1, l2_sensitivity=1.0)
        violations = 0
        trials = 200
        for _ in range(trials):
            noisy = mechanism.randomize(np.zeros(20), l2_sensitivity=1.0, rng=rng)
            if np.max(np.abs(noisy)) > bound:
                violations += 1
        assert violations / trials <= 0.2

    def test_smaller_delta_means_more_noise(self):
        tight = GaussianMechanism(1.0, 1e-8)
        loose = GaussianMechanism(1.0, 1e-2)
        assert tight.noise_scale(0.0, 1.0) > loose.noise_scale(0.0, 1.0)


class TestNoiselessMechanism:
    def test_no_noise_and_zero_bound(self, rng):
        mechanism = NoiselessMechanism()
        values = np.array([1.0, 2.0])
        assert np.array_equal(mechanism.randomize(values, rng=rng), values)
        assert mechanism.sup_error_bound(10, 0.01) == 0.0
        assert mechanism.epsilon == math.inf
