"""Tests for repro.dp.prefix_sums (the binary-tree mechanism)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.mechanisms import GaussianMechanism, LaplaceMechanism, NoiselessMechanism
from repro.dp.prefix_sums import PrefixSumMechanism, canonical_cover, dyadic_intervals
from repro.exceptions import SensitivityError


class TestDyadicDecomposition:
    def test_intervals_of_small_lengths(self):
        assert dyadic_intervals(0) == []
        assert dyadic_intervals(1) == [(0, 1)]
        assert set(dyadic_intervals(4)) == {
            (0, 1), (1, 2), (2, 3), (3, 4), (0, 2), (2, 4), (0, 4),
        }

    def test_number_of_levels(self):
        intervals = dyadic_intervals(8)
        widths = {hi - lo for lo, hi in intervals if hi - lo > 0}
        assert widths == {1, 2, 4, 8}

    @given(st.integers(1, 200))
    @settings(max_examples=60)
    def test_every_element_in_logarithmically_many_intervals(self, length):
        intervals = dyadic_intervals(length)
        levels = int(np.floor(np.log2(length))) + 1
        for position in range(length):
            containing = sum(1 for lo, hi in intervals if lo <= position < hi)
            assert containing <= levels

    @given(st.integers(0, 200), st.integers(1, 200))
    @settings(max_examples=80)
    def test_canonical_cover_is_exact_partition(self, prefix, total):
        prefix = min(prefix, total)
        cover = canonical_cover(prefix, total)
        covered = []
        for lo, hi in cover:
            covered.extend(range(lo, hi))
        assert covered == list(range(prefix))
        levels = int(np.floor(np.log2(total))) + 1
        assert len(cover) <= levels

    @given(st.integers(1, 200), st.integers(0, 200))
    @settings(max_examples=60)
    def test_canonical_cover_intervals_are_dyadic(self, total, prefix):
        prefix = min(prefix, total)
        intervals = set(dyadic_intervals(total))
        for interval in canonical_cover(prefix, total):
            assert interval in intervals

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            canonical_cover(5, 3)
        with pytest.raises(ValueError):
            dyadic_intervals(-1)


class TestPrefixSumMechanism:
    def test_validation(self):
        with pytest.raises(SensitivityError):
            PrefixSumMechanism(LaplaceMechanism(1.0), total_l1_sensitivity=0, max_length=4)
        with pytest.raises(ValueError):
            PrefixSumMechanism(LaplaceMechanism(1.0), total_l1_sensitivity=1, max_length=0)

    def test_noiseless_release_is_exact(self, rng):
        mechanism = PrefixSumMechanism(
            NoiselessMechanism(), total_l1_sensitivity=1.0, max_length=8
        )
        sequence = np.array([3.0, -1.0, 2.0, 0.0, 5.0])
        released = mechanism.release(sequence, rng)
        assert np.allclose(released.values, np.cumsum(sequence))
        assert released.prefix(0) == 0.0
        assert released.prefix(3) == pytest.approx(4.0)
        assert mechanism.sup_error_bound(3, 0.1) == 0.0

    def test_sequence_longer_than_max_length_rejected(self, rng):
        mechanism = PrefixSumMechanism(
            LaplaceMechanism(1.0), total_l1_sensitivity=1.0, max_length=2
        )
        with pytest.raises(ValueError):
            mechanism.release(np.arange(5, dtype=float), rng)

    def test_per_sequence_sensitivity_capped_by_total(self):
        mechanism = PrefixSumMechanism(
            LaplaceMechanism(1.0),
            total_l1_sensitivity=2.0,
            per_sequence_l1_sensitivity=10.0,
            max_length=4,
        )
        assert mechanism.per_sequence_l1_sensitivity == 2.0

    def test_laplace_release_error_within_bound(self, rng):
        mechanism = PrefixSumMechanism(
            LaplaceMechanism(2.0), total_l1_sensitivity=1.0, max_length=32
        )
        sequence = rng.integers(0, 4, size=32).astype(float)
        bound = mechanism.sup_error_bound(1, 0.05)
        failures = 0
        for _ in range(30):
            released = mechanism.release(sequence, rng)
            error = np.max(np.abs(released.values - np.cumsum(sequence)))
            if error > bound:
                failures += 1
        assert failures <= 4

    def test_gaussian_release_error_within_bound(self, rng):
        mechanism = PrefixSumMechanism(
            GaussianMechanism(1.0, 1e-5),
            total_l1_sensitivity=4.0,
            per_sequence_l1_sensitivity=1.0,
            max_length=16,
        )
        sequence = rng.integers(0, 3, size=16).astype(float)
        bound = mechanism.sup_error_bound(1, 0.05)
        failures = 0
        for _ in range(30):
            released = mechanism.release(sequence, rng)
            error = np.max(np.abs(released.values - np.cumsum(sequence)))
            if error > bound:
                failures += 1
        assert failures <= 4

    def test_gaussian_uses_hoelder_improvement(self):
        # With per-sequence sensitivity much smaller than the total, the
        # Gaussian noise scale should shrink accordingly (sqrt(L * Delta)).
        wide = PrefixSumMechanism(
            GaussianMechanism(1.0, 1e-5),
            total_l1_sensitivity=100.0,
            per_sequence_l1_sensitivity=100.0,
            max_length=8,
        )
        sharp = PrefixSumMechanism(
            GaussianMechanism(1.0, 1e-5),
            total_l1_sensitivity=100.0,
            per_sequence_l1_sensitivity=1.0,
            max_length=8,
        )
        assert sharp.partial_sum_noise_scale() < wide.partial_sum_noise_scale()
        assert sharp.partial_sum_noise_scale() == pytest.approx(
            wide.partial_sum_noise_scale() / 10.0
        )

    def test_release_many_returns_one_result_per_sequence(self, rng):
        mechanism = PrefixSumMechanism(
            NoiselessMechanism(), total_l1_sensitivity=1.0, max_length=4
        )
        results = mechanism.release_many([[1.0], [1.0, 2.0], []], rng)
        assert len(results) == 3
        assert len(results[2].values) == 0

    @given(st.lists(st.integers(-5, 5), min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_noiseless_prefixes_match_cumsum(self, values):
        rng = np.random.default_rng(0)
        mechanism = PrefixSumMechanism(
            NoiselessMechanism(), total_l1_sensitivity=1.0, max_length=len(values)
        )
        released = mechanism.release(np.array(values, dtype=float), rng)
        assert np.allclose(released.values, np.cumsum(values))
