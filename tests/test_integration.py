"""End-to-end integration tests across modules.

These tests exercise the full public API the way the examples do: generate a
workload, build private structures under both privacy flavours, query them,
mine them, serialize them, and check the accuracy contract end to end.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    ConstructionParams,
    ExactCountingOracle,
    PrivateCountingTrie,
    StringDatabase,
    build_private_counting_structure,
    build_qgram_structure,
    build_simple_trie_baseline,
    check_mining_guarantee,
    mine_frequent_substrings,
)
from repro.analysis.metrics import max_error_over_all_substrings
from repro.core.candidate_set import build_candidate_set
from repro.workloads import genome_with_motifs, transit_trajectories


@pytest.fixture(scope="module")
def genome_db() -> StringDatabase:
    return genome_with_motifs(
        120, 10, np.random.default_rng(0), motifs=("ACGT",), planting_probability=0.8
    )


class TestEndToEndPure:
    def test_full_pipeline_with_high_epsilon(self, genome_db):
        """With a generous budget the planted motif survives thresholding and
        is mined correctly; all guarantees hold."""
        params = ConstructionParams.pure(epsilon=60.0, beta=0.1)
        structure = build_private_counting_structure(
            genome_db, params, rng=np.random.default_rng(1)
        )
        # Stored counts respect the error bound.
        for pattern, noisy in structure.items():
            exact = genome_db.substring_count(pattern)
            assert abs(noisy - exact) <= structure.error_bound
        # Mining at the structure's own threshold satisfies Definition 2.
        result = mine_frequent_substrings(structure, structure.metadata.threshold)
        violations = check_mining_guarantee(result, genome_db)
        assert violations.ok
        # The heavily planted single letters are found.
        if result.patterns:
            assert any(len(pattern) >= 1 for pattern in result.pattern_set())

    def test_query_is_post_processing(self, genome_db):
        """Repeated queries and mining runs never change the structure."""
        params = ConstructionParams.pure(epsilon=10.0, beta=0.1)
        structure = build_private_counting_structure(
            genome_db, params, rng=np.random.default_rng(2)
        )
        first = [structure.query("ACGT") for _ in range(5)]
        assert len(set(first)) == 1
        before = dict(structure.items())
        structure.mine(0.0)
        structure.mine(1e9)
        assert dict(structure.items()) == before

    def test_serialization_roundtrip_preserves_queries(self, genome_db):
        params = ConstructionParams.pure(epsilon=30.0, beta=0.1)
        structure = build_private_counting_structure(
            genome_db, params, rng=np.random.default_rng(3)
        )
        restored = PrivateCountingTrie.from_json(structure.to_json())
        for pattern in ("A", "AC", "ACGT", "TTTT"):
            assert restored.query(pattern) == structure.query(pattern)


class TestEndToEndApproximate:
    def test_document_count_structure(self, genome_db):
        params = ConstructionParams.approximate(
            epsilon=10.0, delta=1e-6, beta=0.1, delta_cap=1
        )
        structure = build_private_counting_structure(
            genome_db, params, rng=np.random.default_rng(4)
        )
        for pattern, noisy in structure.items():
            exact = genome_db.document_count(pattern)
            assert abs(noisy - exact) <= structure.error_bound

    def test_qgram_structure_end_to_end(self, genome_db):
        params = ConstructionParams.approximate(epsilon=20.0, delta=1e-6, beta=0.1)
        structure = build_qgram_structure(
            genome_db, 2, params, rng=np.random.default_rng(5)
        )
        assert structure.metadata.qgram_length == 2
        for pattern, noisy in structure.items():
            assert len(pattern) == 2
            exact = genome_db.substring_count(pattern)
            assert abs(noisy - exact) <= structure.error_bound


class TestAccuracyContract:
    def test_overall_error_bounded_by_absent_pattern_bound(self):
        """The maximum error over every substring of the database (stored or
        not) is bounded by the structure's absent-pattern bound + stored
        bound."""
        database = transit_trajectories(60, 8, np.random.default_rng(6))
        params = ConstructionParams.pure(epsilon=5.0, beta=0.05)
        structure = build_private_counting_structure(
            database, params, rng=np.random.default_rng(7)
        )
        summary = max_error_over_all_substrings(
            structure, database, max_pattern_length=4
        )
        ceiling = max(
            structure.error_bound, structure.report["absent_pattern_bound"]
        )
        assert summary.max_error <= ceiling

    def test_exact_candidates_noisy_counts_contract(self, small_db):
        """With exact candidates and no pruning, the theorem-1 contract on
        stored counts holds for every node of the candidate trie."""
        noiseless = ConstructionParams.pure(1.0, beta=0.1, noiseless=True, threshold=1.0)
        candidates = build_candidate_set(small_db, noiseless)
        params = ConstructionParams.pure(epsilon=2.0, beta=0.02, threshold=-math.inf)
        structure = build_private_counting_structure(
            small_db,
            params,
            rng=np.random.default_rng(8),
            candidate_set=candidates,
        )
        oracle = ExactCountingOracle(small_db)
        for pattern, noisy in structure.items():
            assert abs(noisy - oracle.query(pattern)) <= structure.error_bound


class TestBaselineComparison:
    def test_baseline_and_structure_agree_noiselessly(self, genome_db):
        noiseless = ConstructionParams.pure(
            1.0, beta=0.1, noiseless=True, threshold=1.0
        )
        ours = build_private_counting_structure(
            genome_db, noiseless, rng=np.random.default_rng(9)
        )
        baseline = build_simple_trie_baseline(
            genome_db, noiseless, rng=np.random.default_rng(9), max_depth=2
        )
        for pattern in ("A", "C", "G", "T", "AC", "GT"):
            assert ours.query(pattern) == pytest.approx(baseline.query(pattern))

    def test_baseline_noise_scale_is_larger(self, genome_db):
        params = ConstructionParams.pure(epsilon=1.0, beta=0.1)
        baseline = build_simple_trie_baseline(
            genome_db, params, rng=np.random.default_rng(10), max_depth=1
        )
        ell = genome_db.max_length
        # The baseline's per-count noise is calibrated to ell^2-ish
        # sensitivity, which exceeds the paper's ell-based root sensitivity.
        assert baseline.report["l1_sensitivity"] >= ell * ell
