"""Tests for the deterministic failpoint framework (:mod:`repro.faults`).

The framework's contract: sites are registered idempotently and cost a
single flag check when nothing is armed; armed decisions are pure
functions of ``(seed, scope, site, hit index)`` — so the same seed replays
the identical injection schedule, :func:`replay_decisions` recomputes it
without running anything, and :func:`verify_log` proves an observed log
matches it exactly; arming travels losslessly through the environment
(spawned workers); and injected failures land *before* side effects — an
injected ``fsio.write`` error never leaves a damaged file, an injected
``binfmt.read`` corruption is caught by the format's own digest check.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults


@pytest.fixture(autouse=True)
def _disarm():
    faults.disarm_all()
    faults.clear_log()
    yield
    faults.disarm_all()
    faults.clear_log()


class TestRegistration:
    def test_failpoint_is_idempotent_get_or_create(self):
        first = faults.failpoint("test.site-a", "first description")
        again = faults.failpoint("test.site-a")
        assert first is again
        assert again.description == "first description"

    def test_serving_sites_register_on_import(self):
        import repro.serving  # noqa: F401
        import repro.serving.cluster  # noqa: F401
        import repro.serving.schedule  # noqa: F401

        names = {point.name for point in faults.list_failpoints()}
        assert {
            "fsio.write",
            "fsio.append",
            "binfmt.read",
            "worker.handle",
            "router.relay",
            "schedule.epoch_build",
        } <= names

    def test_disarmed_hit_is_a_no_op(self):
        point = faults.failpoint("test.noop")
        assert not faults.active()
        point.hit()  # must not raise
        assert point.corrupt(b"abc") == b"abc"
        assert point.armed_spec is None


class TestDeterminism:
    def test_every_n_schedule_fires_on_the_grid(self):
        point = faults.failpoint("test.every")
        faults.arm(
            [{"site": "test.every", "action": "raise", "every": 3}], seed=5
        )
        outcomes = []
        for _ in range(9):
            try:
                point.hit()
                outcomes.append(False)
            except faults.FaultInjected:
                outcomes.append(True)
        assert outcomes == [True, False, False] * 3
        assert point.stats()["fires"] == 3

    def test_probability_schedule_replays_from_the_seed(self):
        spec = faults.FaultSpec(
            site="test.prob", action="raise", probability=0.4
        )
        first = faults.replay_decisions(spec, seed=11, scope="s", count=200)
        again = faults.replay_decisions(spec, seed=11, scope="s", count=200)
        other = faults.replay_decisions(spec, seed=12, scope="s", count=200)
        assert first == again
        assert first != other
        assert 0 < len(first) < 200

        point = faults.failpoint("test.prob")
        faults.arm([spec], seed=11, scope="s")
        observed = []
        for index in range(200):
            try:
                point.hit()
            except faults.FaultInjected:
                observed.append(index)
        assert observed == first

    def test_times_caps_total_fires(self):
        spec = faults.FaultSpec(
            site="test.times", action="raise", every=2, times=2
        )
        assert faults.replay_decisions(spec, seed=0, scope="main", count=50) == [0, 2]
        point = faults.failpoint("test.times")
        faults.arm([spec], seed=0)
        fired = 0
        for _ in range(50):
            try:
                point.hit()
            except faults.FaultInjected:
                fired += 1
        assert fired == 2

    def test_after_delays_the_first_fire(self):
        spec = faults.FaultSpec(
            site="test.after", action="raise", every=4, after=3
        )
        assert faults.replay_decisions(spec, seed=0, scope="main", count=12) == [3, 7, 11]

    def test_corrupt_flips_exactly_one_deterministic_byte(self):
        point = faults.failpoint("test.corrupt")
        payload = bytes(range(64))
        faults.arm(
            [{"site": "test.corrupt", "action": "corrupt", "times": 1}], seed=3
        )
        mutated = point.corrupt(payload)
        untouched = point.corrupt(payload)  # times=1: second call is clean
        assert untouched == payload
        diffs = [i for i, (a, b) in enumerate(zip(payload, mutated)) if a != b]
        assert len(diffs) == 1
        assert mutated[diffs[0]] == payload[diffs[0]] ^ 0xFF
        # re-arming with the same seed flips the same byte
        faults.disarm_all()
        faults.arm(
            [{"site": "test.corrupt", "action": "corrupt", "times": 1}], seed=3
        )
        assert point.corrupt(payload) == mutated

    def test_delay_action_sleeps_without_raising(self):
        point = faults.failpoint("test.delay")
        faults.arm(
            [
                {
                    "site": "test.delay",
                    "action": "delay",
                    "delay_ms": 1.0,
                    "times": 1,
                }
            ]
        )
        point.hit()  # sleeps ~1ms, must not raise
        assert point.stats()["fires"] == 1


class TestInjectionLog:
    def test_log_verifies_against_the_armed_specs(self):
        spec = faults.FaultSpec(site="test.log", action="raise", every=2)
        point = faults.failpoint("test.log")
        faults.arm([spec], seed=9, scope="unit")
        for _ in range(10):
            try:
                point.hit()
            except faults.FaultInjected:
                pass
        entries = faults.injection_log()
        assert [entry["index"] for entry in entries] == [0, 2, 4, 6, 8]
        assert all(entry["scope"] == "unit" for entry in entries)
        assert faults.verify_log(entries, [spec], seed=9) == []

    def test_log_verification_catches_a_wrong_seed_and_a_forged_entry(self):
        spec = faults.FaultSpec(
            site="test.log2", action="raise", probability=0.5
        )
        point = faults.failpoint("test.log2")
        faults.arm([spec], seed=1, scope="unit")
        for _ in range(40):
            try:
                point.hit()
            except faults.FaultInjected:
                pass
        entries = faults.injection_log()
        assert faults.verify_log(entries, [spec], seed=1) == []
        assert faults.verify_log(entries, [spec], seed=2) != []
        forged = entries + [
            {
                "scope": "unit",
                "pid": entries[0]["pid"],
                "site": "test.log2",
                "index": 9999,
                "action": "raise",
            }
        ]
        assert faults.verify_log(forged, [spec], seed=1) != []

    def test_file_sink_round_trips(self, tmp_path):
        sink = tmp_path / "faults.jsonl"
        spec = faults.FaultSpec(site="test.sink", action="raise", every=3)
        point = faults.failpoint("test.sink")
        faults.arm([spec], seed=4, scope="sinks", log_path=sink)
        for _ in range(9):
            try:
                point.hit()
            except faults.FaultInjected:
                pass
        from_file = faults.read_log(sink)
        assert from_file == faults.injection_log()
        assert faults.verify_log(from_file, [spec], seed=4) == []


class TestEnvArming:
    def test_env_round_trip_arms_the_same_schedule(self, tmp_path):
        spec = faults.FaultSpec(
            site="test.env", action="raise", exc="os", every=2, times=3
        )
        env = faults.env_for(
            [spec], seed=7, scope="worker", log_path=tmp_path / "log.jsonl"
        )
        assert json.loads(env[faults.ENV_SPECS]) == [spec.to_dict()]
        assert faults.arm_from_env(env) is True
        point = faults.failpoint("test.env")
        assert point.armed_spec == spec
        with pytest.raises(OSError):
            point.hit()

    def test_empty_env_arms_nothing(self):
        assert faults.arm_from_env({}) is False
        assert not faults.active()

    def test_unknown_spec_fields_are_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-spec field"):
            faults.FaultSpec.from_dict({"site": "x", "action": "raise", "nope": 1})
        with pytest.raises(ValueError, match="unknown action"):
            faults.FaultSpec(site="x", action="explode")


class TestServingSites:
    def test_injected_write_failure_leaves_the_file_intact(self, tmp_path):
        from repro.serving import _fsio

        target = tmp_path / "state.json"
        _fsio.atomic_write_json(target, {"version": 1})
        faults.arm(
            [{"site": "fsio.write", "action": "raise", "exc": "os", "times": 1}]
        )
        with pytest.raises(OSError):
            _fsio.atomic_write_json(target, {"version": 2})
        # the fault fired before any byte moved: old contents fully intact
        assert json.loads(target.read_text()) == {"version": 1}
        _fsio.atomic_write_json(target, {"version": 2})  # times exhausted
        assert json.loads(target.read_text()) == {"version": 2}

    def test_injected_read_corruption_is_caught_by_the_digest_check(self, tmp_path):
        from repro.exceptions import ReleaseFormatError
        from repro.serving import binfmt
        from tests.serving.test_release_format import make_structure

        structure = make_structure({"ab": 5.0, "ba": 3.0})
        path = tmp_path / "v0001.dpsb"
        binfmt.write_binary(path, structure.compiled(cache_size=0))
        faults.arm([{"site": "binfmt.read", "action": "corrupt", "times": 1}])
        with pytest.raises(ReleaseFormatError):
            binfmt.read_binary(path, mmap=False)
        # schedule exhausted: the very same blob loads cleanly again
        binfmt.read_binary(path, mmap=False)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    every=st.integers(1, 7),
    after=st.integers(0, 5),
    count=st.integers(1, 60),
)
def test_replay_decisions_match_the_eligibility_rule(seed, every, after, count):
    spec = faults.FaultSpec(
        site="prop.site", action="raise", every=every, after=after
    )
    fired = faults.replay_decisions(spec, seed=seed, scope="p", count=count)
    assert fired == [
        index
        for index in range(count)
        if index >= after and (index - after) % every == 0
    ]
