"""The public API surface: everything advertised in ``__all__`` must exist,
be importable from the package root or its subpackage, and carry a docstring."""

from __future__ import annotations

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.api",
    "repro.core",
    "repro.strings",
    "repro.dp",
    "repro.trees",
    "repro.workloads",
    "repro.analysis",
]


class TestRootPackage:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_quickstart_snippet_from_docstring_works(self):
        """The module docstring's quickstart must keep working verbatim."""
        import numpy as np

        from repro import Dataset

        counter = (
            Dataset.from_documents(["aaaa", "abe", "absab", "babe", "bee", "bees"])
            .with_budget(epsilon=2.0)
            .with_beta(0.1)
            .build("heavy-path")
        )
        assert isinstance(counter.query("ab"), float)
        assert isinstance(counter.query_many(["ab", "be"]), np.ndarray)
        assert isinstance(counter.mine(threshold=3.0), list)


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} is missing a package docstring"
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists {name!r}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_callables_have_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if callable(obj):
                assert obj.__doc__, f"{module_name}.{name} is missing a docstring"

    def test_core_exports_every_theorem_builder(self):
        from repro import core

        for builder in (
            "build_theorem1_structure",
            "build_theorem2_structure",
            "build_theorem3_qgram_structure",
            "build_theorem4_qgram_structure",
        ):
            assert builder in core.__all__

    def test_trees_exports_both_counting_strategies(self):
        from repro import trees

        assert "private_tree_counts" in trees.__all__
        assert "range_counting_tree_counts" in trees.__all__
        assert "leaf_sum_tree_counts" in trees.__all__

    def test_cli_registry_covers_design_index(self):
        from repro.cli import EXPERIMENT_REGISTRY

        # E1-E24 plus E26 (release formats), E27 (serving scale), E28
        # (continual release) and E29 (chaos drill); E25 is intentionally
        # unassigned.
        expected = {f"E{i}" for i in range(1, 25)} | {"E26", "E27", "E28", "E29"}
        assert set(EXPERIMENT_REGISTRY) == expected
