"""Tests for repro.workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    DNA_SYMBOLS,
    TransitNetwork,
    genome_reads,
    genome_with_motifs,
    markov_documents,
    periodic_documents,
    planted_motif_documents,
    random_marginals_instance,
    text_messages,
    transit_trajectories,
    uniform_documents,
    worst_case_packing,
    worst_case_substring_pair,
    zipfian_documents,
)


class TestSyntheticGenerators:
    def test_uniform_documents_shapes(self, rng):
        database = uniform_documents(7, 5, ("a", "b"), rng)
        assert database.num_documents == 7
        assert all(len(doc) == 5 for doc in database)
        assert database.max_length == 5

    def test_uniform_variable_lengths(self, rng):
        database = uniform_documents(20, 6, ("a", "b"), rng, variable_length=True)
        assert all(1 <= len(doc) <= 6 for doc in database)

    def test_zipfian_skews_character_frequencies(self, rng):
        database = zipfian_documents(30, 20, ("a", "b", "c", "d"), rng, exponent=2.0)
        text = "".join(database)
        assert text.count("a") > text.count("d")

    def test_markov_produces_runs(self, rng):
        database = markov_documents(10, 30, ("a", "b"), rng, self_transition=0.9)
        runs = sum(doc.count("aa") + doc.count("bb") for doc in database)
        assert runs > 0

    def test_markov_invalid_self_transition(self, rng):
        with pytest.raises(ValueError):
            markov_documents(1, 5, ("a",), rng, self_transition=1.5)

    def test_periodic_documents_have_few_distinct_substrings(self, rng):
        database = periodic_documents(6, 50, rng)
        distinct = {
            doc[i : i + 5] for doc in database for i in range(len(doc) - 4)
        }
        assert len(distinct) <= 10

    def test_planted_motif_is_frequent(self, rng):
        database = planted_motif_documents(
            50, 12, ("a", "b"), rng, motif="abba", planting_probability=1.0
        )
        assert database.document_count("abba") == 50

    def test_planted_motif_validation(self, rng):
        with pytest.raises(ValueError):
            planted_motif_documents(5, 3, ("a",), rng, motif="abcd")
        with pytest.raises(ValueError):
            planted_motif_documents(5, 3, ("a",), rng, motif="")


class TestDomainWorkloads:
    def test_genome_reads_alphabet(self, rng):
        database = genome_reads(10, 20, rng)
        assert set("".join(database)) <= set(DNA_SYMBOLS)
        assert database.alphabet_size == 4

    def test_genome_gc_content_validation(self, rng):
        with pytest.raises(ValueError):
            genome_reads(5, 10, rng, gc_content=1.2)

    def test_genome_motifs_planted(self, rng):
        database = genome_with_motifs(
            40, 20, rng, motifs=("ACGT",), planting_probability=1.0
        )
        assert database.document_count("ACGT") >= 35  # a few may be overwritten

    def test_transit_network_validation(self):
        with pytest.raises(ValueError):
            TransitNetwork(num_lines=0)
        with pytest.raises(ValueError):
            TransitNetwork(num_lines=20, stations_per_line=10)

    def test_transit_trajectories_are_valid_documents(self, rng):
        network = TransitNetwork(num_lines=2, stations_per_line=5)
        database = transit_trajectories(25, 8, rng, network=network)
        stations = set(network.stations)
        assert all(set(doc) <= stations for doc in database)
        assert all(2 <= len(doc) <= 8 for doc in database)

    def test_transit_consecutive_stops_are_adjacent_or_transfers(self, rng):
        network = TransitNetwork(num_lines=2, stations_per_line=4)
        database = transit_trajectories(10, 10, rng, network=network, transfer_probability=0.0)
        positions = {station: (line, i) for line, stations in enumerate(network.lines) for i, station in enumerate(stations)}
        for doc in database:
            for a, b in zip(doc, doc[1:]):
                line_a, pos_a = positions[a]
                line_b, pos_b = positions[b]
                assert line_a == line_b and abs(pos_a - pos_b) == 1

    def test_text_messages_respect_max_length(self, rng):
        database = text_messages(15, 25, rng)
        assert all(1 <= len(doc) <= 25 for doc in database)

    def test_text_messages_validation(self, rng):
        with pytest.raises(ValueError):
            text_messages(3, 0, rng)


class TestAdversarialWorkloads:
    def test_worst_case_substring_pair(self):
        database, neighbor, pattern = worst_case_substring_pair(5, 3)
        assert database.substring_count(pattern) == 5
        assert neighbor.substring_count(pattern) == 0

    def test_worst_case_packing(self, rng):
        instance = worst_case_packing(20, 10, 5, rng, num_patterns=2, pattern_length=4)
        assert instance.database.num_documents == 10
        assert instance.database.alphabet_size >= 4
        for planted in instance.planted_patterns:
            assert instance.database.document_count(planted) == 5

    def test_random_marginals_instance(self, rng):
        matrix, reduction = random_marginals_instance(6, 4, rng)
        assert matrix.shape == (6, 4)
        assert len(reduction.column_patterns) == 4
        assert reduction.database.num_documents == 6


class TestDeterminism:
    def test_same_seed_same_workload(self):
        first = uniform_documents(5, 6, ("a", "b"), np.random.default_rng(9))
        second = uniform_documents(5, 6, ("a", "b"), np.random.default_rng(9))
        assert list(first) == list(second)

    def test_different_seeds_differ(self):
        first = uniform_documents(5, 10, ("a", "b"), np.random.default_rng(1))
        second = uniform_documents(5, 10, ("a", "b"), np.random.default_rng(2))
        assert list(first) != list(second)
