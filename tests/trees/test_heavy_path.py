"""Tests for repro.trees.heavy_path."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings.trie import Trie
from repro.trees.heavy_path import HeavyPathDecomposition


def adjacency_children(adjacency):
    return lambda node: adjacency.get(node, [])


def random_tree(num_nodes: int, seed: int) -> dict[int, list[int]]:
    """A random tree on nodes 0..num_nodes-1 with 0 as the root."""
    rng = np.random.default_rng(seed)
    adjacency: dict[int, list[int]] = {i: [] for i in range(num_nodes)}
    for node in range(1, num_nodes):
        parent = int(rng.integers(0, node))
        adjacency[parent].append(node)
    return adjacency


class TestSmallTrees:
    def test_single_node(self):
        decomposition = HeavyPathDecomposition(0, adjacency_children({0: []}))
        assert decomposition.num_paths == 1
        assert decomposition.paths[0].nodes == [0]
        assert decomposition.light_edges_to(0) == 0

    def test_path_graph_is_one_heavy_path(self):
        adjacency = {0: [1], 1: [2], 2: [3], 3: []}
        decomposition = HeavyPathDecomposition(0, adjacency_children(adjacency))
        assert decomposition.num_paths == 1
        assert decomposition.paths[0].nodes == [0, 1, 2, 3]

    def test_star_graph(self):
        adjacency = {0: [1, 2, 3], 1: [], 2: [], 3: []}
        decomposition = HeavyPathDecomposition(0, adjacency_children(adjacency))
        # One path containing the root and one child; the other children are
        # singleton paths.
        assert decomposition.num_paths == 3
        assert decomposition.num_nodes == 4

    def test_heavy_child_has_largest_subtree(self):
        #        0
        #      /   \
        #     1     2
        #    / \
        #   3   4
        adjacency = {0: [1, 2], 1: [3, 4], 2: [], 3: [], 4: []}
        decomposition = HeavyPathDecomposition(0, adjacency_children(adjacency))
        top_path = decomposition.path_of(0)
        assert top_path.nodes[1] == 1  # node 1 has the bigger subtree
        assert decomposition.is_path_root(2)
        assert decomposition.offset_on_path(1) == 1


class TestLemma9:
    """Any root-to-node path crosses at most floor(log2 N) light edges."""

    @given(st.integers(2, 200), st.integers(0, 1000))
    @settings(max_examples=60)
    def test_light_edge_bound_on_random_trees(self, num_nodes, seed):
        adjacency = random_tree(num_nodes, seed)
        decomposition = HeavyPathDecomposition(0, adjacency_children(adjacency))
        bound = math.floor(math.log2(num_nodes))
        for node in range(num_nodes):
            assert decomposition.light_edges_to(node) <= bound
            assert len(decomposition.heavy_paths_crossed_by(node)) <= bound + 1

    @given(st.integers(2, 200), st.integers(0, 1000))
    @settings(max_examples=40)
    def test_paths_partition_the_nodes(self, num_nodes, seed):
        adjacency = random_tree(num_nodes, seed)
        decomposition = HeavyPathDecomposition(0, adjacency_children(adjacency))
        seen = [node for path in decomposition.paths for node in path.nodes]
        assert sorted(seen) == list(range(num_nodes))

    @given(st.integers(2, 100), st.integers(0, 1000))
    @settings(max_examples=40)
    def test_path_nodes_are_consecutive_heavy_children(self, num_nodes, seed):
        adjacency = random_tree(num_nodes, seed)
        decomposition = HeavyPathDecomposition(0, adjacency_children(adjacency))
        for path in decomposition.paths:
            for previous, current in zip(path.nodes, path.nodes[1:]):
                assert decomposition.parent[current] == previous
                siblings = adjacency[previous]
                assert all(
                    decomposition.subtree_size[current]
                    >= decomposition.subtree_size[sibling]
                    for sibling in siblings
                )


class TestOnTries:
    def test_decomposition_of_a_trie(self):
        trie = Trie(["aaaa", "aab", "ab", "b"])
        decomposition = HeavyPathDecomposition(
            trie.root, lambda node: list(node.children.values())
        )
        assert decomposition.num_nodes == trie.num_nodes
        roots = decomposition.path_roots()
        assert trie.root in roots

    def test_difference_sequences_shapes(self):
        trie = Trie(["aaa", "ab"])
        for node in trie.iter_nodes():
            node.count = float(node.depth)
        decomposition = HeavyPathDecomposition(
            trie.root, lambda node: list(node.children.values())
        )
        sequences = decomposition.difference_sequences(lambda node: node.count)
        assert len(sequences) == decomposition.num_paths
        for path, sequence in zip(decomposition.paths, sequences):
            assert len(sequence) == len(path) - 1
            # counts increase by one per level in this synthetic setup.
            assert all(value == 1.0 for value in sequence)

    def test_max_path_length(self):
        trie = Trie(["abcde"])
        decomposition = HeavyPathDecomposition(
            trie.root, lambda node: list(node.children.values())
        )
        assert decomposition.max_path_length() == 6
