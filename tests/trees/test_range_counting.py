"""Tests for repro.trees.range_counting (range-counting reduction and the
leaf-sum baseline for hierarchical histograms)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.composition import PrivacyBudget
from repro.exceptions import SensitivityError
from repro.trees.colored import exact_hierarchical_counts
from repro.trees.hierarchy import build_balanced_hierarchy, build_hierarchy_from_paths
from repro.trees.range_counting import (
    leaf_sum_error_bound,
    leaf_sum_tree_counts,
    private_range_counts,
    range_counting_error_bound,
    range_counting_tree_counts,
)

BUDGET = PrivacyBudget(1.0)
APPROX_BUDGET = PrivacyBudget(1.0, 1e-6)


def _leaf_counts(tree, elements):
    exact = exact_hierarchical_counts(tree, elements)
    return exact, {leaf: float(exact[leaf]) for leaf in tree.leaves()}


class TestPrivateRangeCounts:
    def test_noiseless_prefixes_match_cumsum(self):
        values = [3.0, 0.0, 5.0, 1.0, 2.0]
        result = private_range_counts(
            values, leaf_sensitivity=1.0, budget=BUDGET, beta=0.1, noiseless=True
        )
        for m in range(len(values) + 1):
            assert result.prefix(m) == pytest.approx(sum(values[:m]))

    def test_noiseless_range_sums_match_slices(self):
        values = [1.0, 4.0, 2.0, 2.0, 0.0, 7.0]
        result = private_range_counts(
            values, leaf_sensitivity=1.0, budget=BUDGET, beta=0.1, noiseless=True
        )
        for lo in range(len(values) + 1):
            for hi in range(lo, len(values) + 1):
                assert result.range_sum(lo, hi) == pytest.approx(sum(values[lo:hi]))

    def test_empty_range_is_zero_even_with_noise(self, rng):
        result = private_range_counts(
            [5.0, 5.0, 5.0], leaf_sensitivity=1.0, budget=BUDGET, beta=0.1, rng=rng
        )
        assert result.range_sum(2, 2) == 0.0

    def test_noise_error_within_bound(self, rng):
        values = np.arange(64, dtype=np.float64)
        result = private_range_counts(
            values, leaf_sensitivity=1.0, budget=BUDGET, beta=0.01, rng=rng
        )
        exact_prefixes = np.concatenate(([0.0], np.cumsum(values)))
        errors = [
            abs(result.prefix(m) - exact_prefixes[m]) for m in range(len(values) + 1)
        ]
        assert max(errors) <= result.error_bound

    def test_gaussian_variant_also_within_bound(self, rng):
        values = np.ones(32)
        result = private_range_counts(
            values, leaf_sensitivity=2.0, budget=APPROX_BUDGET, beta=0.01, rng=rng
        )
        exact_prefixes = np.concatenate(([0.0], np.cumsum(values)))
        errors = [
            abs(result.prefix(m) - exact_prefixes[m]) for m in range(len(values) + 1)
        ]
        assert max(errors) <= result.error_bound

    def test_range_error_bound_is_twice_prefix_bound(self, rng):
        result = private_range_counts(
            [1.0, 2.0, 3.0], leaf_sensitivity=1.0, budget=BUDGET, beta=0.1, rng=rng
        )
        assert result.range_error_bound == pytest.approx(2.0 * result.error_bound)

    def test_accountant_records_budget(self, rng):
        result = private_range_counts(
            [1.0, 2.0], leaf_sensitivity=1.0, budget=BUDGET, beta=0.1, rng=rng
        )
        assert result.accountant.total_epsilon == pytest.approx(BUDGET.epsilon)

    def test_validation(self, rng):
        with pytest.raises(SensitivityError):
            private_range_counts([1.0], leaf_sensitivity=0.0, budget=BUDGET, beta=0.1)
        with pytest.raises(ValueError):
            private_range_counts([1.0], leaf_sensitivity=1.0, budget=BUDGET, beta=1.5)
        with pytest.raises(ValueError):
            private_range_counts([], leaf_sensitivity=1.0, budget=BUDGET, beta=0.1)
        result = private_range_counts(
            [1.0, 2.0], leaf_sensitivity=1.0, budget=BUDGET, beta=0.1, rng=rng
        )
        with pytest.raises(ValueError):
            result.range_sum(0, 3)
        with pytest.raises(ValueError):
            result.prefix(-1)

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_noiseless_release_is_exact_on_random_inputs(self, values):
        result = private_range_counts(
            [float(v) for v in values],
            leaf_sensitivity=1.0,
            budget=BUDGET,
            beta=0.1,
            noiseless=True,
        )
        for m in range(len(values) + 1):
            assert result.prefix(m) == pytest.approx(float(sum(values[:m])))


class TestRangeCountingTreeCounts:
    def test_noiseless_matches_exact_hierarchical_counts(self):
        tree = build_balanced_hierarchy(list(range(16)), branching=2)
        elements = [0, 0, 3, 7, 7, 7, 12, 15]
        exact, leaf_counts = _leaf_counts(tree, elements)
        estimates, released = range_counting_tree_counts(
            tree.root,
            tree.children,
            leaf_counts,
            leaf_sensitivity=2.0,
            budget=BUDGET,
            beta=0.1,
            noiseless=True,
        )
        assert released.error_bound == 0.0
        for node in tree.nodes():
            assert estimates[node] == pytest.approx(exact[node])

    def test_noiseless_matches_exact_on_unbalanced_tree(self):
        paths = [("a", "x"), ("a", "y", "deep"), ("b",), ("c", "z", "w", "q")]
        tree = build_hierarchy_from_paths(paths)
        elements = [tuple(p) for p in paths for _ in range(3)]
        exact, leaf_counts = _leaf_counts(tree, elements)
        estimates, _ = range_counting_tree_counts(
            tree.root,
            tree.children,
            leaf_counts,
            leaf_sensitivity=2.0,
            budget=BUDGET,
            beta=0.1,
            noiseless=True,
        )
        for node in tree.nodes():
            assert estimates[node] == pytest.approx(exact[node])

    def test_single_leaf_tree(self):
        tree = build_balanced_hierarchy([42], branching=2)
        exact, leaf_counts = _leaf_counts(tree, [42, 42])
        estimates, _ = range_counting_tree_counts(
            tree.root,
            tree.children,
            leaf_counts,
            leaf_sensitivity=2.0,
            budget=BUDGET,
            beta=0.1,
            noiseless=True,
        )
        for node in tree.nodes():
            assert estimates[node] == pytest.approx(exact[node])

    def test_noisy_errors_within_range_bound(self, rng):
        tree = build_balanced_hierarchy(list(range(32)), branching=2)
        elements = list(range(32)) * 3
        exact, leaf_counts = _leaf_counts(tree, elements)
        estimates, released = range_counting_tree_counts(
            tree.root,
            tree.children,
            leaf_counts,
            leaf_sensitivity=2.0,
            budget=BUDGET,
            beta=0.01,
            rng=rng,
        )
        worst = max(abs(estimates[node] - exact[node]) for node in tree.nodes())
        assert worst <= released.range_error_bound

    def test_counts_accept_callable(self):
        tree = build_balanced_hierarchy(list(range(8)), branching=2)
        exact, leaf_counts = _leaf_counts(tree, [0, 1, 2, 3])
        estimates, _ = range_counting_tree_counts(
            tree.root,
            tree.children,
            lambda leaf: leaf_counts[leaf],
            leaf_sensitivity=2.0,
            budget=BUDGET,
            beta=0.1,
            noiseless=True,
        )
        assert estimates[tree.root] == pytest.approx(exact[tree.root])

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_reduction_exact_on_random_hierarchies(self, raw_paths):
        paths = sorted(set(raw_paths))
        tree = build_hierarchy_from_paths(paths)
        elements = [tuple(p) for p in raw_paths]
        exact, leaf_counts = _leaf_counts(tree, elements)
        estimates, _ = range_counting_tree_counts(
            tree.root,
            tree.children,
            leaf_counts,
            leaf_sensitivity=2.0,
            budget=BUDGET,
            beta=0.1,
            noiseless=True,
        )
        for node in tree.nodes():
            assert estimates[node] == pytest.approx(exact[node])


class TestLeafSumTreeCounts:
    def test_noiseless_matches_exact(self):
        tree = build_balanced_hierarchy(list(range(16)), branching=4)
        elements = [1, 1, 1, 5, 9, 13]
        exact, leaf_counts = _leaf_counts(tree, elements)
        estimates, bound = leaf_sum_tree_counts(
            tree.root,
            tree.children,
            leaf_counts,
            leaf_sensitivity=2.0,
            budget=BUDGET,
            beta=0.1,
            noiseless=True,
        )
        assert bound == 0.0
        for node in tree.nodes():
            assert estimates[node] == pytest.approx(exact[node])

    def test_root_error_within_bound(self, rng):
        tree = build_balanced_hierarchy(list(range(64)), branching=2)
        elements = list(range(64))
        exact, leaf_counts = _leaf_counts(tree, elements)
        estimates, bound = leaf_sum_tree_counts(
            tree.root,
            tree.children,
            leaf_counts,
            leaf_sensitivity=2.0,
            budget=BUDGET,
            beta=0.01,
            rng=rng,
        )
        assert abs(estimates[tree.root] - exact[tree.root]) <= bound

    def test_estimates_are_consistent_sums(self, rng):
        """Internal-node estimates must equal the sum of their children's
        estimates (the defining property of the leaf-sum strategy)."""
        tree = build_balanced_hierarchy(list(range(16)), branching=2)
        _, leaf_counts = _leaf_counts(tree, [0, 5, 5, 10])
        estimates, _ = leaf_sum_tree_counts(
            tree.root,
            tree.children,
            leaf_counts,
            leaf_sensitivity=2.0,
            budget=BUDGET,
            beta=0.1,
            rng=rng,
        )
        for node in tree.nodes():
            children = tree.children(node)
            if children:
                assert estimates[node] == pytest.approx(
                    sum(estimates[child] for child in children)
                )

    def test_validation(self):
        tree = build_balanced_hierarchy([0, 1], branching=2)
        _, leaf_counts = _leaf_counts(tree, [0])
        with pytest.raises(SensitivityError):
            leaf_sum_tree_counts(
                tree.root,
                tree.children,
                leaf_counts,
                leaf_sensitivity=-1.0,
                budget=BUDGET,
                beta=0.1,
            )
        with pytest.raises(ValueError):
            leaf_sum_tree_counts(
                tree.root,
                tree.children,
                leaf_counts,
                leaf_sensitivity=1.0,
                budget=BUDGET,
                beta=0.0,
            )


class TestAnalyticBounds:
    def test_leaf_sum_bound_grows_polynomially(self):
        small = leaf_sum_error_bound(16, leaf_sensitivity=2.0, budget=BUDGET, beta=0.1)
        large = leaf_sum_error_bound(
            16 * 64, leaf_sensitivity=2.0, budget=BUDGET, beta=0.1
        )
        assert large >= small * 6  # ~sqrt(64) = 8 up to the max() in Lemma 12

    def test_range_counting_bound_grows_polylogarithmically(self):
        small = range_counting_error_bound(
            16, leaf_sensitivity=2.0, budget=BUDGET, beta=0.1
        )
        large = range_counting_error_bound(
            16 * 64, leaf_sensitivity=2.0, budget=BUDGET, beta=0.1
        )
        assert large <= small * 6

    def test_bounds_shrink_with_epsilon(self):
        loose = range_counting_error_bound(
            64, leaf_sensitivity=2.0, budget=PrivacyBudget(0.5), beta=0.1
        )
        tight = range_counting_error_bound(
            64, leaf_sensitivity=2.0, budget=PrivacyBudget(2.0), beta=0.1
        )
        assert tight < loose

    def test_gaussian_bounds_positive(self):
        assert (
            leaf_sum_error_bound(32, leaf_sensitivity=2.0, budget=APPROX_BUDGET, beta=0.1)
            > 0
        )
        assert (
            range_counting_error_bound(
                32, leaf_sensitivity=2.0, budget=APPROX_BUDGET, beta=0.1
            )
            > 0
        )

    def test_degenerate_sizes(self):
        assert leaf_sum_error_bound(0, leaf_sensitivity=1.0, budget=BUDGET, beta=0.1) == 0.0
        assert (
            range_counting_error_bound(0, leaf_sensitivity=1.0, budget=BUDGET, beta=0.1)
            > 0.0
        )
