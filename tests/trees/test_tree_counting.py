"""Tests for repro.trees.tree_counting, colored counting and hierarchies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.composition import PrivacyBudget
from repro.exceptions import SensitivityError
from repro.trees.colored import (
    ColoredItem,
    exact_colored_counts,
    exact_hierarchical_counts,
    private_colored_counts,
    private_hierarchical_counts,
)
from repro.trees.hierarchy import (
    DomainTree,
    build_balanced_hierarchy,
    build_hierarchy_from_paths,
)
from repro.trees.tree_counting import private_tree_counts, tree_counting_error_bound


class TestDomainTree:
    def test_add_and_query(self):
        tree = DomainTree()
        tree.add_child("root", "a")
        tree.add_child("root", "b")
        tree.add_child("a", "a1")
        assert set(tree.children("root")) == {"a", "b"}
        assert tree.parent("a1") == "a"
        assert tree.num_nodes == 4
        assert set(tree.leaves()) == {"a1", "b"}
        assert tree.height() == 2
        assert set(tree.leaves_below("a")) == {"a1"}

    def test_duplicate_node_rejected(self):
        tree = DomainTree()
        tree.add_child("root", "a")
        with pytest.raises(ValueError):
            tree.add_child("root", "a")

    def test_unknown_parent_rejected(self):
        tree = DomainTree()
        with pytest.raises(ValueError):
            tree.add_child("missing", "x")

    def test_mark_leaf(self):
        tree = DomainTree()
        tree.add_child("root", "leaf")
        tree.mark_leaf("leaf", 42)
        assert tree.element_of_leaf("leaf") == 42
        tree.add_child("root", "inner")
        tree.add_child("inner", "deep")
        with pytest.raises(ValueError):
            tree.mark_leaf("inner", 1)

    @given(st.integers(1, 60), st.integers(2, 5))
    @settings(max_examples=40)
    def test_balanced_hierarchy_has_all_leaves(self, universe_size, branching):
        universe = list(range(universe_size))
        tree = build_balanced_hierarchy(universe, branching)
        leaves = tree.leaves()
        assert len(leaves) == universe_size
        assert {tree.element_of_leaf(leaf) for leaf in leaves} == set(universe)

    def test_hierarchy_from_paths_shares_prefixes(self):
        tree = build_hierarchy_from_paths(
            [("ca", "sf", "94110"), ("ca", "sf", "94103"), ("ny", "nyc", "10001")]
        )
        assert len(tree.leaves()) == 3
        # "ca" and "ca/sf" are shared.
        assert tree.num_nodes == 1 + 2 + 2 + 3


class TestExactCounts:
    def test_hierarchical_counts(self):
        tree = build_balanced_hierarchy([0, 1, 2, 3], branching=2)
        counts = exact_hierarchical_counts(tree, [0, 0, 1, 3])
        assert counts[tree.root] == 4
        leaf0 = [leaf for leaf in tree.leaves() if tree.element_of_leaf(leaf) == 0][0]
        assert counts[leaf0] == 2

    def test_colored_counts(self):
        tree = build_balanced_hierarchy([0, 1, 2, 3], branching=2)
        items = [
            ColoredItem(0, "red"),
            ColoredItem(0, "red"),
            ColoredItem(1, "blue"),
            ColoredItem(2, "red"),
        ]
        counts = exact_colored_counts(tree, items)
        assert counts[tree.root] == 2  # red and blue
        leaf0 = [leaf for leaf in tree.leaves() if tree.element_of_leaf(leaf) == 0][0]
        assert counts[leaf0] == 1

    def test_unknown_element_rejected(self):
        tree = build_balanced_hierarchy([0, 1], branching=2)
        with pytest.raises(ValueError):
            exact_hierarchical_counts(tree, [7])
        with pytest.raises(ValueError):
            exact_colored_counts(tree, [ColoredItem(7, "red")])

    def test_monotonicity_of_colored_counts(self):
        tree = build_balanced_hierarchy(list(range(8)), branching=2)
        rng = np.random.default_rng(3)
        items = [
            ColoredItem(int(rng.integers(0, 8)), int(rng.integers(0, 3)))
            for _ in range(30)
        ]
        counts = exact_colored_counts(tree, items)
        for node in tree.nodes():
            children = tree.children(node)
            if children:
                assert counts[node] <= sum(counts[child] for child in children)


class TestPrivateTreeCounts:
    def _tree_and_counts(self, universe_size=16, num_items=200, seed=0):
        tree = build_balanced_hierarchy(list(range(universe_size)), branching=2)
        rng = np.random.default_rng(seed)
        elements = rng.integers(0, universe_size, size=num_items).tolist()
        return tree, exact_hierarchical_counts(tree, elements), elements

    def test_noiseless_recovers_exact_counts(self, rng):
        tree, exact, elements = self._tree_and_counts()
        result = private_tree_counts(
            tree.root,
            tree.children,
            exact,
            leaf_sensitivity=2.0,
            budget=PrivacyBudget(1.0),
            beta=0.1,
            rng=rng,
            noiseless=True,
        )
        for node in tree.nodes():
            assert result[node] == pytest.approx(exact[node])
        assert result.error_bound == 0.0

    def test_error_within_bound_pure(self, rng):
        tree, exact, _ = self._tree_and_counts()
        result = private_tree_counts(
            tree.root,
            tree.children,
            exact,
            leaf_sensitivity=2.0,
            node_sensitivity=1.0,
            budget=PrivacyBudget(1.0),
            beta=0.05,
            rng=rng,
        )
        max_error = max(abs(result[node] - exact[node]) for node in tree.nodes())
        assert max_error <= result.error_bound

    def test_error_within_bound_gaussian(self, rng):
        tree, exact, _ = self._tree_and_counts()
        result = private_tree_counts(
            tree.root,
            tree.children,
            exact,
            leaf_sensitivity=2.0,
            node_sensitivity=1.0,
            budget=PrivacyBudget(1.0, 1e-6),
            beta=0.05,
            rng=rng,
        )
        max_error = max(abs(result[node] - exact[node]) for node in tree.nodes())
        assert max_error <= result.error_bound

    def test_gaussian_bound_beats_laplace_for_small_node_sensitivity(self):
        bound_pure = tree_counting_error_bound(
            1023, 10, 512, leaf_sensitivity=2.0, node_sensitivity=1.0,
            budget=PrivacyBudget(1.0), beta=0.05,
        )
        bound_gauss = tree_counting_error_bound(
            1023, 10, 512, leaf_sensitivity=2.0, node_sensitivity=1.0,
            budget=PrivacyBudget(1.0, 1e-6), beta=0.05,
        )
        assert bound_gauss < bound_pure

    def test_budget_accounting(self, rng):
        tree, exact, _ = self._tree_and_counts(universe_size=8, num_items=20)
        budget = PrivacyBudget(0.7, 1e-5)
        result = private_tree_counts(
            tree.root,
            tree.children,
            exact,
            leaf_sensitivity=1.0,
            budget=budget,
            beta=0.1,
            rng=rng,
        )
        assert result.accountant.within(budget)

    def test_invalid_parameters(self, rng):
        tree, exact, _ = self._tree_and_counts(universe_size=4, num_items=5)
        with pytest.raises(SensitivityError):
            private_tree_counts(
                tree.root, tree.children, exact,
                leaf_sensitivity=0.0, budget=PrivacyBudget(1.0), beta=0.1, rng=rng,
            )
        with pytest.raises(ValueError):
            private_tree_counts(
                tree.root, tree.children, exact,
                leaf_sensitivity=1.0, budget=PrivacyBudget(1.0), beta=1.5, rng=rng,
            )

    def test_counts_callable_accepted(self, rng):
        tree, exact, _ = self._tree_and_counts(universe_size=4, num_items=10)
        result = private_tree_counts(
            tree.root,
            tree.children,
            lambda node: exact[node],
            leaf_sensitivity=2.0,
            budget=PrivacyBudget(1.0),
            beta=0.1,
            rng=rng,
            noiseless=True,
        )
        assert result[tree.root] == pytest.approx(exact[tree.root])


class TestColoredAndHierarchicalWrappers:
    def test_private_hierarchical_counts_noiseless(self, rng):
        tree = build_balanced_hierarchy(list(range(8)), branching=2)
        elements = [0, 1, 1, 5, 7, 7, 7]
        exact = exact_hierarchical_counts(tree, elements)
        result = private_hierarchical_counts(
            tree, elements, budget=PrivacyBudget(1.0), rng=rng, noiseless=True
        )
        assert result[tree.root] == pytest.approx(exact[tree.root])

    def test_private_colored_counts_error_bound(self, rng):
        tree = build_balanced_hierarchy(list(range(16)), branching=2)
        items = [
            ColoredItem(int(i % 16), int(i % 5)) for i in range(100)
        ]
        exact = exact_colored_counts(tree, items)
        result = private_colored_counts(
            tree, items, budget=PrivacyBudget(2.0, 1e-6), beta=0.05, rng=rng
        )
        max_error = max(abs(result[node] - exact[node]) for node in tree.nodes())
        assert max_error <= result.error_bound
