"""Metrics registry tests: concurrency, bucket math, percentile exactness,
gating, and the get-or-create contract."""

from __future__ import annotations

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_BUCKET_GROWTH,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enabled,
    log_buckets,
    set_enabled,
)


@pytest.fixture(autouse=True)
def telemetry_enabled():
    """Every test starts (and leaves) with telemetry on, the default."""
    previous = set_enabled(True)
    yield
    set_enabled(previous)


def _hammer(threads: int, iterations: int, work) -> None:
    barrier = threading.Barrier(threads)

    def run() -> None:
        barrier.wait()
        for _ in range(iterations):
            work()

    pool = [threading.Thread(target=run) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()


class TestCounter:
    def test_eight_thread_increment_stress_loses_nothing(self):
        counter = Counter()
        _hammer(8, 5000, counter.inc)
        assert counter.value == 8 * 5000

    def test_weighted_increments(self):
        counter = Counter()
        counter.inc(2.5)
        counter.inc(0.5)
        assert counter.value == 3.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)

    def test_counts_even_when_disabled(self):
        counter = Counter()
        set_enabled(False)
        counter.inc()
        assert counter.value == 1.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(-3.0)
        assert gauge.value == 7.0

    def test_function_backed_gauge_reads_at_collection_time(self):
        state = {"value": 1.0}
        gauge = Gauge()
        gauge.set_function(lambda: state["value"])
        assert gauge.value == 1.0
        state["value"] = 42.0
        assert gauge.value == 42.0

    def test_set_clears_the_function(self):
        gauge = Gauge()
        gauge.set_function(lambda: 99.0)
        gauge.set(1.0)
        assert gauge.value == 1.0


class TestLogBuckets:
    def test_deterministic_and_increasing(self):
        first = log_buckets(1e-6, 16.0, DEFAULT_BUCKET_GROWTH)
        second = log_buckets(1e-6, 16.0, DEFAULT_BUCKET_GROWTH)
        assert first == second
        assert all(b2 > b1 for b1, b2 in zip(first, first[1:]))
        assert first[0] == 1e-6
        assert first[-1] >= 16.0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 2.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(2.0, 1.0, 2.0)


class TestHistogram:
    def test_boundary_observation_lands_in_its_own_bucket(self):
        # Prometheus le semantics: value == boundary belongs to that bucket.
        histogram = Histogram(boundaries=(1.0, 2.0, 4.0))
        histogram.observe(2.0)
        snapshot = histogram.snapshot()
        buckets = dict((str(le), c) for le, c in snapshot["buckets"])
        assert buckets["1.0"] == 0
        assert buckets["2.0"] == 1
        assert buckets["4.0"] == 1
        assert buckets["+Inf"] == 1

    def test_overflow_goes_to_inf_and_reports_exact_max(self):
        histogram = Histogram(boundaries=(1.0, 2.0))
        histogram.observe(100.0)
        assert histogram.percentile(99.0) == 100.0
        snapshot = histogram.snapshot()
        assert snapshot["buckets"][-1] == ["+Inf", 1]
        assert snapshot["max"] == 100.0

    def test_empty_histogram_percentile_is_nan(self):
        assert math.isnan(Histogram().percentile(50.0))

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101.0)

    def test_concurrent_observations_all_counted(self):
        histogram = Histogram()
        _hammer(8, 2000, lambda: histogram.observe(0.001))
        assert histogram.count == 8 * 2000
        assert histogram.sum == pytest.approx(8 * 2000 * 0.001)

    def test_timer_records_one_observation(self):
        histogram = Histogram()
        with histogram.time():
            pass
        assert histogram.count == 1
        assert histogram.sum >= 0.0

    def test_gated_histogram_skips_while_disabled(self):
        histogram = Histogram()
        set_enabled(False)
        histogram.observe(1.0)
        with histogram.time():
            pass
        assert histogram.count == 0
        set_enabled(True)
        histogram.observe(1.0)
        assert histogram.count == 1

    def test_ungated_histogram_records_while_disabled(self):
        histogram = Histogram(gated=False)
        set_enabled(False)
        histogram.observe(1.0)
        assert histogram.count == 1

    @given(
        st.lists(
            st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        st.sampled_from([50.0, 90.0, 95.0, 99.0, 100.0]),
    )
    @settings(max_examples=80, deadline=None)
    def test_percentile_brackets_the_exact_order_statistic(self, values, q):
        # The documented resolution contract: for any data within bucket
        # range, percentile(q) is the upper boundary of the bucket holding
        # the rank-q order statistic t, so t <= result < t * growth.
        growth = DEFAULT_BUCKET_GROWTH
        histogram = Histogram(boundaries=log_buckets(1e-3, 1e3, growth))
        for value in values:
            histogram.observe(value)
        rank = max(1, math.ceil(q / 100.0 * len(values)))
        exact = sorted(values)[rank - 1]
        result = histogram.percentile(q)
        assert exact <= result
        assert result <= exact * growth * (1 + 1e-12)

    def test_rank_exactness_on_a_known_dataset(self):
        # 100 observations, one per bucket midpoint: p50 must be the 50th
        # value's bucket bound, not an interpolation.
        boundaries = tuple(float(i) for i in range(1, 101))
        histogram = Histogram(boundaries=boundaries)
        for i in range(1, 101):
            histogram.observe(i - 0.5)
        assert histogram.percentile(50.0) == 50.0
        assert histogram.percentile(95.0) == 95.0
        assert histogram.percentile(99.0) == 99.0
        assert histogram.percentile(100.0) == 100.0

    def test_bad_boundaries_rejected(self):
        with pytest.raises(ValueError):
            Histogram(boundaries=())
        with pytest.raises(ValueError):
            Histogram(boundaries=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_the_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total", "help", {"endpoint": "q"})
        second = registry.counter("requests_total", labels={"endpoint": "q"})
        assert first is second
        other = registry.counter("requests_total", labels={"endpoint": "b"})
        assert other is not first

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_name", labels={"bad-label": "x"})

    def test_get_never_creates(self):
        registry = MetricsRegistry()
        assert registry.get("nope") is None
        registry.counter("yes_total")
        assert registry.get("yes_total") is not None
        assert registry.get("yes_total", {"other": "labels"}) is None

    def test_snapshot_is_json_friendly(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c_total", "a counter").inc(3)
        registry.gauge("g", "a gauge").set(1.5)
        registry.histogram("h_seconds", "a histogram").observe(0.01)
        snapshot = registry.snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped["c_total"]["series"][0]["value"] == 3
        assert round_tripped["g"]["kind"] == "gauge"
        assert round_tripped["h_seconds"]["series"][0]["value"]["count"] == 1

    def test_families_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zz_total")
        registry.counter("aa_total")
        names = [name for name, _, _, _ in registry.families()]
        assert names == sorted(names)


def test_set_enabled_returns_previous_value():
    assert enabled()
    assert set_enabled(False) is True
    assert set_enabled(True) is False
    assert enabled()
