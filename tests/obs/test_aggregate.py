"""Cross-process snapshot merge semantics (repro.obs.aggregate).

The tier-wide ``/metrics`` is only trustworthy if the merge respects the
Prometheus data model: counters add, histograms bucket-merge only when the
boundaries agree, and gauges are *never* summed — a function-backed gauge
like ``dpsc_uptime_seconds`` summed across workers is wrong for every
consumer.
"""

import math

import pytest

from repro.obs import (
    MetricsRegistry,
    merge_snapshots,
    render_snapshot,
    snapshot_percentile,
    validate_exposition,
)


def _worker_snapshot(uptime, queries, *, buckets=(0.001, 0.01, 0.1), observe=()):
    registry = MetricsRegistry()
    registry.counter("dpsc_queries_total", "queries").inc(queries)
    registry.gauge("dpsc_uptime_seconds", "uptime").set_function(lambda: uptime)
    histogram = registry.histogram(
        "dpsc_request_seconds", "latency", buckets=buckets, gated=False
    )
    for value in observe:
        histogram.observe(value)
    return registry.snapshot()


def _series(snapshot, name):
    return snapshot[name]["series"]


class TestCounters:
    def test_summed_per_label_set(self):
        merged = merge_snapshots(
            [("w0", _worker_snapshot(1.0, 10)), ("w1", _worker_snapshot(2.0, 32))]
        )
        series = _series(merged, "dpsc_queries_total")
        assert len(series) == 1
        assert series[0]["value"] == 42
        assert series[0]["labels"] == {}

    def test_distinct_label_sets_stay_distinct(self):
        a = MetricsRegistry()
        a.counter("dpsc_requests_total", labels={"endpoint": "query"}).inc(3)
        b = MetricsRegistry()
        b.counter("dpsc_requests_total", labels={"endpoint": "batch"}).inc(5)
        merged = merge_snapshots([("w0", a.snapshot()), ("w1", b.snapshot())])
        by_endpoint = {
            entry["labels"]["endpoint"]: entry["value"]
            for entry in _series(merged, "dpsc_requests_total")
        }
        assert by_endpoint == {"query": 3, "batch": 5}


class TestGauges:
    def test_never_summed_reported_per_source(self):
        merged = merge_snapshots(
            [("w0", _worker_snapshot(100.0, 1)), ("w1", _worker_snapshot(7.0, 1))]
        )
        series = _series(merged, "dpsc_uptime_seconds")
        by_worker = {entry["labels"]["worker"]: entry["value"] for entry in series}
        assert by_worker == {"w0": 100.0, "w1": 7.0}
        assert not any(entry["value"] == 107.0 for entry in series)

    def test_source_label_name_configurable(self):
        merged = merge_snapshots(
            [("a", _worker_snapshot(1.0, 0)), ("b", _worker_snapshot(2.0, 0))],
            label="source",
        )
        series = _series(merged, "dpsc_uptime_seconds")
        assert {entry["labels"]["source"] for entry in series} == {"a", "b"}


class TestHistograms:
    def test_equal_buckets_merge(self):
        merged = merge_snapshots(
            [
                ("w0", _worker_snapshot(1.0, 0, observe=(0.0005, 0.05))),
                ("w1", _worker_snapshot(1.0, 0, observe=(0.005,))),
            ]
        )
        series = _series(merged, "dpsc_request_seconds")
        assert len(series) == 1
        value = series[0]["value"]
        assert value["count"] == 3
        assert value["sum"] == pytest.approx(0.0555)
        cumulative = dict(
            (str(boundary), count) for boundary, count in value["buckets"]
        )
        assert cumulative["0.001"] == 1
        assert cumulative["0.01"] == 2
        assert cumulative["0.1"] == 3
        assert cumulative["+Inf"] == 3

    def test_mismatched_buckets_fall_back_to_per_source(self):
        merged = merge_snapshots(
            [
                ("w0", _worker_snapshot(1.0, 0, observe=(0.05,))),
                (
                    "w1",
                    _worker_snapshot(
                        1.0, 0, buckets=(0.5, 5.0), observe=(0.05,)
                    ),
                ),
            ]
        )
        series = _series(merged, "dpsc_request_seconds")
        assert len(series) == 2
        assert {entry["labels"]["worker"] for entry in series} == {"w0", "w1"}

    def test_percentile_rederived_from_merged_buckets(self):
        value = {
            "buckets": [[0.001, 0], [0.01, 9], [0.1, 10], ["+Inf", 10]],
            "count": 10,
            "max": 0.05,
        }
        assert snapshot_percentile(value["buckets"], 10, 50.0, 0.05) == 0.01
        assert snapshot_percentile(value["buckets"], 10, 99.0, 0.05) == 0.1
        assert math.isnan(snapshot_percentile(value["buckets"], 0, 50.0, 0.0))


class TestConflictsAndRendering:
    def test_kind_conflict_raises(self):
        a = MetricsRegistry()
        a.counter("dpsc_thing").inc()
        b = MetricsRegistry()
        b.gauge("dpsc_thing").set(1.0)
        with pytest.raises(ValueError):
            merge_snapshots([("w0", a.snapshot()), ("w1", b.snapshot())])

    def test_rendered_merge_passes_exposition_validation(self):
        merged = merge_snapshots(
            [
                ("w0", _worker_snapshot(3.0, 5, observe=(0.002, 0.2))),
                ("w1", _worker_snapshot(9.0, 7, observe=(0.02,))),
            ]
        )
        text = render_snapshot(merged)
        assert validate_exposition(text) > 0
        assert 'dpsc_uptime_seconds{worker="w0"} 3' in text

    def test_single_source_round_trips(self):
        snapshot = _worker_snapshot(5.0, 2, observe=(0.005,))
        merged = merge_snapshots([("only", snapshot)])
        assert _series(merged, "dpsc_queries_total")[0]["value"] == 2
        assert validate_exposition(render_snapshot(merged)) > 0
