"""Prometheus exposition tests: the renderer and its validating parser.

The validator is the CI smoke job's gate, so these tests check both
directions: everything the renderer emits must validate, and corrupted
expositions (the bugs the validator exists to catch) must raise."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, render_prometheus, validate_exposition


@pytest.fixture
def registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "dpsc_requests_total", "Requests served.", {"endpoint": "query"}
    ).inc(5)
    registry.counter(
        "dpsc_requests_total", labels={"endpoint": "batch"}
    ).inc(2)
    registry.gauge("dpsc_uptime_seconds", "Uptime.").set(12.5)
    histogram = registry.histogram(
        "dpsc_request_seconds", "Latency.", {"endpoint": "query"}
    )
    for value in (0.001, 0.002, 0.004, 5.0, 100.0):
        histogram.observe(value)
    return registry


class TestRenderer:
    def test_rendered_output_validates(self, registry):
        text = render_prometheus(registry)
        assert validate_exposition(text) > 0

    def test_counter_and_gauge_samples(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE dpsc_requests_total counter" in text
        assert 'dpsc_requests_total{endpoint="query"} 5.0' in text
        assert 'dpsc_requests_total{endpoint="batch"} 2.0' in text
        assert "# HELP dpsc_uptime_seconds Uptime." in text
        assert "dpsc_uptime_seconds 12.5" in text

    def test_histogram_expansion(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE dpsc_request_seconds histogram" in text
        assert 'dpsc_request_seconds_bucket{endpoint="query",le="+Inf"} 5' in text
        assert 'dpsc_request_seconds_count{endpoint="query"} 5' in text
        # The overflow observation (100 > top boundary) is only in +Inf.
        sum_line = next(
            line for line in text.splitlines()
            if line.startswith("dpsc_request_seconds_sum")
        )
        assert float(sum_line.split()[-1]) == pytest.approx(105.007)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "weird_total", "quotes", {"release": 'a"b\\c'}
        ).inc()
        text = render_prometheus(registry)
        assert '\\"' in text and "\\\\" in text
        assert validate_exposition(text) == 1

    def test_empty_registry_renders_nothing_but_validates(self):
        text = render_prometheus(MetricsRegistry())
        assert validate_exposition(text) == 0


class TestValidator:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError, match="no preceding # TYPE"):
            validate_exposition("orphan_total 1\n")

    def test_malformed_sample_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            validate_exposition("# TYPE x counter\nx one\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            validate_exposition("# TYPE x banana\n")

    def test_duplicate_type_rejected(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            validate_exposition("# TYPE x counter\n# TYPE x counter\n")

    def test_non_cumulative_buckets_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\n'
            'h_bucket{le="2.0"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1.0\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match="not cumulative"):
            validate_exposition(text)

    def test_missing_inf_bucket_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\n'
            "h_sum 1.0\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match="missing the \\+Inf bucket"):
            validate_exposition(text)

    def test_inf_bucket_count_mismatch_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 4\n'
            'h_bucket{le="+Inf"} 4\n'
            "h_sum 1.0\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match="disagrees with _count"):
            validate_exposition(text)

    def test_unordered_bucket_boundaries_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="2.0"} 1\n'
            'h_bucket{le="1.0"} 2\n'
            'h_bucket{le="+Inf"} 2\n'
        )
        with pytest.raises(ValueError, match="not ascending"):
            validate_exposition(text)

    def test_junk_labels_rejected(self):
        with pytest.raises(ValueError, match="malformed labels"):
            validate_exposition('# TYPE x counter\nx{oops} 1\n')

    def test_comments_and_blank_lines_tolerated(self):
        text = "# a free comment\n\n# TYPE x counter\nx 1\n\n"
        assert validate_exposition(text) == 1
