"""Tracing span tests: nesting, exception unwinding, thread isolation, and
the BuildProfile views (legacy timings dict, text render, Chrome trace)."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs.spans import _state


@pytest.fixture(autouse=True)
def clean_span_state():
    """Spans must never leak between tests via the thread-local stack."""
    previous = obs.set_enabled(True)
    _state.stack = []
    yield
    assert not getattr(_state, "stack", []), "a test leaked an open span"
    obs.set_enabled(previous)


class TestSpanNesting:
    def test_span_without_a_trace_is_a_noop(self):
        with obs.span("orphan") as target:
            assert target is None
        assert obs.current_span() is None

    def test_trace_records_a_tree(self):
        with obs.trace("build", build_backend="array") as root:
            with obs.span("outer", level=1) as outer:
                assert obs.current_span() is outer
                with obs.span("inner"):
                    pass
            with obs.span("outer", level=2):
                pass
        assert root.name == "build"
        assert root.attrs == {"build_backend": "array"}
        assert [child.name for child in root.children] == ["outer", "outer"]
        assert [child.name for child in root.children[0].children] == ["inner"]
        assert root.wall_seconds >= root.children[0].wall_seconds >= 0.0
        assert root.status == "ok"
        assert obs.current_span() is None

    def test_nested_trace_attaches_as_a_child(self):
        with obs.trace("outer") as outer:
            with obs.trace("inner-build") as inner:
                pass
        assert [child.name for child in outer.children] == ["inner-build"]
        assert inner is outer.children[0]

    def test_find_iterates_descendants_by_name(self):
        with obs.trace("root") as root:
            with obs.span("level", length=1):
                with obs.span("count"):
                    pass
            with obs.span("level", length=2):
                pass
        lengths = [sp.attrs["length"] for sp in root.find("level")]
        assert lengths == [1, 2]
        assert len(list(root.find("count"))) == 1

    def test_disabled_telemetry_skips_the_trace(self):
        obs.set_enabled(False)
        with obs.trace("build") as root:
            assert root is None
            with obs.span("stage") as stage:
                assert stage is None
        assert obs.current_span() is None

    def test_span_still_nests_inside_an_active_trace_when_disabled(self):
        # The root decides; disabling mid-trace must not orphan children.
        with obs.trace("build") as root:
            obs.set_enabled(False)
            with obs.span("stage"):
                pass
        assert [child.name for child in root.children] == ["stage"]


class TestExceptionUnwinding:
    def test_raising_span_is_marked_and_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            with obs.trace("build") as root:
                with obs.span("noise"):
                    raise RuntimeError("boom")
        assert root.status == "error"
        noise = root.children[0]
        assert noise.status == "error"
        assert noise.attrs["error"] == "RuntimeError"
        assert obs.current_span() is None

    def test_caught_exception_leaves_outer_spans_ok(self):
        with obs.trace("build") as root:
            with obs.span("stage"):
                try:
                    with obs.span("failing"):
                        raise ValueError("inner")
                except ValueError:
                    pass
        assert root.status == "ok"
        stage = root.children[0]
        assert stage.status == "ok"
        assert stage.children[0].status == "error"

    def test_stack_unwinds_even_with_leaked_inner_spans(self):
        # Defensive path: enter a child context without ever exiting it.
        with obs.trace("build") as root:
            leaked = obs.span("leaked")
            leaked.__enter__()
            # The outer exit must pop past the leaked span.
        assert obs.current_span() is None
        assert root.children == []


class TestThreadIsolation:
    def test_spans_on_other_threads_do_not_attach(self):
        trees = {}

        def other() -> None:
            with obs.trace("other-thread") as root:
                with obs.span("work"):
                    pass
            trees["other"] = root

        with obs.trace("main") as root:
            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
        assert root.children == []
        assert [c.name for c in trees["other"].children] == ["work"]


class TestBuildProfile:
    def _profile(self) -> obs.BuildProfile:
        with obs.trace("construction", build_backend="array") as root:
            with obs.span("candidates"):
                with obs.span("level", length=1):
                    pass
            with obs.span("noise", paths=3):
                pass
            with obs.span("noise"):
                pass
        return obs.BuildProfile(root)

    def test_stages_aggregate_top_level_children_by_name(self):
        profile = self._profile()
        stages = profile.stages()
        assert list(stages) == ["candidates", "noise"]
        noise_total = sum(
            sp.wall_seconds for sp in profile.root.children if sp.name == "noise"
        )
        assert stages["noise"] == pytest.approx(noise_total)

    def test_legacy_timings_shape(self):
        profile = self._profile()
        timings = profile.legacy_timings()
        assert set(timings) == {"build_backend", "total_seconds", "stages"}
        assert timings["build_backend"] == "array"
        assert timings["total_seconds"] == profile.total_seconds

    def test_render_mentions_every_span(self):
        text = self._profile().render()
        for name in ("construction", "candidates", "level", "noise"):
            assert name in text
        assert "[length=1]" in text
        assert "wall" in text and "cpu" in text

    def test_chrome_trace_is_valid_and_relative(self):
        profile = self._profile()
        trace = json.loads(json.dumps(profile.chrome_trace()))
        events = trace["traceEvents"]
        assert len(events) == 5  # root + candidates + level + noise x2
        assert all(event["ph"] == "X" for event in events)
        root_event = events[0]
        assert root_event["ts"] == 0.0
        assert root_event["dur"] == pytest.approx(profile.total_seconds * 1e6)
        assert all(event["ts"] >= 0.0 for event in events)
        by_name = {event["name"] for event in events}
        assert by_name == {"construction", "candidates", "level", "noise"}
        level = next(e for e in events if e["name"] == "level")
        assert level["args"]["length"] == 1
        assert "cpu_seconds" in level["args"]

    def test_error_status_exported(self):
        with pytest.raises(RuntimeError):
            with obs.trace("construction", build_backend="object") as root:
                with obs.span("prune"):
                    raise RuntimeError("died")
        profile = obs.BuildProfile(root)
        assert "!error" in profile.render()
        events = profile.chrome_trace()["traceEvents"]
        prune = next(e for e in events if e["name"] == "prune")
        assert prune["args"]["status"] == "error"
