"""Tests for the resilience primitives and the resilient client.

:mod:`repro.serving.resilience` is deliberately four small, independently
testable machines — seeded decorrelated-jitter backoff, the circuit
breaker, wall-clock deadlines, the admission gate — plus the retry loop
that composes them.  The properties proven here (delays bounded by
``[base, cap]`` and replayable from the seed; the breaker's exact
closed → open → half-open transitions with probe accounting; deadline
headers round-tripping bit-exactly) are what the chaos drill (E29)
assumes when it verifies whole-cluster runs.  The client tests drive a
scripted stub HTTP server so every retry decision — 5xx retried, 4xx
surfaced immediately with the server's payload, ``Retry-After``
overriding backoff, the total deadline cutting off retries — is observed
on the wire.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.client import DEFAULT_TIMEOUT, ServingClient, ServingClientError
from repro.serving.resilience import (
    DEADLINE_HEADER,
    AdmissionGate,
    BackoffPolicy,
    CircuitBreaker,
    Deadline,
    call_with_retries,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# BackoffPolicy
# ----------------------------------------------------------------------
class TestBackoffPolicy:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(0, 2**32),
        base=st.floats(0.001, 1.0),
        cap_factor=st.floats(1.0, 10.0),
        multiplier=st.floats(1.0, 4.0),
    )
    def test_delays_are_bounded_and_replayable(self, seed, base, cap_factor, multiplier):
        policy = BackoffPolicy(base=base, cap=base * cap_factor, multiplier=multiplier)
        delays = policy.schedule(seed, 12)
        assert delays == policy.schedule(seed, 12)
        previous = policy.base
        for delay in delays:
            assert policy.base <= delay <= policy.cap + 1e-12
            # decorrelated jitter: each draw is capped by the previous
            # delay times the multiplier (and by the hard cap)
            assert delay <= min(policy.cap, previous * policy.multiplier) + 1e-9
            previous = delay

    def test_different_seeds_decorrelate(self):
        policy = BackoffPolicy()
        schedules = {tuple(policy.schedule(seed, 6)) for seed in range(20)}
        assert len(schedules) == 20

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(base=1.0, cap=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.9)


class TestCallWithRetries:
    def test_succeeds_after_transient_failures_with_seeded_sleeps(self):
        policy = BackoffPolicy(base=0.01, cap=0.05)
        failures = iter([OSError("a"), OSError("b")])
        calls = []

        def flaky():
            calls.append(1)
            for error in failures:
                raise error
            return "ok"

        slept: list[float] = []
        retried: list[BaseException] = []
        result = call_with_retries(
            flaky,
            retries=4,
            transient=(OSError,),
            backoff=policy,
            seed="unit",
            on_retry=retried.append,
            sleep=slept.append,
        )
        assert result == "ok"
        assert len(calls) == 3
        assert [str(error) for error in retried] == ["a", "b"]
        assert slept == policy.schedule("unit", 2)

    def test_non_transient_errors_propagate_immediately(self):
        calls = []

        def wrong():
            calls.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            call_with_retries(
                wrong, retries=5, transient=(OSError,), sleep=lambda _d: None
            )
        assert len(calls) == 1

    def test_exhausted_retries_reraise_the_last_error(self):
        def always():
            raise OSError("still down")

        with pytest.raises(OSError, match="still down"):
            call_with_retries(
                always, retries=2, transient=(OSError,), sleep=lambda _d: None
            )

    def test_expired_deadline_stops_retrying(self):
        calls = []

        def always():
            calls.append(1)
            raise OSError("down")

        with pytest.raises(OSError):
            call_with_retries(
                always,
                retries=10,
                transient=(OSError,),
                deadline=Deadline(time.time() - 1.0),
                sleep=lambda _d: None,
            )
        assert len(calls) == 1  # attempts remain, but the budget is gone


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        transitions: list[tuple[str, str]] = []
        breaker = CircuitBreaker(
            failure_threshold=kwargs.pop("failure_threshold", 3),
            recovery_time=kwargs.pop("recovery_time", 10.0),
            clock=clock,
            on_transition=lambda old, new: transitions.append((old, new)),
            **kwargs,
        )
        return breaker, clock, transitions

    def test_stays_closed_below_the_failure_threshold(self):
        breaker, _clock, transitions = self.make()
        for _ in range(2):
            assert breaker.try_acquire()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert transitions == []

    def test_success_resets_the_consecutive_failure_count(self):
        breaker, _clock, _ = self.make()
        for _ in range(2):
            assert breaker.try_acquire()
            breaker.record_failure()
        assert breaker.try_acquire()
        breaker.record_success()
        # two more failures: the earlier pair must not count toward the
        # threshold of three any more
        for _ in range(2):
            assert breaker.try_acquire()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_threshold_failures_trip_it_open(self):
        breaker, clock, transitions = self.make()
        for _ in range(3):
            assert breaker.try_acquire()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert transitions == [("closed", "open")]
        assert not breaker.try_acquire()
        assert not breaker.would_allow()
        clock.advance(9.9)  # just inside the recovery window
        assert not breaker.try_acquire()

    def test_recovery_admits_one_probe_whose_success_recloses(self):
        breaker, clock, transitions = self.make()
        for _ in range(3):
            breaker.try_acquire()
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.would_allow()
        assert breaker.try_acquire()  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.try_acquire()  # probe slot taken (max_probes=1)
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
        assert breaker.try_acquire()

    def test_probe_failure_reopens_with_a_fresh_recovery_window(self):
        breaker, clock, transitions = self.make()
        for _ in range(3):
            breaker.try_acquire()
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.try_acquire()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert transitions[-1] == ("half_open", "open")
        assert not breaker.try_acquire()  # window restarted at the failure
        clock.advance(10.0)
        assert breaker.try_acquire()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_slots_are_accounted(self):
        breaker, clock, _ = self.make(half_open_max_probes=2)
        for _ in range(3):
            breaker.try_acquire()
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.try_acquire()
        assert breaker.try_acquire()
        assert not breaker.try_acquire()  # both slots outstanding
        assert not breaker.would_allow()
        breaker.record_success()  # one probe back -> recloses
        assert breaker.state == CircuitBreaker.CLOSED

    def test_state_codes_match_the_gauge_encoding(self):
        breaker, clock, _ = self.make(failure_threshold=1)
        assert breaker.state_code == 0.0
        breaker.try_acquire()
        breaker.record_failure()
        assert breaker.state_code == 2.0
        clock.advance(10.0)
        breaker.try_acquire()
        assert breaker.state_code == 1.0

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_time=-1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_max_probes=0)


# ----------------------------------------------------------------------
# Deadline & AdmissionGate
# ----------------------------------------------------------------------
class TestDeadline:
    @settings(max_examples=50, deadline=None)
    @given(at=st.floats(allow_nan=False, allow_infinity=False))
    def test_header_round_trips_bit_exactly(self, at):
        parsed = Deadline.from_header(Deadline(at).header_value())
        assert parsed is not None
        assert parsed.at == float(at)

    @pytest.mark.parametrize("value", [None, "", "soon", "nan", "inf", "-inf"])
    def test_garbage_headers_parse_to_none(self, value):
        assert Deadline.from_header(value) is None

    def test_remaining_and_expiry_track_the_clock(self):
        clock = FakeClock(now=100.0)
        deadline = Deadline.after(5.0, clock=clock)
        assert deadline.remaining(clock=clock) == 5.0
        assert not deadline.expired(clock=clock)
        clock.advance(5.0)
        assert deadline.expired(clock=clock)


class TestAdmissionGate:
    def test_sheds_above_the_limit_and_recovers(self):
        gate = AdmissionGate(2)
        assert gate.try_enter()
        assert gate.try_enter()
        assert not gate.try_enter()
        assert gate.inflight == 2
        gate.leave()
        assert gate.try_enter()

    def test_leave_never_goes_negative(self):
        gate = AdmissionGate(1)
        gate.leave()
        assert gate.inflight == 0
        assert gate.try_enter()

    def test_invalid_limit_is_rejected(self):
        with pytest.raises(ValueError):
            AdmissionGate(0)


# ----------------------------------------------------------------------
# ServingClient against a scripted stub server
# ----------------------------------------------------------------------
class _ScriptedHandler(BaseHTTPRequestHandler):
    """Plays back ``server.script`` one step per request (last step repeats)
    and records everything the client sent."""

    def _serve(self) -> None:
        server = self.server
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        with server.lock:
            index = len(server.requests)
            server.requests.append(
                {
                    "path": self.path,
                    "headers": dict(self.headers),
                    # HTTPMessage lookups are case-insensitive; the dict above
                    # keeps whatever casing the transport normalised to
                    "deadline": self.headers.get(DEADLINE_HEADER),
                    "body": body,
                }
            )
            step = server.script[min(index, len(server.script) - 1)]
        if step.get("sleep"):
            time.sleep(step["sleep"])
        payload = json.dumps(step.get("body", {})).encode("utf-8")
        self.send_response(step.get("status", 200))
        for name, value in step.get("headers", {}).items():
            self.send_header(name, value)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    do_GET = _serve
    do_POST = _serve

    def log_message(self, *_args) -> None:  # silence test output
        pass


@pytest.fixture
def scripted_server():
    servers = []

    def start(script):
        server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
        server.script = script
        server.requests = []
        server.lock = threading.Lock()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append((server, thread))
        return server, f"http://127.0.0.1:{server.server_address[1]}"

    yield start
    for server, thread in servers:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


FAST = BackoffPolicy(base=0.005, cap=0.01)


class TestServingClient:
    def test_retries_5xx_until_success_and_counts_them(self, scripted_server):
        server, url = scripted_server(
            [
                {"status": 500, "body": {"error": "injected"}},
                {"status": 502, "body": {"error": "bad gateway"}},
                {"status": 200, "body": {"count": 7.0}},
            ]
        )
        client = ServingClient(url, retries=4, backoff=FAST, seed=1)
        assert client.query("ab") == 7.0
        assert client.num_retries == 2
        assert len(server.requests) == 3

    def test_every_attempt_carries_the_deadline_header(self, scripted_server):
        server, url = scripted_server(
            [{"status": 500, "body": {}}, {"status": 200, "body": {"count": 1.0}}]
        )
        client = ServingClient(url, retries=2, backoff=FAST)
        before = time.time()
        client.query("ab")
        budget = client.timeout_for("/query")
        stamps = [float(request["deadline"]) for request in server.requests]
        assert len(stamps) == 2
        # one absolute deadline for the whole call, identical across retries
        assert stamps[0] == stamps[1]
        assert before + budget <= stamps[0] <= time.time() + budget

    def test_4xx_surfaces_the_server_payload_without_retrying(self, scripted_server):
        server, url = scripted_server(
            [
                {
                    "status": 404,
                    "body": {"error": "release 'v9' is not served", "release": "v9"},
                }
            ]
        )
        client = ServingClient(url, retries=4, backoff=FAST)
        with pytest.raises(ServingClientError, match="not served") as excinfo:
            client.query("ab", release="v9")
        error = excinfo.value
        assert error.status == 404
        assert error.attempts == 1
        assert error.endpoint == "/query"
        assert error.payload == {"error": "release 'v9' is not served", "release": "v9"}
        assert len(server.requests) == 1
        assert client.num_retries == 0

    def test_retry_after_overrides_the_backoff_delay(self, scripted_server):
        server, url = scripted_server(
            [
                {
                    "status": 503,
                    "body": {"error": "at capacity"},
                    "headers": {"Retry-After": "0.05"},
                },
                {"status": 200, "body": {"count": 2.0}},
            ]
        )
        # the backoff alone would sleep >= 2s; Retry-After must win
        client = ServingClient(
            url, retries=2, backoff=BackoffPolicy(base=2.0, cap=3.0)
        )
        started = time.monotonic()
        assert client.query("ab") == 2.0
        assert time.monotonic() - started < 1.0
        assert len(server.requests) == 2

    def test_exhausted_retries_raise_with_the_last_5xx(self, scripted_server):
        server, url = scripted_server([{"status": 500, "body": {"error": "down"}}])
        client = ServingClient(url, retries=1, backoff=FAST)
        with pytest.raises(ServingClientError, match="down") as excinfo:
            client.query("ab")
        assert excinfo.value.status == 500
        assert excinfo.value.attempts == 2
        assert len(server.requests) == 2

    def test_total_deadline_cuts_off_slow_servers(self, scripted_server):
        _server, url = scripted_server(
            [{"status": 200, "body": {"count": 1.0}, "sleep": 0.5}]
        )
        client = ServingClient(url, timeout=0.1, retries=10, backoff=FAST)
        with pytest.raises(ServingClientError, match="deadline") as excinfo:
            client.query("ab")
        assert excinfo.value.status == 0
        assert client._deadline_exceeded.value >= 1

    def test_connection_failures_are_retried_then_surfaced(self):
        # nothing listens on this port (bound-then-closed to reserve it)
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServingClient(f"http://127.0.0.1:{port}", retries=2, backoff=FAST)
        with pytest.raises(ServingClientError, match="cannot reach") as excinfo:
            client.healthz()
        assert excinfo.value.status == 0
        assert excinfo.value.attempts == 3

    def test_per_endpoint_timeout_defaults_and_flat_override(self):
        client = ServingClient("http://127.0.0.1:1")
        assert client.timeout_for("/healthz") == 5.0
        assert client.timeout_for("/mine") == 120.0
        assert client.timeout_for("/unknown") == DEFAULT_TIMEOUT
        flat = ServingClient("http://127.0.0.1:1", timeout=3.0)
        assert flat.timeout_for("/mine") == 3.0
        assert flat.timeout_for("/healthz") == 3.0


# ----------------------------------------------------------------------
# The real server refuses expired work with 504
# ----------------------------------------------------------------------
class TestServerDeadlineRefusal:
    def test_expired_deadline_header_answers_504(self):
        from repro.serving import QueryService, create_server
        from tests.serving.test_release_format import make_structure

        service = QueryService(
            {"demo": make_structure({"ab": 5.0, "ba": 3.0})}, micro_batch=False
        )
        server = create_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{server.server_address[1]}/query"
            body = json.dumps({"pattern": "ab"}).encode("utf-8")

            def post(deadline_at):
                request = urllib.request.Request(
                    url,
                    data=body,
                    headers={
                        "Content-Type": "application/json",
                        DEADLINE_HEADER: repr(deadline_at),
                    },
                )
                with urllib.request.urlopen(request, timeout=5) as response:
                    return response.status, json.loads(response.read())

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(time.time() - 5.0)
            assert excinfo.value.code == 504
            payload = json.loads(excinfo.value.read())
            assert "deadline" in payload["error"]
            assert service.num_deadline_exceeded == 1

            status, answer = post(time.time() + 30.0)
            assert status == 200
            assert answer["count"] == 5.0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.close()
