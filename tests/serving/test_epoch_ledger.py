"""Tests for the ledger's epoch accounting (continual-release charges).

The guarantees under test: every epoch — including the zero-marginal ones
of the tree schedule — gets a durable, ordered ledger entry and an audit
record; refusals are audited before the error propagates; and a simulated
kill mid-``charge_epoch`` leaves the previous complete ledger on disk
(the audit-before-save invariant may over-report, never under-report).
"""

from __future__ import annotations

import json

import pytest

import repro.serving._fsio as fsio
from repro.dp.composition import PrivacyBudget
from repro.exceptions import BudgetExceededError, PrivacyParameterError
from repro.serving import BudgetLedger


class TestEpochCharging:
    def test_zero_marginals_are_recorded(self):
        ledger = BudgetLedger(PrivacyBudget(10.0))
        ledger.charge_epoch("db", 1, 2.0)
        ledger.charge_epoch("db", 2, 2.0)
        ledger.charge_epoch("db", 3, 0.0)  # non-power-of-two epoch
        assert ledger.spent("db").epsilon == pytest.approx(4.0)
        entries = ledger.epoch_entries("db")
        assert [entry["epoch"] for entry in entries] == [1, 2, 3]
        assert entries[2]["epsilon"] == 0.0
        assert ledger.next_epoch("db") == 4

    def test_epochs_must_arrive_in_order(self):
        ledger = BudgetLedger(PrivacyBudget(10.0))
        ledger.charge_epoch("db", 1, 1.0)
        with pytest.raises(PrivacyParameterError, match="in order"):
            ledger.charge_epoch("db", 3, 1.0)
        with pytest.raises(PrivacyParameterError, match="in order"):
            ledger.charge_epoch("db", 1, 1.0)
        # A failed ordering check records nothing.
        assert ledger.next_epoch("db") == 2

    def test_negative_charge_rejected(self):
        ledger = BudgetLedger(PrivacyBudget(10.0))
        with pytest.raises(PrivacyParameterError):
            ledger.charge_epoch("db", 1, -1.0)

    def test_databases_keep_independent_schedules(self):
        ledger = BudgetLedger(PrivacyBudget(10.0))
        ledger.charge_epoch("first", 1, 1.0)
        ledger.charge_epoch("first", 2, 1.0)
        ledger.charge_epoch("second", 1, 1.0)
        assert ledger.next_epoch("first") == 3
        assert ledger.next_epoch("second") == 2
        everything = ledger.epoch_entries()
        assert [(e["database_id"], e["epoch"]) for e in everything] == [
            ("first", 1), ("first", 2), ("second", 1),
        ]

    def test_over_cap_epoch_refused_and_not_recorded(self, tmp_path):
        ledger = BudgetLedger(PrivacyBudget(3.0), path=tmp_path / "ledger.json")
        ledger.charge_epoch("db", 1, 2.0)
        with pytest.raises(BudgetExceededError) as excinfo:
            ledger.charge_epoch("db", 2, 2.0)
        assert excinfo.value.requested == (2.0, 0.0)
        assert excinfo.value.spent == (2.0, 0.0)
        assert ledger.next_epoch("db") == 2
        # The refusal is in the audit trail with its epoch number.
        refusals = [
            entry
            for entry in ledger.audit_entries("db")
            if entry["event"] == "refusal"
        ]
        assert refusals and refusals[-1]["epoch"] == 2

    def test_every_epoch_charge_is_audited(self, tmp_path):
        ledger = BudgetLedger(PrivacyBudget(10.0), path=tmp_path / "ledger.json")
        for epoch, epsilon in ((1, 2.0), (2, 2.0), (3, 0.0), (4, 2.0)):
            ledger.charge_epoch("db", epoch, epsilon)
        charges = [
            entry
            for entry in ledger.audit_entries("db")
            if entry["event"] == "charge_epoch"
        ]
        assert [entry["epoch"] for entry in charges] == [1, 2, 3, 4]
        assert charges[-1]["spent_epsilon"] == pytest.approx(6.0)


class TestEpochPersistence:
    def test_epochs_survive_reopen(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = BudgetLedger(PrivacyBudget(10.0), path=path)
        ledger.charge_epoch("db", 1, 2.0, label="window")
        ledger.charge_epoch("db", 2, 2.0, label="window")
        reopened = BudgetLedger(PrivacyBudget(10.0), path=path)
        assert reopened.next_epoch("db") == 3
        assert reopened.spent("db").epsilon == pytest.approx(4.0)
        assert [e["label"] for e in reopened.epoch_entries("db")] == [
            "window", "window",
        ]

    def test_single_shot_ledger_files_keep_their_shape(self, tmp_path):
        # No epochs charged -> no "epochs" key: pre-continual files and
        # fresh single-shot ledgers stay byte-compatible.
        path = tmp_path / "ledger.json"
        ledger = BudgetLedger(PrivacyBudget(10.0), path=path)
        ledger.charge("db", PrivacyBudget(2.0))
        assert "epochs" not in json.loads(path.read_text())
        ledger.charge_epoch("db", 1, 1.0)
        assert "epochs" in json.loads(path.read_text())

    def test_two_handles_cannot_double_book_an_epoch(self, tmp_path):
        path = tmp_path / "ledger.json"
        first = BudgetLedger(PrivacyBudget(10.0), path=path)
        second = BudgetLedger(PrivacyBudget(10.0), path=path)
        first.charge_epoch("db", 1, 2.0)
        # The second handle re-reads the file and sees epoch 1 as taken.
        with pytest.raises(PrivacyParameterError, match="in order"):
            second.charge_epoch("db", 1, 2.0)
        second.charge_epoch("db", 2, 2.0)
        assert first.next_epoch("db") == 3


class TestEpochCrashSafety:
    def test_ledger_survives_kill_mid_charge_epoch(self, tmp_path, monkeypatch):
        path = tmp_path / "ledger.json"
        ledger = BudgetLedger(PrivacyBudget(10.0), path=path)
        ledger.charge_epoch("db", 1, 4.0)
        before = path.read_text()

        def exploding_replace(src, dst):
            # Simulate the process dying mid-write: the tmp file is
            # truncated garbage and the rename never happens.
            with open(src, "w", encoding="utf-8") as handle:
                handle.write('{"trunc')
            raise OSError("simulated crash during atomic replace")

        monkeypatch.setattr(fsio.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            ledger.charge_epoch("db", 2, 1.0)
        monkeypatch.undo()

        # The balance file still holds the complete pre-crash ledger...
        assert path.read_text() == before
        reloaded = BudgetLedger(PrivacyBudget(10.0), path=path)
        assert reloaded.next_epoch("db") == 2
        assert reloaded.spent("db").epsilon == pytest.approx(4.0)
        # ...while the audit trail already shows the in-flight charge: the
        # crash over-reports (visible, privacy-safe), never under-reports.
        events = [
            (entry["event"], entry.get("epoch"))
            for entry in reloaded.audit_entries("db")
        ]
        assert ("charge_epoch", 2) in events

    def test_schedule_resumes_cleanly_after_crash(self, tmp_path, monkeypatch):
        path = tmp_path / "ledger.json"
        ledger = BudgetLedger(PrivacyBudget(10.0), path=path)
        ledger.charge_epoch("db", 1, 4.0)

        calls = {"n": 0}
        real_replace = fsio.os.replace

        def crash_once(src, dst):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("simulated crash during atomic replace")
            return real_replace(src, dst)

        monkeypatch.setattr(fsio.os, "replace", crash_once)
        with pytest.raises(OSError):
            ledger.charge_epoch("db", 2, 1.0)
        # A restarted curator re-reads the file and re-runs the same epoch.
        recovered = BudgetLedger(PrivacyBudget(10.0), path=path)
        recovered.charge_epoch("db", recovered.next_epoch("db"), 1.0)
        assert recovered.next_epoch("db") == 3
        assert recovered.spent("db").epsilon == pytest.approx(5.0)
