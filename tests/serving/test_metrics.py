"""Tests for the serving metrics: the registry-homed counters, per-endpoint
latency histograms, micro-batch instrumentation, and the ``/metrics``
endpoint (Prometheus text + JSON snapshot)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.construction import build_private_counting_structure
from repro.core.database import StringDatabase
from repro.core.params import ConstructionParams
from repro.obs import validate_exposition
from repro.serving import QueryService, ServingClient, create_server


@pytest.fixture(scope="module")
def structure():
    rng = np.random.default_rng(17)
    params = ConstructionParams.pure(2.0, beta=0.1, noiseless=True, threshold=1.0)
    return build_private_counting_structure(
        StringDatabase(["abab", "abba", "baba", "bbbb", "aabb"]), params, rng=rng
    )


@pytest.fixture
def service(structure):
    service = QueryService({"demo": structure}, micro_batch=False)
    yield service
    service.close()


class TestServiceMetrics:
    def test_request_counters_live_in_the_registry(self, service):
        service.query("ab")
        service.query("ba")
        service.batch(["ab", "bb", "zz"])
        service.mine(1.0)
        registry = service.metrics
        assert registry.get(
            "dpsc_requests_total", {"endpoint": "query"}
        ).value == 2
        assert registry.get(
            "dpsc_requests_total", {"endpoint": "batch"}
        ).value == 1
        assert registry.get("dpsc_batch_patterns_total").value == 3
        assert registry.get(
            "dpsc_requests_total", {"endpoint": "mine"}
        ).value == 1

    def test_health_reads_the_same_counters(self, service):
        service.query("ab")
        service.batch(["ab", "bb"])
        payload = service.health()
        assert payload["queries"] == service.num_queries == 1
        assert payload["batches"] == service.num_batches == 1
        assert payload["batch_patterns"] == service.num_batch_patterns == 2
        assert payload["mines"] == service.num_mines == 0
        assert service.metrics.get(
            "dpsc_requests_total", {"endpoint": "healthz"}
        ).value == 1

    def test_latency_histograms_populate(self, service):
        for _ in range(3):
            service.query("ab")
        histogram = service.metrics.get(
            "dpsc_request_seconds", {"endpoint": "query"}
        )
        assert histogram.count == 3
        assert histogram.percentile(50.0) > 0

    def test_cache_gauges_track_compiled_trie(self, service):
        service.query("ab")
        service.query("ab")
        hits = service.metrics.get(
            "dpsc_compiled_cache_hits", {"release": "demo"}
        )
        misses = service.metrics.get(
            "dpsc_compiled_cache_misses", {"release": "demo"}
        )
        info = service.release("demo").cache_info()
        assert hits.value == info.hits
        assert misses.value == info.misses

    def test_microbatcher_metrics(self, structure):
        service = QueryService({"demo": structure}, micro_batch=True)
        try:
            for _ in range(4):
                service.query("ab")
            registry = service.metrics
            flushes = registry.get("dpsc_microbatch_flushes_total").value
            requests = registry.get("dpsc_microbatch_requests_total").value
            assert requests == 4
            assert 1 <= flushes <= 4
            assert registry.get("dpsc_microbatch_flush_size").count == flushes
            payload = service.health()
            assert payload["micro_batches_flushed"] == flushes
            assert payload["micro_batched_requests"] == 4
        finally:
            service.close()


class TestMetricsEndpoint:
    @pytest.fixture
    def server(self, service):
        server = create_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}", service
        server.shutdown()
        server.server_close()

    def test_scrape_is_valid_prometheus_text(self, server):
        url, service = server
        client = ServingClient(url)
        client.query("ab")
        client.batch(["ab", "bb"])
        text = client.metrics()
        assert validate_exposition(text) > 0
        assert 'dpsc_requests_total{endpoint="query"} 1.0' in text
        assert "dpsc_request_seconds_bucket" in text

    def test_json_snapshot_round_trips(self, server):
        url, service = server
        client = ServingClient(url)
        client.query("ab")
        snapshot = client.metrics_snapshot()
        series = snapshot["dpsc_requests_total"]["series"]
        by_endpoint = {
            entry["labels"]["endpoint"]: entry["value"] for entry in series
        }
        assert by_endpoint["query"] == 1
        latency = snapshot["dpsc_request_seconds"]["series"]
        query_latency = next(
            entry for entry in latency if entry["labels"]["endpoint"] == "query"
        )
        assert query_latency["value"]["count"] == 1
        assert query_latency["value"]["buckets"][-1][0] == "+Inf"

    def test_scrapes_do_not_count_as_requests(self, server):
        url, service = server
        client = ServingClient(url)
        before = {
            endpoint: service.metrics.get(
                "dpsc_requests_total", {"endpoint": endpoint}
            ).value
            for endpoint in ("query", "batch", "mine", "healthz")
        }
        client.metrics()
        client.metrics_snapshot()
        after = {
            endpoint: service.metrics.get(
                "dpsc_requests_total", {"endpoint": endpoint}
            ).value
            for endpoint in ("query", "batch", "mine", "healthz")
        }
        assert before == after
