"""Tests for the query service, micro-batcher, HTTP server and client."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.construction import build_private_counting_structure
from repro.core.params import ConstructionParams
from repro.exceptions import ReleaseNotFoundError, ReproError
from repro.serving import (
    CompiledTrie,
    QueryService,
    ReleaseStore,
    ServingClient,
    ServingClientError,
    create_server,
)


@pytest.fixture(scope="module")
def structures():
    """Two small released structures acting as distinct releases."""
    from repro.core.database import StringDatabase

    rng = np.random.default_rng(3)
    params = ConstructionParams.pure(2.0, beta=0.1, noiseless=True, threshold=1.0)
    first = build_private_counting_structure(
        StringDatabase(["abab", "abba", "baba", "bbbb", "aabb"]), params, rng=rng
    )
    second = build_private_counting_structure(
        StringDatabase(["aaaa", "abe", "absab", "babe", "bee", "bees"]), params, rng=rng
    )
    return {"first": first, "second": second}


@pytest.fixture
def service(structures):
    service = QueryService(structures, default_release="first", micro_batch=False)
    yield service
    service.close()


class TestQueryService:
    def test_query_routes_to_default_release(self, service, structures):
        assert service.query("ab") == structures["first"].query("ab")

    def test_per_release_routing(self, service, structures):
        assert service.query("bee", release="second") == structures["second"].query(
            "bee"
        )
        assert service.query("bee", release="first") == structures["first"].query(
            "bee"
        )

    def test_batch_matches_structure(self, service, structures):
        probes = ["ab", "ba", "bb", "zz", "", "abab"]
        counts = service.batch(probes, release="first")
        assert counts == [structures["first"].query(p) for p in probes]

    def test_mine_matches_structure(self, service, structures):
        assert service.mine(1.0, release="second") == structures["second"].mine(1.0)

    def test_unknown_release_raises(self, service):
        with pytest.raises(ReleaseNotFoundError):
            service.query("ab", release="nope")

    def test_empty_service_rejected(self):
        with pytest.raises(ReproError):
            QueryService({})

    def test_unknown_default_rejected(self, structures):
        with pytest.raises(ReleaseNotFoundError):
            QueryService(structures, default_release="nope")

    def test_health_counters(self, service):
        before = service.health()["queries"]
        service.query("ab")
        service.batch(["ab", "ba"])
        service.mine(1.0)
        health = service.health()
        assert health["status"] == "ok"
        assert health["queries"] == before + 1
        assert health["batches"] >= 1
        assert health["batch_patterns"] >= 2
        assert health["mines"] >= 1
        assert set(health["releases"]) == {"first", "second"}

    def test_releases_info(self, service):
        infos = service.releases_info()
        assert [info["name"] for info in infos] == ["first", "second"]
        assert infos[0]["default"] is True
        assert all(info["num_patterns"] > 0 for info in infos)

    def test_accepts_precompiled_releases(self, structures):
        compiled = CompiledTrie.from_structure(structures["first"])
        service = QueryService({"first": compiled}, micro_batch=False)
        assert service.query("ab") == structures["first"].query("ab")
        service.close()


class TestMicroBatcher:
    def test_concurrent_queries_answer_correctly(self, structures):
        service = QueryService(structures, micro_batch=True, max_wait=0.001)
        try:
            probes = ["ab", "ba", "bb", "zz", "abab", "bee"] * 8
            results: dict[int, float] = {}

            def worker(index: int, pattern: str) -> None:
                results[index] = service.query(pattern)

            threads = [
                threading.Thread(target=worker, args=(i, p))
                for i, p in enumerate(probes)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            expected = {
                i: structures["first"].query(p) for i, p in enumerate(probes)
            }
            assert results == expected
            health = service.health()
            assert health["micro_batched_requests"] == len(probes)
            assert 1 <= health["micro_batches_flushed"] <= len(probes)
        finally:
            service.close()

    def test_sequential_queries_hit_the_lru_cache(self, structures):
        # Singleton flushes take the cached single-query path, so hot
        # patterns benefit from the LRU even with micro-batching enabled.
        service = QueryService(structures, micro_batch=True)
        try:
            expected = structures["first"].query("ab")
            for _ in range(5):
                assert service.query("ab") == expected
            assert service.release("first").cache_info().hits > 0
        finally:
            service.close()

    def test_submit_after_close_raises(self, structures):
        service = QueryService(structures, micro_batch=True)
        batcher = service._batcher
        service.close()
        with pytest.raises(ReproError):
            batcher.submit("ab", "first")

    def test_flushes_do_not_count_as_batch_traffic(self, structures):
        # A micro-batched flush of coalesced single queries must not bump
        # num_batches/num_batch_patterns: /healthz would misreport single
        # -query traffic as /batch traffic.
        service = QueryService(structures, micro_batch=True, max_wait=0.001)
        try:
            probes = ["ab", "ba", "bb", "zz", "abab", "bee"] * 8
            threads = [
                threading.Thread(target=service.query, args=(p,)) for p in probes
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            health = service.health()
            assert health["queries"] == len(probes)
            assert health["batches"] == 0
            assert health["batch_patterns"] == 0
            assert health["micro_batched_requests"] == len(probes)
            # An actual /batch request still counts as one.
            service.batch(["ab", "ba"])
            health = service.health()
            assert health["batches"] == 1
            assert health["batch_patterns"] == 2
        finally:
            service.close()


@pytest.fixture(scope="module")
def http_client(structures):
    service = QueryService(structures, default_release="first", max_wait=0.001)
    server = create_server(service, port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield ServingClient(f"http://{host}:{port}"), structures
    server.shutdown()
    server.server_close()
    service.close()


class TestHTTPEndToEnd:
    def test_query(self, http_client):
        client, structures = http_client
        assert client.query("ab") == structures["first"].query("ab")
        assert client.query("bee", release="second") == structures["second"].query(
            "bee"
        )

    def test_batch_parity(self, http_client):
        client, structures = http_client
        probes = ["ab", "ba", "zz", "", "abab", "a?b"]
        assert client.batch(probes) == [structures["first"].query(p) for p in probes]

    def test_mine_parity(self, http_client):
        client, structures = http_client
        assert client.mine(1.0, release="second") == structures["second"].mine(1.0)
        assert client.mine(1.0, exact_length=2) == structures["first"].mine(
            1.0, exact_length=2
        )

    def test_releases_and_health(self, http_client):
        client, _ = http_client
        names = [info["name"] for info in client.releases()]
        assert names == ["first", "second"]
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0

    def test_unknown_release_is_404(self, http_client):
        client, _ = http_client
        with pytest.raises(ServingClientError) as excinfo:
            client.query("ab", release="nope")
        assert excinfo.value.status == 404

    def test_unknown_path_is_404(self, http_client):
        client, _ = http_client
        with pytest.raises(ServingClientError) as excinfo:
            client._request("/nope", {})
        assert excinfo.value.status == 404
        with pytest.raises(ServingClientError):
            client._request("/nope")

    def test_malformed_requests_are_400(self, http_client):
        client, _ = http_client
        with pytest.raises(ServingClientError) as excinfo:
            client._request("/query", {"pattern": 7})
        assert excinfo.value.status == 400
        with pytest.raises(ServingClientError):
            client._request("/batch", {"patterns": "not-a-list"})
        with pytest.raises(ServingClientError):
            client._request("/mine", {"threshold": "high"})

    def test_non_object_json_bodies_are_json_400(self, http_client):
        # Valid JSON that is not an object must be a JSON 400, not an
        # unhandled AttributeError that drops the connection.
        client, _ = http_client
        for body in ([1, 2, 3], "abc", 42, True):
            with pytest.raises(ServingClientError) as excinfo:
                client._request("/query", body)
            assert excinfo.value.status == 400, body

    def test_malformed_mine_lengths_are_json_400(self, http_client):
        # A string max_length (or any non-integer length field) must come
        # back as a JSON 400, not escape as a raw 500.
        client, _ = http_client
        for payload in (
            {"threshold": 1.0, "max_length": "three"},
            {"threshold": 1.0, "min_length": "2"},
            {"threshold": 1.0, "min_length": 1.5},
            {"threshold": 1.0, "exact_length": [2]},
            {"threshold": 1.0, "exact_length": True},
            {"threshold": True},
        ):
            with pytest.raises(ServingClientError) as excinfo:
                client._request("/mine", payload)
            assert excinfo.value.status == 400, payload
            assert excinfo.value.args[0], payload  # JSON error message

    def test_mine_accepts_integral_fields(self, http_client):
        client, structures = http_client
        assert client.mine(
            1.0, release="first", min_length=1, max_length=3
        ) == structures["first"].mine(1.0, min_length=1, max_length=3)

    def test_get_query_with_params(self, http_client):
        client, structures = http_client
        import json
        import urllib.request

        url = f"{client.base_url}/query?pattern=ab&release=first"
        with urllib.request.urlopen(url, timeout=10) as response:
            payload = json.loads(response.read().decode("utf-8"))
        assert payload["count"] == structures["first"].query("ab")

    def test_unreachable_server_raises(self):
        client = ServingClient("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(ServingClientError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 0


class TestFromStore:
    def test_serves_store_releases(self, tmp_path, structures):
        store = ReleaseStore(tmp_path / "store")
        store.save("first", structures["first"])
        store.save("second", structures["second"])
        service = QueryService.from_store(store, micro_batch=False)
        try:
            assert service.query("ab", release="first") == structures["first"].query(
                "ab"
            )
            assert set(info["name"] for info in service.releases_info()) == {
                "first",
                "second",
            }
        finally:
            service.close()

    def test_serves_pinned_version(self, tmp_path, structures):
        store = ReleaseStore(tmp_path / "store")
        store.save("demo", structures["first"])
        store.save("demo", structures["second"])
        store.pin("demo", 1)
        service = QueryService.from_store(store, micro_batch=False)
        try:
            assert service.query("abab") == structures["first"].query("abab")
        finally:
            service.close()

    def test_empty_store_rejected(self, tmp_path):
        store = ReleaseStore(tmp_path / "store")
        with pytest.raises(ReleaseNotFoundError):
            QueryService.from_store(store)
