"""Tests for the sharded multi-process serving tier (repro.serving.cluster).

Everything here spawns real worker processes, so this module runs in its
own CI job with a hard timeout (like ``test_concurrency.py``) instead of
inside the tier-1 matrix.  The properties under test are the tier's
acceptance contract:

* every endpoint answers **bit-identically** to the single-process server,
  including sharded-and-reassembled uniform batches;
* the router's ``/healthz`` counters advance by exactly the traffic sent,
  and its merged ``/metrics`` passes the exposition validator with gauges
  per-worker-labelled (never summed);
* a worker ``kill -9``'d mid-batch costs nothing: the router retries on a
  live sibling and the supervisor respawns the dead one;
* killing the router process leaves **no orphan workers**;
* hot reload swaps worker generations without dropping a request.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.core.construction import build_private_counting_structure
from repro.core.params import ConstructionParams
from repro.obs import validate_exposition
from repro.serving import (
    Cluster,
    QueryService,
    ReleaseStore,
    ServingClient,
    generate_workload,
    run_load_test_processes,
)
from repro.serving.cluster import shard_of

UNIFORM = ["ab", "ba", "bb", "aa", "ba"] * 4  # one length -> split-eligible
MIXED = ["ab", "aba", "b", "abab", "", "zz"]  # mixed lengths -> passthrough


@pytest.fixture(scope="module")
def structure():
    from repro.core.database import StringDatabase

    rng = np.random.default_rng(3)
    params = ConstructionParams.pure(2.0, beta=0.1, noiseless=True, threshold=1.0)
    return build_private_counting_structure(
        StringDatabase(["abab", "abba", "baba", "bbbb", "aabb"]), params, rng=rng
    )


@pytest.fixture(scope="module")
def store(structure, tmp_path_factory):
    store = ReleaseStore(tmp_path_factory.mktemp("cluster-store"))
    store.save("demo", structure)
    return store


@pytest.fixture(scope="module")
def reference(store):
    """Serial single-process answers every cluster response must equal."""
    service = QueryService.from_store(store, micro_batch=False)
    yield service
    service.close()


@pytest.fixture(scope="module")
def cluster(store):
    with Cluster(store, workers=2, split_min_patterns=8) as cluster:
        yield cluster


@pytest.fixture(scope="module")
def client(cluster):
    return ServingClient(cluster.url)


class TestShardOf:
    def test_stable_and_in_range(self):
        assignment = [shard_of(index, 4) for index in range(64)]
        assert assignment == [shard_of(index, 4) for index in range(64)]
        assert set(assignment) <= set(range(4))

    def test_spreads_over_shards(self):
        used = {shard_of(index, 4) for index in range(64)}
        assert used == set(range(4))


class TestParity:
    def test_query(self, client, reference):
        for pattern in ("ab", "ba", "zz", "", "abab"):
            assert client.query(pattern) == reference.query(pattern)

    def test_split_batch_bit_identical(self, client, reference, cluster):
        before = client.healthz()["split_batches"]
        assert client.batch(UNIFORM) == reference.batch(UNIFORM)
        assert client.healthz()["split_batches"] > before  # split path engaged

    def test_passthrough_batch_bit_identical(self, client, reference):
        assert client.batch(MIXED) == reference.batch(MIXED)

    def test_small_batch_not_split(self, client, reference):
        before = client.healthz()["split_batches"]
        assert client.batch(["ab", "ba"]) == reference.batch(["ab", "ba"])
        assert client.healthz()["split_batches"] == before

    def test_mine(self, client, reference):
        assert client.mine(1.0) == reference.mine(1.0)

    def test_releases(self, client, reference):
        via_router = client.releases()
        serial = reference.releases_info()
        # compiled_bytes counts the result cache too, so it tracks each
        # process's traffic history — compare everything else exactly.
        for info in via_router + serial:
            assert info.pop("compiled_bytes") > 0
        assert via_router == serial

    def test_raw_response_bytes_identical(self, cluster, store):
        service = QueryService.from_store(store, micro_batch=False)
        from repro.serving import create_server

        server = create_server(service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            body = json.dumps({"patterns": UNIFORM}).encode("utf-8")

            def raw(url):
                request = urllib.request.Request(
                    f"{url}/batch",
                    data=body,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=30) as response:
                    return response.read()

            single = raw(f"http://127.0.0.1:{server.server_address[1]}")
            assert raw(cluster.url) == single
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestHealthAndMetrics:
    def test_healthz_shape(self, client, cluster):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["role"] == "router"
        workers = health["workers"]
        assert workers["alive"] == 2
        assert workers["generation"] == cluster.generation
        assert len(workers["members"]) == 2

    def test_router_edge_counter_deltas(self, client):
        before = client.healthz()
        for pattern in ("ab", "ba", "bb"):
            client.query(pattern)
        client.batch(MIXED)
        client.mine(1.0)
        after = client.healthz()
        assert after["queries"] - before["queries"] == 3
        assert after["batches"] - before["batches"] == 1
        assert after["batch_patterns"] - before["batch_patterns"] == len(MIXED)
        assert after["mines"] - before["mines"] == 1

    def test_merged_metrics_validate(self, client):
        client.query("ab")  # ensure traffic on both tiers
        text = client.metrics()
        assert validate_exposition(text) > 0
        assert "dpsc_router_requests_total" in text

    def test_gauges_per_worker_never_summed(self, client):
        snapshot = client.metrics_snapshot()
        uptime = snapshot["dpsc_uptime_seconds"]
        assert uptime["kind"] == "gauge"
        workers = {entry["labels"].get("worker") for entry in uptime["series"]}
        assert len(workers) == 2 and None not in workers


class TestWorkerCrash:
    def test_kill9_mid_batch_is_invisible_and_respawned(self, store, reference):
        expected = reference.batch(UNIFORM)
        with Cluster(
            store, workers=2, split_min_patterns=8, heartbeat_interval=0.1
        ) as cluster:
            client = ServingClient(cluster.url, timeout=60)
            mismatches: list[int] = []
            errors: list[str] = []

            def hammer():
                for round_index in range(40):
                    try:
                        if client.batch(UNIFORM) != expected:
                            mismatches.append(round_index)
                    except Exception as error:  # noqa: BLE001
                        errors.append(repr(error))

            thread = threading.Thread(target=hammer)
            thread.start()
            time.sleep(0.05)
            cluster.workers()[0].kill()  # SIGKILL mid-stream
            thread.join(timeout=120)
            assert not thread.is_alive()
            assert errors == []
            assert mismatches == []
            deadline = time.monotonic() + 30
            while cluster.respawns < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert cluster.respawns >= 1
            deadline = time.monotonic() + 30
            while len(cluster.table.live()) < 2 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert len(cluster.table.live()) == 2
            # The tier still answers bit-identically after the respawn.
            assert client.batch(UNIFORM) == expected


_HOST_SCRIPT = """\
import json, sys, time
from repro.serving import Cluster, ReleaseStore

# The __main__ guard is load-bearing: spawn workers re-import this module.
if __name__ == "__main__":
    cluster = Cluster(ReleaseStore(sys.argv[1]), workers=2)
    cluster.start()
    print(json.dumps([worker.pid for worker in cluster.workers()]), flush=True)
    while True:
        time.sleep(1)
"""


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover
        return True
    return True


class TestOrphanPrevention:
    def test_sigkilled_router_leaves_no_orphan_workers(self, store, tmp_path):
        script = tmp_path / "host_cluster.py"
        script.write_text(_HOST_SCRIPT)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        process = subprocess.Popen(
            [sys.executable, str(script), str(store.root)],
            stdout=subprocess.PIPE,
            env=env,
        )
        try:
            line = process.stdout.readline()
            pids = json.loads(line)
            assert len(pids) == 2 and all(_pid_alive(pid) for pid in pids)
            os.kill(process.pid, signal.SIGKILL)  # no chance to clean up
            process.wait(timeout=10)
            deadline = time.monotonic() + 15
            while any(_pid_alive(pid) for pid in pids):
                assert time.monotonic() < deadline, f"orphans: {pids}"
                time.sleep(0.1)
        finally:
            if process.poll() is None:  # pragma: no cover - drill failed
                process.kill()
            process.stdout.close()


class TestHotReload:
    def test_reload_swaps_generation_without_dropping_requests(
        self, structure, tmp_path
    ):
        store = ReleaseStore(tmp_path / "store")
        store.save("demo", structure)
        with Cluster(store, workers=2, split_min_patterns=8) as cluster:
            client = ServingClient(cluster.url, timeout=60)
            expected = client.batch(UNIFORM)
            stop = threading.Event()
            errors: list[str] = []
            mismatches = 0

            def hammer():
                nonlocal mismatches
                while not stop.is_set():
                    try:
                        if client.batch(UNIFORM) != expected:
                            mismatches += 1
                    except Exception as error:  # noqa: BLE001
                        errors.append(repr(error))

            thread = threading.Thread(target=hammer)
            thread.start()
            try:
                # Same payload saved again -> new version, identical answers,
                # so bit-checks stay valid across the swap.
                store.save("demo", structure)
                summary = cluster.reload()
            finally:
                stop.set()
                thread.join(timeout=60)
            assert summary["reloaded"] is True
            assert summary["generation"] == 2
            assert errors == []
            assert mismatches == 0
            assert cluster.generation == 2
            assert client.healthz()["workers"]["generation"] == 2

    def test_reload_is_noop_when_versions_unchanged(self, cluster):
        summary = cluster.reload()
        assert summary["reloaded"] is False
        assert summary["generation"] == cluster.generation


class TestShutdown:
    def test_stop_kills_workers_and_is_idempotent(self, store):
        cluster = Cluster(store, workers=2)
        cluster.start()
        pids = [worker.pid for worker in cluster.workers()]
        cluster.stop()
        deadline = time.monotonic() + 15
        while any(_pid_alive(pid) for pid in pids):
            assert time.monotonic() < deadline, "workers survived stop()"
            time.sleep(0.05)
        cluster.stop()  # second stop must be a no-op


class TestProcessLoadtest:
    def test_multi_process_clients_bit_identical_with_counters(
        self, cluster, reference
    ):
        workload = generate_workload(reference, 60, seed=11)
        result = run_load_test_processes(
            cluster.url, workload, processes=2, check=True, verify_counters=True
        )
        assert result.bit_identical
        assert result.counters_consistent
        assert result.processes == 2
        assert result.operations == 60
