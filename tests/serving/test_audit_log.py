"""Budget audit-log tests: every charge/refusal/release leaves a record,
and the JSONL trail survives kills mid-append.

The trail is append-only through ``_fsio.append_jsonl`` (O_APPEND + fsync
+ torn-line recovery); these tests drive both the ledger-level semantics
and the file-level crash behavior, reusing the simulated-kill style of
``test_concurrency.py``."""

from __future__ import annotations

import json
import os
import threading

import pytest

import repro.serving._fsio as fsio
from repro.dp.composition import PrivacyBudget
from repro.exceptions import BudgetExceededError
from repro.serving import BudgetLedger


@pytest.fixture
def ledger(tmp_path):
    return BudgetLedger(PrivacyBudget(4.0, 1e-5), path=tmp_path / "ledger.json")


class TestAuditSemantics:
    def test_default_audit_path_sits_next_to_the_ledger(self, ledger, tmp_path):
        assert ledger.audit_path == tmp_path / "ledger.audit.jsonl"

    def test_in_memory_ledger_has_no_trail(self):
        ledger = BudgetLedger(PrivacyBudget(1.0, 0.0))
        ledger.charge("db", PrivacyBudget(0.5, 0.0))
        assert ledger.audit_path is None
        assert ledger.audit_entries() == []

    def test_every_charge_is_recorded_with_running_totals(self, ledger):
        ledger.charge("db", PrivacyBudget(1.0, 1e-6), "first")
        ledger.charge("db", PrivacyBudget(2.0, 1e-6), "second")
        entries = ledger.audit_entries()
        assert [e["event"] for e in entries] == ["charge", "charge"]
        assert [e["label"] for e in entries] == ["first", "second"]
        assert entries[0]["epsilon"] == 1.0
        assert entries[0]["spent_epsilon"] == 1.0
        assert entries[1]["spent_epsilon"] == 3.0
        for entry in entries:
            assert entry["pid"] == os.getpid()
            assert entry["ts"] > 0
            assert entry["database_id"] == "db"
            assert entry["cap_epsilon"] == 4.0

    def test_refusals_are_recorded_before_the_raise(self, ledger):
        ledger.charge("db", PrivacyBudget(3.0, 1e-6))
        with pytest.raises(BudgetExceededError):
            ledger.charge("db", PrivacyBudget(3.0, 1e-6), "greedy")
        entries = ledger.audit_entries()
        assert entries[-1]["event"] == "refusal"
        assert entries[-1]["label"] == "greedy"
        assert entries[-1]["epsilon"] == 3.0
        # The refused budget was not spent.
        assert entries[-1]["spent_epsilon"] == 3.0
        assert ledger.spent("db").epsilon == 3.0

    def test_record_release_links_version_and_digest(self, ledger):
        ledger.charge("db", PrivacyBudget(1.0, 1e-6))
        ledger.record_release("db", version=7, digest="cafe1234")
        release = ledger.audit_entries("db")[-1]
        assert release["event"] == "release"
        assert release["version"] == 7
        assert release["digest"] == "cafe1234"

    def test_entries_filter_by_database(self, ledger):
        ledger.charge("alpha", PrivacyBudget(1.0, 1e-6))
        ledger.charge("beta", PrivacyBudget(1.0, 1e-6))
        assert len(ledger.audit_entries()) == 2
        assert [e["database_id"] for e in ledger.audit_entries("beta")] == ["beta"]

    def test_concurrent_charges_all_leave_records(self, ledger):
        barrier = threading.Barrier(8)

        def charge(index: int) -> None:
            barrier.wait()
            ledger.charge("db", PrivacyBudget(0.25, 1e-7), f"thread-{index}")

        pool = [threading.Thread(target=charge, args=(i,)) for i in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        entries = ledger.audit_entries()
        assert len(entries) == 8
        assert sorted(e["label"] for e in entries) == sorted(
            f"thread-{i}" for i in range(8)
        )
        # The final running total is exact regardless of interleaving.
        assert max(e["spent_epsilon"] for e in entries) == pytest.approx(2.0)


class TestCrashSafety:
    def test_torn_final_line_is_skipped_and_repaired(self, ledger):
        ledger.charge("db", PrivacyBudget(1.0, 1e-6), "before-kill")
        # A kill mid-append leaves a partial record with no newline.
        with open(ledger.audit_path, "ab") as handle:
            handle.write(b'{"ts":123,"event":"char')
        entries = ledger.audit_entries()
        assert [e["label"] for e in entries] == ["before-kill"]
        # The next append must start on a fresh line, not extend the wreck.
        ledger.charge("db", PrivacyBudget(0.5, 1e-6), "after-kill")
        entries = ledger.audit_entries()
        assert [e["label"] for e in entries] == ["before-kill", "after-kill"]

    def test_kill_during_the_write_call_is_recoverable(self, ledger, monkeypatch):
        ledger.charge("db", PrivacyBudget(1.0, 1e-6), "survivor")
        real_write = os.write

        def dying_write(fd: int, data: bytes) -> int:
            # Flush half the bytes, then die — the torn tail a SIGKILL
            # between write syscalls would leave.
            real_write(fd, data[: len(data) // 2])
            raise OSError("simulated kill during audit append")

        monkeypatch.setattr(fsio.os, "write", dying_write)
        with pytest.raises(OSError, match="simulated kill"):
            ledger.charge("db", PrivacyBudget(0.5, 1e-6), "torn")
        monkeypatch.setattr(fsio.os, "write", real_write)
        # The surviving prefix still reads; the torn record is dropped.
        reopened = BudgetLedger(
            PrivacyBudget(4.0, 1e-5), path=ledger.audit_path.parent / "ledger.json"
        )
        labels = [e["label"] for e in reopened.audit_entries()]
        assert labels == ["survivor"]
        # And appending afterwards recovers onto a fresh line.
        reopened.charge("db", PrivacyBudget(0.25, 1e-6), "recovered")
        labels = [e["label"] for e in reopened.audit_entries()]
        assert labels == ["survivor", "recovered"]

    def test_audit_line_is_one_valid_json_object(self, ledger):
        ledger.charge("db", PrivacyBudget(1.0, 1e-6))
        raw_lines = ledger.audit_path.read_text().splitlines()
        assert len(raw_lines) == 1
        record = json.loads(raw_lines[0])
        assert record["event"] == "charge"


class TestFsioJsonl:
    def test_read_missing_file_is_empty(self, tmp_path):
        assert fsio.read_jsonl(tmp_path / "nope.jsonl") == []

    def test_reader_skips_malformed_and_non_object_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"a":1}\nnot json\n[1,2]\n\n{"b":2}\n')
        assert fsio.read_jsonl(path) == [{"a": 1}, {"b": 2}]

    def test_append_creates_and_appends(self, tmp_path):
        path = tmp_path / "log.jsonl"
        fsio.append_jsonl(path, {"first": 1})
        fsio.append_jsonl(path, {"second": 2})
        assert fsio.read_jsonl(path) == [{"first": 1}, {"second": 2}]
        assert path.read_text().endswith("\n")
