"""Tests for the versioned release store."""

from __future__ import annotations

import pytest

from repro.core.private_trie import PrivateCountingTrie, StructureMetadata
from repro.exceptions import ReleaseNotFoundError, ReproError
from repro.serving import ReleaseStore
from repro.strings.trie import Trie


def make_structure(counts: dict[str, float], epsilon: float = 1.0) -> PrivateCountingTrie:
    trie = Trie()
    for pattern, count in counts.items():
        node = trie.insert(pattern)
        node.noisy_count = count
    metadata = StructureMetadata(
        epsilon=epsilon,
        delta=0.0,
        beta=0.1,
        delta_cap=5,
        max_length=8,
        num_documents=10,
        alphabet_size=3,
        error_bound=2.0,
        threshold=4.0,
        construction="unit-test",
    )
    return PrivateCountingTrie(trie=trie, metadata=metadata, report={"k": 1})


@pytest.fixture
def store(tmp_path) -> ReleaseStore:
    return ReleaseStore(tmp_path / "store")


class TestSaveLoad:
    def test_roundtrip(self, store):
        structure = make_structure({"ab": 4.0, "ba": 2.5})
        record = store.save("demo", structure)
        assert record.name == "demo"
        assert record.version == 1
        assert record.num_patterns == 2
        assert record.digest == structure.content_digest()
        loaded = store.load("demo")
        assert dict(loaded.items()) == dict(structure.items())
        assert loaded.metadata == structure.metadata
        assert loaded.report == structure.report

    def test_versions_increment(self, store):
        store.save("demo", make_structure({"a": 1.0}))
        store.save("demo", make_structure({"a": 2.0}))
        record = store.save("demo", make_structure({"a": 3.0}))
        assert record.version == 3
        assert store.versions("demo") == [1, 2, 3]
        assert store.load("demo").query("a") == 3.0
        assert store.load("demo", version=1).query("a") == 1.0

    def test_multiple_names(self, store):
        store.save("one", make_structure({"a": 1.0}))
        store.save("two", make_structure({"b": 2.0}))
        assert store.names() == ["one", "two"]
        records = store.list_releases()
        assert [(r.name, r.version) for r in records] == [("one", 1), ("two", 1)]

    def test_invalid_names_rejected(self, store):
        for name in ("", "a/b", ".hidden"):
            with pytest.raises(ReproError):
                store.save(name, make_structure({"a": 1.0}))

    def test_unknown_release_raises(self, store):
        with pytest.raises(ReleaseNotFoundError):
            store.load("missing")
        with pytest.raises(ReleaseNotFoundError):
            store.versions("missing")

    def test_unknown_version_raises(self, store):
        store.save("demo", make_structure({"a": 1.0}))
        with pytest.raises(ReleaseNotFoundError):
            store.load("demo", version=9)


class TestPinning:
    def test_pin_selects_default_version(self, store):
        store.save("demo", make_structure({"a": 1.0}))
        store.save("demo", make_structure({"a": 2.0}))
        assert store.resolve_version("demo") == 2
        store.pin("demo", 1)
        assert store.resolve_version("demo") == 1
        assert store.load("demo").query("a") == 1.0
        # An explicit version still beats the pin.
        assert store.load("demo", version=2).query("a") == 2.0

    def test_unpin_restores_latest(self, store):
        store.save("demo", make_structure({"a": 1.0}))
        store.save("demo", make_structure({"a": 2.0}))
        store.pin("demo", 1)
        store.unpin("demo")
        assert store.resolve_version("demo") == 2

    def test_pin_unknown_version_raises(self, store):
        store.save("demo", make_structure({"a": 1.0}))
        with pytest.raises(ReleaseNotFoundError):
            store.pin("demo", 7)

    def test_pin_flag_in_records(self, store):
        store.save("demo", make_structure({"a": 1.0}))
        store.save("demo", make_structure({"a": 2.0}))
        store.pin("demo", 1)
        pinned = {r.version: r.pinned for r in store.list_releases()}
        assert pinned == {1: True, 2: False}


class TestDurability:
    def test_index_survives_reopen(self, store, tmp_path):
        store.save("demo", make_structure({"a": 1.0}))
        store.save("demo", make_structure({"a": 2.0}))
        store.pin("demo", 1)
        reopened = ReleaseStore(store.root)
        assert reopened.versions("demo") == [1, 2]
        assert reopened.resolve_version("demo") == 1
        assert reopened.load("demo").query("a") == 1.0

    @pytest.mark.parametrize("payload_format", ["json", "binary"])
    def test_tampered_file_fails_digest_check(self, store, payload_format):
        structure = make_structure({"ab": 4.0})
        record = store.save("demo", structure, format=payload_format)
        from pathlib import Path

        path = Path(record.path)
        if payload_format == "json":
            path.write_text(path.read_text().replace("4.0", "9.0"))
        else:
            raw = bytearray(path.read_bytes())
            raw[-20] ^= 0x01  # single bit flip near the end of the blob
            path.write_bytes(bytes(raw))
        with pytest.raises(ReproError, match="digest|checksum"):
            store.load("demo")

    def test_describe_is_json_friendly(self, store):
        import json

        store.save("demo", make_structure({"a": 1.0}))
        payload = json.dumps(store.describe())
        assert "demo" in payload
