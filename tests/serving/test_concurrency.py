"""Deterministic concurrency and durability stress tests for the serving
stack.

These tests are the falsifiers for the guarantees documented in the
"Concurrency & durability" section of ``docs/SERVING.md``:

* the compiled trie's LRU and uniform-batch caches survive barrier-started
  thread storms with exact counters and bit-identical answers (the
  ``TestLRUCacheUnderContention`` stress is a deterministic reproducer of
  the pre-fix race: with the cache locks removed, ``OrderedDict.get`` →
  ``move_to_end`` interleaves with another thread's ``popitem`` and raises
  ``KeyError`` within a few thousand iterations under a tight GIL switch
  interval);
* a mixed /query /batch /mine /healthz storm is bit-identical to a serial
  replay with consistent health counters (the acceptance criterion:
  >= 8 threads x >= 2k operations);
* ledger and store writes are atomic — a simulated kill mid-write leaves
  ``ledger.json`` and ``index.json`` loadable with their pre-write
  contents — and two curator handles on the same files cannot double-spend
  budget or clobber each other's index entries.

Everything is seeded and barrier-started: no sleeps, no timing assumptions.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

import repro.serving._fsio as fsio
from repro.core.construction import build_private_counting_structure
from repro.core.database import StringDatabase
from repro.core.params import ConstructionParams
from repro.dp.composition import PrivacyBudget
from repro.exceptions import BudgetExceededError
from repro.serving import (
    BudgetLedger,
    CompiledTrie,
    QueryService,
    ReleaseStore,
    generate_workload,
    run_load_test,
)
from repro.serving.loadtest import execute_operation, expected_counter_deltas


@pytest.fixture(scope="module")
def structure():
    """One deterministic (noiseless) released structure."""
    rng = np.random.default_rng(5)
    params = ConstructionParams.pure(2.0, beta=0.1, noiseless=True, threshold=1.0)
    return build_private_counting_structure(
        StringDatabase(["abab", "abba", "baba", "bbbb", "aabb", "abel", "bela"]),
        params,
        rng=rng,
    )


@pytest.fixture
def tight_gil():
    """Shrink the GIL switch interval so racy interleavings are forced to
    happen within a few thousand iterations instead of a few billion."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(previous)


def _run_threads(workers) -> list[str]:
    """Barrier-start ``workers``; collect exceptions instead of dying."""
    errors: list[str] = []
    errors_lock = threading.Lock()
    barrier = threading.Barrier(len(workers))

    def guard(run):
        barrier.wait()
        try:
            run()
        except Exception as error:  # noqa: BLE001 - the assertion target
            with errors_lock:
                errors.append(repr(error))

    threads = [threading.Thread(target=guard, args=(run,)) for run in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


class TestLRUCacheUnderContention:
    def test_hot_pattern_vs_churn_storm(self, structure, tight_gil):
        """Pre-fix reproducer: 4 threads hammer one hot pattern (hits that
        ``move_to_end``) while 5 churn threads evict it (``popitem``), on a
        size-1 cache.  Unsynchronized, ``move_to_end`` raises ``KeyError``
        within a few thousand iterations; the fixed cache must answer every
        query correctly with zero errors."""
        compiled = CompiledTrie.from_structure(structure, cache_size=1)
        stored = sorted(pattern for pattern, _ in structure.items())
        hot, churn = stored[0], stored[1:5]
        expected_hot = structure.query(hot)
        expected_churn = [structure.query(p) for p in churn]
        iterations = 30_000

        def hot_worker():
            for _ in range(iterations):
                assert compiled.query(hot) == expected_hot

        def churn_worker(offset: int):
            def run():
                for i in range(iterations):
                    pattern = (offset + i) % len(churn)
                    assert compiled.query(churn[pattern]) == expected_churn[pattern]

            return run

        errors = _run_threads(
            [hot_worker] * 4 + [churn_worker(offset) for offset in range(5)]
        )
        assert errors == []
        info = compiled.cache_info()
        # Exact, not best-effort: every query was either a hit or a miss.
        assert info.hits + info.misses == 9 * iterations
        assert info.size <= info.max_size == 1

    def test_counters_exact_across_threads(self, structure, tight_gil):
        compiled = CompiledTrie.from_structure(structure, cache_size=64)
        stored = sorted(pattern for pattern, _ in structure.items())
        per_thread = 5_000

        def worker(offset: int):
            def run():
                for i in range(per_thread):
                    compiled.query(stored[(offset + i) % len(stored)])

            return run

        errors = _run_threads([worker(offset) for offset in range(8)])
        assert errors == []
        info = compiled.cache_info()
        assert info.hits + info.misses == 8 * per_thread

    def test_uniform_batch_cache_storm(self, structure, tight_gil):
        """Concurrent uniform-shape batches share (and clear) the gather
        index cache; every batch must stay bit-identical."""
        compiled = CompiledTrie.from_structure(structure, cache_size=0)
        stored = sorted(pattern for pattern, _ in structure.items())
        width = max(len(p) for p in stored)
        uniform = [p for p in stored if len(p) == width] or [stored[-1]]
        # 20 distinct (m, length) shapes: more than the 16-entry cache, so
        # threads also race the clear() path.
        batches = [
            ([uniform[0]] * (2 + m), compiled.batch_query([uniform[0]] * (2 + m)).tolist())
            for m in range(20)
        ]

        def worker(offset: int):
            def run():
                for i in range(400):
                    patterns, expected = batches[(offset + i) % len(batches)]
                    assert compiled.batch_query(patterns).tolist() == expected

            return run

        errors = _run_threads([worker(offset) for offset in range(8)])
        assert errors == []
        compiled.assert_immutable()

    def test_compiled_arrays_are_immutable_snapshots(self, structure):
        compiled = CompiledTrie.from_structure(structure)
        compiled.query("ab")
        compiled.batch_query(["ab", "ba", "ab", "ba"])
        compiled.assert_immutable()
        with pytest.raises(ValueError):
            compiled._counts[0] = 1.0
        with pytest.raises(ValueError):
            compiled._transitions[0] = 1


class TestMixedTrafficStorm:
    """The acceptance stress: >= 8 threads x >= 2k mixed operations,
    bit-identical to a serial replay, with consistent health counters."""

    @pytest.mark.parametrize("micro_batch", [True, False])
    def test_mixed_storm_bit_identical(self, structure, micro_batch):
        service = QueryService(
            {"alpha": structure, "beta": structure},
            micro_batch=micro_batch,
            max_wait=0.001,
        )
        try:
            workload = generate_workload(service, 2_048, seed=11)
            expected = [execute_operation(service, operation) for operation in workload]
            result = run_load_test(
                service, workload, threads=8, expected=expected, check=True
            )
            assert result.bit_identical
            assert result.counters_consistent
            assert result.operations == 2_048
        finally:
            service.close()

    def test_counter_deltas_are_exact(self, structure):
        service = QueryService({"alpha": structure}, micro_batch=True)
        try:
            workload = generate_workload(service, 512, seed=3)
            deltas = expected_counter_deltas(workload)
            before = service.health()
            run_load_test(service, workload, threads=6, verify_counters=False)
            run_load_test(service, workload, threads=6, verify_counters=False)
            after = service.health()
            for key, delta in deltas.items():
                # Four replays total: each run_load_test without `expected`
                # performs its own serial replay plus the concurrent one.
                assert after[key] - before[key] == 4 * delta, key
        finally:
            service.close()


class TestCrashSafety:
    """Kill-mid-write simulations: the previous complete file must survive."""

    def _crash_on_replace(self, monkeypatch):
        real_replace = os.replace

        def exploding_replace(src, dst):
            # Simulate the process dying mid-write: the tmp file is
            # truncated garbage and the rename never happens.
            with open(src, "w", encoding="utf-8") as handle:
                handle.write('{"trunc')
            raise OSError("simulated crash during atomic replace")

        monkeypatch.setattr(fsio.os, "replace", exploding_replace)
        return real_replace

    def test_ledger_survives_kill_mid_save(self, tmp_path, monkeypatch):
        path = tmp_path / "ledger.json"
        ledger = BudgetLedger(PrivacyBudget(10.0, 1e-5), path=path)
        ledger.charge("db", PrivacyBudget(4.0), label="v1")
        before = path.read_text()

        self._crash_on_replace(monkeypatch)
        with pytest.raises(OSError, match="simulated crash"):
            ledger.charge("db", PrivacyBudget(1.0), label="v2")
        monkeypatch.undo()

        # The accounting file still holds the complete pre-write ledger.
        assert path.read_text() == before
        reloaded = BudgetLedger(PrivacyBudget(10.0, 1e-5), path=path)
        assert reloaded.spent("db").epsilon == pytest.approx(4.0)

    def test_store_index_survives_kill_mid_save(
        self, tmp_path, structure, monkeypatch
    ):
        store = ReleaseStore(tmp_path / "store")
        store.save("demo", structure)
        index_path = tmp_path / "store" / "index.json"
        before = index_path.read_text()

        real_replace = self._crash_on_replace(monkeypatch)
        # Let the version payload write through; crash only on the index.
        def replace_payload_only(src, dst):
            if str(dst).endswith("index.json"):
                raise OSError("simulated crash during atomic replace")
            return real_replace(src, dst)

        monkeypatch.setattr(fsio.os, "replace", replace_payload_only)
        with pytest.raises(OSError, match="simulated crash"):
            store.save("demo", structure)
        monkeypatch.undo()

        assert index_path.read_text() == before
        reopened = ReleaseStore(tmp_path / "store")
        assert reopened.versions("demo") == [1]
        assert dict(reopened.load("demo").items()) == dict(structure.items())
        # The next save skips past the crash's orphan v0002 payload (payload
        # files are immutable, never overwritten) and lands on v3.
        record = reopened.save("demo", structure)
        assert record.version == 3
        assert reopened.versions("demo") == [1, 3]

    def test_ledger_keeps_accounting_when_its_file_vanishes(self, tmp_path):
        # A deleted ledger file must not wipe the in-memory accounting:
        # memory is then the only copy, and forgetting it would let the
        # curator double-spend against an empty ledger.
        path = tmp_path / "ledger.json"
        ledger = BudgetLedger(PrivacyBudget(10.0), path=path)
        ledger.charge("db", PrivacyBudget(8.0))
        path.unlink()
        with pytest.raises(BudgetExceededError):
            ledger.charge("db", PrivacyBudget(8.0))
        assert ledger.spent("db").epsilon == pytest.approx(8.0)
        # A charge that fits re-persists the full accounting.
        ledger.charge("db", PrivacyBudget(1.0))
        reloaded = BudgetLedger(PrivacyBudget(10.0), path=path)
        assert reloaded.spent("db").epsilon == pytest.approx(9.0)

    def test_store_never_overwrites_payloads_after_index_loss(
        self, tmp_path, structure
    ):
        # Losing index.json must not restart version numbering over the
        # surviving (immutable) payload files.
        root = tmp_path / "store"
        store = ReleaseStore(root)
        v1_path = Path(store.save("demo", structure).path)
        store.save("demo", structure)
        v1_payload = v1_path.read_bytes()
        (root / "index.json").unlink()
        # The live handle keeps its in-memory index: next version is 3.
        assert store.save("demo", structure).version == 3
        # A fresh handle starts from an empty index but still must not
        # clobber the existing payload files on disk (in either payload
        # format — the collision scan checks both extensions).
        fresh = ReleaseStore(root)
        record = fresh.save("demo", structure)
        assert record.version == 4
        assert v1_path.read_bytes() == v1_payload

    def test_crash_before_replace_never_pollutes_the_target(
        self, tmp_path, monkeypatch
    ):
        # Drive atomic_write_text's own crash path: die after the tmp file
        # holds the new bytes but before the rename publishes them.  The
        # target must keep its old contents and the tmp must be cleaned up.
        target = tmp_path / "data.json"
        fsio.atomic_write_json(target, {"ok": True})

        def exploding_fsync(fd):
            raise OSError("killed during fsync")

        monkeypatch.setattr(fsio.os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="killed during fsync"):
            fsio.atomic_write_json(target, {"ok": False})
        monkeypatch.undo()

        assert json.loads(target.read_text()) == {"ok": True}
        assert [p.name for p in tmp_path.iterdir()] == ["data.json"]


class TestMultiProcessCurators:
    """Two curator handles on the same files stand in for two processes:
    each maintains independent in-memory state and must coordinate purely
    through the advisory lock + stale-signature refresh."""

    def test_two_ledgers_cannot_double_spend(self, tmp_path):
        path = tmp_path / "ledger.json"
        first = BudgetLedger(PrivacyBudget(10.0), path=path)
        second = BudgetLedger(PrivacyBudget(10.0), path=path)
        first.charge("db", PrivacyBudget(6.0), label="first-curator")
        # Pre-fix, `second` still believes nothing was spent and both
        # charges pass the affordability check (6 + 6 > 10 double-spend).
        with pytest.raises(BudgetExceededError):
            second.charge("db", PrivacyBudget(6.0), label="second-curator")
        assert second.spent("db").epsilon == pytest.approx(6.0)
        second.charge("db", PrivacyBudget(4.0), label="second-curator")
        assert first.spent("db").epsilon == pytest.approx(10.0)

    def test_two_stores_cannot_clobber_the_index(self, tmp_path, structure):
        root = tmp_path / "store"
        first = ReleaseStore(root)
        second = ReleaseStore(root)
        first.save("demo", structure)
        # Pre-fix, `second` still holds the empty index it loaded at
        # construction and its save writes version 1 again, silently
        # clobbering the first curator's entry.
        record = second.save("demo", structure)
        assert record.version == 2
        assert first.versions("demo") == [1, 2]
        assert second.versions("demo") == [1, 2]
        first.save("other", structure)
        assert second.names() == ["demo", "other"]

    def test_concurrent_thread_saves_interleave_cleanly(self, tmp_path, structure):
        store = ReleaseStore(tmp_path / "store")

        def worker(name: str):
            def run():
                for _ in range(4):
                    store.save(name, structure)

            return run

        errors = _run_threads([worker(f"rel{i}") for i in range(6)])
        assert errors == []
        assert store.names() == sorted(f"rel{i}" for i in range(6))
        for name in store.names():
            assert store.versions(name) == [1, 2, 3, 4]
        # And the on-disk index agrees byte-for-byte with a fresh reopen.
        reopened = ReleaseStore(tmp_path / "store")
        assert reopened.describe() == store.describe()
