"""Tests for the cross-release privacy-budget ledger.

The acceptance-critical property: a build whose composed ``(epsilon, delta)``
would exceed the configured global cap is *refused*, and the refusal happens
before the construction ever touches the database.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ConstructionParams
from repro.dp.composition import PrivacyBudget
from repro.exceptions import BudgetExceededError
from repro.serving import BudgetLedger, build_release


class TestCharging:
    def test_charges_within_cap_accumulate(self):
        ledger = BudgetLedger(PrivacyBudget(10.0, 1e-5))
        ledger.charge("db", PrivacyBudget(4.0, 4e-6))
        ledger.charge("db", PrivacyBudget(4.0, 4e-6))
        spent = ledger.spent("db")
        assert spent.epsilon == pytest.approx(8.0)
        assert spent.delta == pytest.approx(8e-6)
        epsilon_left, delta_left = ledger.remaining("db")
        assert epsilon_left == pytest.approx(2.0)
        assert delta_left == pytest.approx(2e-6)

    def test_epsilon_overrun_refused(self):
        ledger = BudgetLedger(PrivacyBudget(10.0, 1e-5))
        ledger.charge("db", PrivacyBudget(8.0))
        with pytest.raises(BudgetExceededError) as excinfo:
            ledger.charge("db", PrivacyBudget(3.0))
        error = excinfo.value
        assert error.requested == (3.0, 0.0)
        assert error.spent == (8.0, 0.0)
        assert error.cap == (10.0, 1e-5)

    def test_delta_overrun_refused(self):
        ledger = BudgetLedger(PrivacyBudget(100.0, 1e-6))
        ledger.charge("db", PrivacyBudget(1.0, 8e-7))
        with pytest.raises(BudgetExceededError):
            ledger.charge("db", PrivacyBudget(1.0, 8e-7))

    def test_refused_charge_records_nothing(self):
        ledger = BudgetLedger(PrivacyBudget(10.0))
        ledger.charge("db", PrivacyBudget(8.0))
        with pytest.raises(BudgetExceededError):
            ledger.charge("db", PrivacyBudget(5.0))
        assert ledger.spent("db").epsilon == pytest.approx(8.0)
        # A smaller charge that fits is still accepted afterwards.
        ledger.charge("db", PrivacyBudget(2.0))
        assert ledger.spent("db").epsilon == pytest.approx(10.0)

    def test_databases_are_independent(self):
        ledger = BudgetLedger(PrivacyBudget(10.0))
        ledger.charge("first", PrivacyBudget(9.0))
        ledger.charge("second", PrivacyBudget(9.0))  # its own cap, fine
        assert ledger.database_ids() == ["first", "second"]
        assert ledger.can_afford("first", PrivacyBudget(2.0)) is False
        assert ledger.can_afford("second", PrivacyBudget(1.0)) is True

    def test_exact_cap_is_allowed(self):
        ledger = BudgetLedger(PrivacyBudget(10.0))
        ledger.charge("db", PrivacyBudget(10.0))
        assert ledger.can_afford("db", PrivacyBudget(0.1)) is False

    def test_entries_and_summary(self):
        ledger = BudgetLedger(PrivacyBudget(10.0))
        ledger.charge("db", PrivacyBudget(1.0), label="first-release")
        ledger.charge("db", PrivacyBudget(2.0), label="second-release")
        labels = [record.label for _, record in ledger.entries("db")]
        assert labels == ["first-release", "second-release"]
        assert "first-release" in ledger.summary()


class TestPersistence:
    def test_ledger_survives_reload(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = BudgetLedger(PrivacyBudget(10.0, 1e-5), path=path)
        ledger.charge("db", PrivacyBudget(6.0, 5e-6), label="v1")
        reloaded = BudgetLedger(PrivacyBudget(10.0, 1e-5), path=path)
        assert reloaded.spent("db").epsilon == pytest.approx(6.0)
        assert reloaded.spent("db").delta == pytest.approx(5e-6)
        with pytest.raises(BudgetExceededError):
            reloaded.charge("db", PrivacyBudget(6.0))

    def test_reopening_cannot_relax_a_stricter_recorded_cap(self, tmp_path):
        path = tmp_path / "ledger.json"
        strict = BudgetLedger(PrivacyBudget(10.0, 1e-6), path=path)
        strict.charge("db", PrivacyBudget(8.0), label="v1")
        # Re-open with a much looser (e.g. CLI default) cap: the persisted
        # stricter policy wins component-wise.
        reopened = BudgetLedger(PrivacyBudget(100.0, 1e-5), path=path)
        assert reopened.cap.epsilon == pytest.approx(10.0)
        assert reopened.cap.delta == pytest.approx(1e-6)
        with pytest.raises(BudgetExceededError):
            reopened.charge("db", PrivacyBudget(5.0))

    def test_reopening_with_a_stricter_cap_tightens(self, tmp_path):
        path = tmp_path / "ledger.json"
        BudgetLedger(PrivacyBudget(10.0), path=path).charge(
            "db", PrivacyBudget(4.0)
        )
        tightened = BudgetLedger(PrivacyBudget(5.0), path=path)
        assert tightened.cap.epsilon == pytest.approx(5.0)
        with pytest.raises(BudgetExceededError):
            tightened.charge("db", PrivacyBudget(2.0))

    def test_reopen_with_looser_cap_persists_the_effective_cap(self, tmp_path):
        # Regression: the file must always record the cap the ledger
        # actually enforces — the component-wise min — never the looser
        # cap a reopen happened to pass.
        import json

        path = tmp_path / "ledger.json"
        BudgetLedger(PrivacyBudget(10.0, 1e-6), path=path).charge(
            "db", PrivacyBudget(4.0), label="v1"
        )
        reopened = BudgetLedger(PrivacyBudget(100.0, 1e-4), path=path)
        assert reopened.cap == PrivacyBudget(10.0, 1e-6)
        reopened.charge("db", PrivacyBudget(1.0), label="v2")
        stored = json.loads(path.read_text())["cap"]
        assert stored == {"epsilon": 10.0, "delta": 1e-6}

    def test_reopen_with_tighter_cap_is_durable_without_a_charge(self, tmp_path):
        # A tightened policy must be persisted at load time: a later
        # default-capped open (e.g. another curator process) has to see it
        # even if this handle never charges anything.
        import json

        path = tmp_path / "ledger.json"
        BudgetLedger(PrivacyBudget(10.0, 1e-5), path=path).charge(
            "db", PrivacyBudget(4.0)
        )
        BudgetLedger(PrivacyBudget(6.0, 1e-7), path=path)  # tighten, no charge
        stored = json.loads(path.read_text())["cap"]
        assert stored == {"epsilon": 6.0, "delta": 1e-7}
        third = BudgetLedger(PrivacyBudget(100.0, 1e-4), path=path)
        assert third.cap == PrivacyBudget(6.0, 1e-7)
        with pytest.raises(BudgetExceededError):
            third.charge("db", PrivacyBudget(3.0))

    def test_mixed_component_caps_take_the_min_of_each(self, tmp_path):
        path = tmp_path / "ledger.json"
        BudgetLedger(PrivacyBudget(10.0, 1e-7), path=path).charge(
            "db", PrivacyBudget(1.0)
        )
        reopened = BudgetLedger(PrivacyBudget(5.0, 1e-5), path=path)
        assert reopened.cap == PrivacyBudget(5.0, 1e-7)


class TestGuardedBuild:
    def test_build_release_charges_the_ledger(self, example_db):
        ledger = BudgetLedger(PrivacyBudget(5.0))
        params = ConstructionParams.pure(2.0, beta=0.1)
        structure = build_release(
            example_db,
            params,
            ledger=ledger,
            database_id="example",
            rng=np.random.default_rng(0),
        )
        assert structure.metadata.epsilon == 2.0
        assert ledger.spent("example").epsilon == pytest.approx(2.0)

    def test_over_cap_build_is_refused_with_no_construction(self, example_db):
        ledger = BudgetLedger(PrivacyBudget(5.0))
        params = ConstructionParams.pure(2.0, beta=0.1)
        calls: list[str] = []

        def counting_builder(database, build_params, rng=None):
            calls.append("built")
            from repro.core.construction import build_private_counting_structure

            return build_private_counting_structure(database, build_params, rng=rng)

        for _ in range(2):
            build_release(
                example_db,
                params,
                ledger=ledger,
                database_id="example",
                rng=np.random.default_rng(0),
                builder=counting_builder,
            )
        assert calls == ["built", "built"]
        # Third build would compose to epsilon = 6 > 5: refused *before*
        # the builder runs.
        with pytest.raises(BudgetExceededError):
            build_release(
                example_db,
                params,
                ledger=ledger,
                database_id="example",
                rng=np.random.default_rng(0),
                builder=counting_builder,
            )
        assert calls == ["built", "built"]
        assert ledger.spent("example").epsilon == pytest.approx(4.0)

    def test_failed_build_costs_nothing(self, example_db):
        ledger = BudgetLedger(PrivacyBudget(5.0))
        params = ConstructionParams.pure(2.0, beta=0.1)

        def exploding_builder(database, build_params, rng=None):
            raise RuntimeError("construction crashed")

        with pytest.raises(RuntimeError):
            build_release(
                example_db,
                params,
                ledger=ledger,
                database_id="example",
                builder=exploding_builder,
            )
        assert ledger.spent("example").epsilon == pytest.approx(0.0, abs=1e-9)
