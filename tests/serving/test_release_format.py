"""Tests for the binary columnar release format (``vNNNN.dpsb``).

The format's contract, end to end: a structure saved as binary round-trips
to bit-identical ``query_many`` answers and the *same* canonical content
digest as its JSON release (both directions); corrupted blobs — truncated
or bit-flipped — are rejected with a clear :class:`ReleaseFormatError`; a
crash mid-write leaves the prior version loadable; and an mmap'd compiled
trie satisfies the same immutability guarantee as an in-memory one.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.serving._fsio as fsio
from repro.core.private_trie import PrivateCountingTrie, StructureMetadata
from repro.exceptions import ReleaseFormatError, ReproError
from repro.serving import ReleaseStore, binfmt
from repro.serving.compiled import CompiledTrie
from repro.strings.trie import Trie


def make_structure(counts: dict[str, float]) -> PrivateCountingTrie:
    trie = Trie()
    for pattern, count in counts.items():
        node = trie.insert(pattern)
        node.noisy_count = count
    metadata = StructureMetadata(
        epsilon=2.0,
        delta=1e-6,
        beta=0.1,
        delta_cap=4,
        max_length=10,
        num_documents=20,
        alphabet_size=4,
        error_bound=3.0,
        threshold=1.0,
        construction="unit-test",
    )
    return PrivateCountingTrie(trie=trie, metadata=metadata, report={"k": 2})


def probe_patterns(counts: dict[str, float]) -> list[str]:
    """Stored patterns, their prefixes/extensions, and guaranteed misses."""
    probes = list(counts) + [p + "x" for p in counts] + [p[:-1] for p in counts if p]
    probes += ["", "zz", "☃", "a" * 20]
    return probes


# Alphabet for the hypothesis structures: a few ASCII letters plus a
# non-BMP-boundary unicode character, so encoding paths are exercised.
_CHARS = st.sampled_from(list("abcdé"))
_PATTERNS = st.text(alphabet=_CHARS, min_size=1, max_size=6)
_COUNTS = st.dictionaries(
    _PATTERNS,
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=0,
    max_size=24,
)


class TestRoundTripProperty:
    @settings(max_examples=40, deadline=None)
    @given(counts=_COUNTS)
    def test_binary_round_trip_matches_json_path(self, counts, tmp_path_factory):
        """structure -> binary -> load is bit-identical to the JSON path:
        equal canonical digest and equal ``query_many`` answers."""
        tmp_path = tmp_path_factory.mktemp("roundtrip")
        structure = make_structure(counts)
        digest = structure.content_digest()
        path = tmp_path / "v0001.dpsb"
        binfmt.write_binary(path, structure.compiled(cache_size=0))

        probes = probe_patterns(counts)
        expected = structure.query_many(probes)
        for mmap in (True, False):
            loaded = binfmt.read_binary(path, mmap=mmap, expected_digest=digest)
            assert loaded.content_digest() == digest
            answers = loaded.query_many(probes)
            assert np.array_equal(np.asarray(answers), np.asarray(expected))
            assert loaded.metadata == structure.metadata
            assert loaded.report == structure.report

    @settings(max_examples=15, deadline=None)
    @given(counts=_COUNTS)
    def test_store_formats_are_interchangeable(self, counts, tmp_path_factory):
        """Digest and query equivalence in both directions through the
        store: json->binary (migrate) and binary->json (load as objects)."""
        tmp_path = tmp_path_factory.mktemp("store")
        structure = make_structure(counts)
        digest = structure.content_digest()
        store = ReleaseStore(tmp_path / "store")
        json_record = store.save("demo", structure, format="json")
        binary_record = store.save("demo", structure, format="binary")
        assert json_record.digest == binary_record.digest == digest
        # binary -> objects -> canonical digest (the reverse direction).
        assert store.load("demo", binary_record.version).content_digest() == digest
        probes = probe_patterns(counts)
        json_answers = store.load_compiled(
            "demo", json_record.version
        ).query_many(probes)
        binary_answers = store.load_compiled(
            "demo", binary_record.version
        ).query_many(probes)
        assert np.array_equal(np.asarray(json_answers), np.asarray(binary_answers))


class TestCorruptionRejection:
    @pytest.fixture
    def blob(self, tmp_path) -> tuple[Path, PrivateCountingTrie]:
        structure = make_structure({"ab": 4.0, "abc": 2.0, "b": 1.0})
        path = tmp_path / "v0001.dpsb"
        binfmt.write_binary(path, structure.compiled(cache_size=0))
        return path, structure

    def test_truncated_blob_rejected(self, blob):
        path, _ = blob
        raw = path.read_bytes()
        for keep in (len(raw) - 1, len(raw) // 2, 8, 0):
            path.write_bytes(raw[:keep])
            with pytest.raises(ReleaseFormatError, match="truncated|size mismatch"):
                binfmt.read_binary(path)

    def test_bad_magic_rejected(self, blob):
        path, _ = blob
        raw = bytearray(path.read_bytes())
        raw[:4] = b"NOPE"
        path.write_bytes(bytes(raw))
        with pytest.raises(ReleaseFormatError, match="magic"):
            binfmt.read_binary(path)

    def test_unsupported_version_rejected(self, blob):
        path, _ = blob
        raw = bytearray(path.read_bytes())
        raw[4:8] = (binfmt.FORMAT_VERSION + 1).to_bytes(4, "little")
        path.write_bytes(bytes(raw))
        with pytest.raises(ReleaseFormatError, match="version"):
            binfmt.read_binary(path)

    def test_bit_flip_rejected_everywhere(self, blob):
        """A single flipped bit anywhere in the blob is caught by *some*
        check (header parse, size, checksum or digest) on a verified full
        read — never silently served."""
        path, structure = blob
        raw = path.read_bytes()
        digest = structure.content_digest()
        rng = np.random.default_rng(5)
        positions = set(rng.integers(0, len(raw), size=48).tolist())
        positions.update({0, 5, 12, len(raw) - 1, len(raw) // 2})
        for position in positions:
            flipped = bytearray(raw)
            flipped[position] ^= 0x40
            path.write_bytes(bytes(flipped))
            with pytest.raises((ReleaseFormatError, ReproError)):
                loaded = binfmt.read_binary(
                    path, mmap=False, verify=True, expected_digest=digest
                )
                # Checksums catch the data section; the trailer and header
                # carry their own checks.  Nothing should reach here, but
                # if construction survived, the canonical digest must trip.
                if loaded.content_digest() != digest:
                    raise ReproError("content digest mismatch after bit flip")
        path.write_bytes(raw)
        binfmt.read_binary(path, mmap=False, verify=True, expected_digest=digest)

    def test_error_message_names_file_and_check(self, blob):
        path, _ = blob
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        with pytest.raises(ReleaseFormatError) as excinfo:
            binfmt.read_binary(path)
        assert str(path) in str(excinfo.value)


class TestCrashSafety:
    def test_kill_mid_write_leaves_prior_version_loadable(
        self, tmp_path, monkeypatch
    ):
        store = ReleaseStore(tmp_path / "store", format="binary")
        structure = make_structure({"ab": 4.0})
        record = store.save("demo", structure)
        index_before = (store.root / "index.json").read_text()

        real_replace = fsio.os.replace

        def crash_on_payload(src, dst):
            if str(dst).endswith(binfmt.BINARY_SUFFIX):
                raise OSError("simulated crash during atomic replace")
            return real_replace(src, dst)

        monkeypatch.setattr(fsio.os, "replace", crash_on_payload)
        with pytest.raises(OSError, match="simulated crash"):
            store.save("demo", structure)
        monkeypatch.undo()

        # The index never advanced and v1 still loads, digest-verified.
        assert (store.root / "index.json").read_text() == index_before
        reopened = ReleaseStore(store.root)
        assert reopened.versions("demo") == [1]
        loaded = reopened.load_compiled("demo", mmap=True, verify=True)
        assert loaded.content_digest() == record.digest
        # No half-written payload was published, only (possibly) tmp junk.
        assert sorted(
            p.name for p in (store.root / "demo").iterdir() if not p.name.startswith(".")
        ) == ["v0001.dpsb"]

    def test_kill_mid_migrate_keeps_json_loadable(self, tmp_path, monkeypatch):
        store = ReleaseStore(tmp_path / "store")
        structure = make_structure({"ab": 4.0, "b": 1.0})
        record = store.save("demo", structure, format="json")

        real_replace = fsio.os.replace

        def crash_on_binary(src, dst):
            if str(dst).endswith(binfmt.BINARY_SUFFIX):
                raise OSError("simulated crash during atomic replace")
            return real_replace(src, dst)

        monkeypatch.setattr(fsio.os, "replace", crash_on_binary)
        with pytest.raises(OSError, match="simulated crash"):
            store.migrate("demo")
        monkeypatch.undo()

        # The JSON payload is untouched, the index still says json.
        reopened = ReleaseStore(store.root)
        reloaded_record = reopened.list_releases()[0]
        assert reloaded_record.format == "json"
        assert Path(record.path).exists()
        assert reopened.load("demo").content_digest() == record.digest
        # And the interrupted migration completes cleanly on retry.
        migrated = reopened.migrate("demo")
        assert [r.format for r in migrated] == ["binary"]
        assert not Path(record.path).exists()


class TestMmapParity:
    def test_mmap_assert_immutable(self, tmp_path):
        structure = make_structure({"ab": 4.0, "abc": 2.0})
        path = tmp_path / "v0001.dpsb"
        binfmt.write_binary(path, structure.compiled(cache_size=0))
        mapped = binfmt.read_binary(path, mmap=True)
        mapped.assert_immutable()  # fresh: no lazy views built yet
        mapped.query("ab")
        mapped.batch_query(["ab", "abc", "zz"])
        mapped.assert_immutable()  # after both lazy view families exist
        with pytest.raises(ValueError):
            mapped._counts[0] = 1.0
        with pytest.raises(ValueError):
            mapped._transitions[0] = 1

    def test_mmap_load_is_lazy(self, tmp_path):
        """An mmap load must not materialize the derived views eagerly —
        that laziness is what makes cold start O(header)."""
        structure = make_structure({"ab": 4.0, "abc": 2.0})
        path = tmp_path / "v0001.dpsb"
        binfmt.write_binary(path, structure.compiled(cache_size=0))
        mapped = binfmt.read_binary(path, mmap=True)
        lazy = mapped._lazy
        assert lazy.lists is None and lazy.counts_ext is None
        assert mapped.query("ab") == 4.0
        assert lazy.lists is not None


class TestStoreFormatDetails:
    def test_collision_scan_covers_both_extensions(self, tmp_path):
        """A binary vNNNN must never silently collide with a JSON vNNNN
        left on disk by a lost index (and vice versa)."""
        structure = make_structure({"a": 1.0})
        store = ReleaseStore(tmp_path / "store")
        store.save("demo", structure, format="json")      # v0001.json
        store.save("demo", structure, format="binary")    # v0002.dpsb
        (store.root / "index.json").unlink()
        fresh = ReleaseStore(store.root)
        record = fresh.save("demo", structure, format="binary")
        # A naive .json-only scan would have landed on v0002 and clobbered
        # the binary payload; both extensions must be skipped.
        assert record.version == 3
        assert sorted(p.name for p in (store.root / "demo").iterdir()) == [
            "v0001.json",
            "v0002.dpsb",
            "v0003.dpsb",
        ]

    def test_invalid_format_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="format"):
            ReleaseStore(tmp_path / "store", format="msgpack")
        store = ReleaseStore(tmp_path / "store")
        with pytest.raises(ReproError, match="format"):
            store.save("demo", make_structure({"a": 1.0}), format="msgpack")

    def test_index_records_format(self, tmp_path):
        store = ReleaseStore(tmp_path / "store")
        structure = make_structure({"a": 1.0})
        store.save("demo", structure, format="json")
        store.save("demo", structure)  # store default: auto -> binary
        index = json.loads((store.root / "index.json").read_text())
        versions = index["releases"]["demo"]["versions"]
        assert versions["1"]["format"] == "json"
        assert versions["2"]["format"] == "binary"
        formats = {r.version: r.format for r in store.list_releases()}
        assert formats == {1: "json", 2: "binary"}

    def test_migrate_noop_on_binary_store(self, tmp_path):
        store = ReleaseStore(tmp_path / "store", format="binary")
        store.save("demo", make_structure({"a": 1.0}))
        assert store.migrate() == []
