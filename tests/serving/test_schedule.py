"""Tests for the epoch scheduler (stream -> build -> ledger -> store).

The guarantees under test: epochs release in order with exactly the
tree-schedule marginals charged; every version is tagged with its epoch
and parent; replaying the same stream and seed reproduces every digest;
an unaffordable epoch is refused *before* the documents are touched; and
a restarted scheduler resumes where the durable ledger says it stopped.
"""

from __future__ import annotations

import pytest

from repro.api import CorpusStream
from repro.core.params import ConstructionParams
from repro.dp.composition import PrivacyBudget
from repro.exceptions import (
    BudgetExceededError,
    ReleaseNotFoundError,
    ReproError,
)
from repro.serving import BudgetLedger, EpochScheduler, ReleaseStore

EPOCHS = (
    ("abab", "abba"),
    ("baba",),
    ("aabb", "bbaa"),
    ("abab", "bbbb"),
)


@pytest.fixture
def stream():
    return CorpusStream.from_epochs(EPOCHS, name="demo")


@pytest.fixture
def params():
    return ConstructionParams(budget=PrivacyBudget(2.0), beta=0.1)


def make_scheduler(tmp_path, stream, params, *, cap=20.0, seed=7, sub="a"):
    store = ReleaseStore(tmp_path / sub / "store")
    ledger = BudgetLedger(PrivacyBudget(cap), path=tmp_path / sub / "ledger.json")
    return EpochScheduler(stream, store, ledger, params=params, seed=seed)


class TestEpochReleases:
    def test_one_version_per_epoch_with_tree_marginals(
        self, tmp_path, stream, params
    ):
        scheduler = make_scheduler(tmp_path, stream, params)
        releases = scheduler.run_pending()
        assert [release.epoch for release in releases] == [1, 2, 3, 4]
        assert [release.version for release in releases] == [1, 2, 3, 4]
        # Marginal charges follow the dyadic-tree schedule.
        assert [release.epsilon for release in releases] == [2.0, 2.0, 0.0, 2.0]
        assert releases[-1].spent_epsilon == pytest.approx(6.0)
        assert scheduler.pending_epochs() == []

    def test_store_records_epoch_and_parent(self, tmp_path, stream, params):
        scheduler = make_scheduler(tmp_path, stream, params)
        scheduler.run_pending()
        records = sorted(
            scheduler.store.list_releases(), key=lambda record: record.version
        )
        assert [record.epoch for record in records] == [1, 2, 3, 4]
        assert [record.parent_version for record in records] == [None, 1, 2, 3]
        # Single-shot saves stay untagged.
        single = scheduler.store.save("oneshot", scheduler.store.load("demo"))
        assert single.epoch is None and single.parent_version is None

    def test_version_pinning_by_epoch(self, tmp_path, stream, params):
        scheduler = make_scheduler(tmp_path, stream, params)
        scheduler.run_pending()
        assert scheduler.version_for_epoch(2) == 2
        with pytest.raises(ReleaseNotFoundError):
            scheduler.version_for_epoch(9)

    def test_epochs_release_in_order_only(self, tmp_path, stream, params):
        scheduler = make_scheduler(tmp_path, stream, params)
        with pytest.raises(ReproError, match="in order"):
            scheduler.run_epoch(2)
        scheduler.run_epoch(1)
        with pytest.raises(ReproError, match="in order"):
            scheduler.run_epoch(1)

    def test_cannot_outrun_the_stream(self, tmp_path, params):
        short = CorpusStream.from_epochs([("abab",)], name="short")
        scheduler = make_scheduler(tmp_path, short, params)
        scheduler.run_epoch()
        with pytest.raises(ReproError, match="not arrived"):
            scheduler.run_epoch()
        short.append_epoch(("baba",))
        assert scheduler.run_epoch().epoch == 2

    def test_combined_metadata_carries_cumulative_budget(
        self, tmp_path, stream, params
    ):
        scheduler = make_scheduler(tmp_path, stream, params)
        scheduler.run_pending()
        released = scheduler.store.load("demo", version=4)
        # Epoch 4 uses bit_length(4) = 3 levels of the tree.
        assert released.metadata.epsilon == pytest.approx(3 * 2.0)
        assert "heavy-path-continual epoch 4" in released.metadata.construction

    def test_status_reports_schedule_position(self, tmp_path, stream, params):
        scheduler = make_scheduler(tmp_path, stream, params)
        scheduler.run_epoch()
        scheduler.run_epoch()
        status = scheduler.status()
        assert status["released_epochs"] == 2
        assert status["pending_epochs"] == [3, 4]
        assert status["spent_epsilon"] == pytest.approx(4.0)
        assert status["naive_epsilon"] == pytest.approx(4.0)
        assert [entry["epoch"] for entry in status["epochs"]] == [1, 2]


class TestDeterminism:
    def test_replay_reproduces_every_digest(self, tmp_path, stream, params):
        first = make_scheduler(tmp_path, stream, params, sub="a")
        second = make_scheduler(tmp_path, stream, params, sub="b")
        digests_a = [release.digest for release in first.run_pending()]
        digests_b = [release.digest for release in second.run_pending()]
        assert digests_a == digests_b

    def test_seed_changes_the_noise(self, tmp_path, stream, params):
        first = make_scheduler(tmp_path, stream, params, seed=7, sub="a")
        second = make_scheduler(tmp_path, stream, params, seed=8, sub="b")
        digests_a = [release.digest for release in first.run_pending()]
        digests_b = [release.digest for release in second.run_pending()]
        assert digests_a != digests_b


class TestBudgetEnforcement:
    def test_unaffordable_epoch_refused_before_build(self, tmp_path, stream, params):
        # The cap funds epoch 1's charge (2.0) but not epoch 2's.
        scheduler = make_scheduler(tmp_path, stream, params, cap=3.0)
        scheduler.run_epoch()
        with pytest.raises(BudgetExceededError):
            scheduler.run_epoch()
        # Nothing was built, published or charged for the refused epoch...
        assert scheduler.store.versions("demo") == [1]
        assert scheduler.released_epochs == 1
        assert scheduler.ledger.next_epoch("demo") == 2
        # ...and the refusal is on the audit trail.
        refusals = [
            entry
            for entry in scheduler.ledger.audit_entries("demo")
            if entry["event"] == "refusal"
        ]
        assert refusals and refusals[-1]["epoch"] == 2
        # Zero-marginal epochs would still be free, but the schedule is
        # stuck at the unaffordable epoch 2 — order is never skipped.
        with pytest.raises(BudgetExceededError):
            scheduler.run_pending()


class TestResume:
    def test_restarted_scheduler_resumes_from_ledger(self, tmp_path, stream, params):
        first = make_scheduler(tmp_path, stream, params)
        first.run_epoch()
        first.run_epoch()
        # A new scheduler process over the same durable state.
        second = EpochScheduler(
            stream, first.store, first.ledger, params=params, seed=7
        )
        assert second.released_epochs == 2
        assert second.pending_epochs() == [3, 4]
        releases = second.run_pending()
        assert [release.epoch for release in releases] == [3, 4]
        # No double charge: the total is still the tree bound.
        assert second.ledger.spent("demo").epsilon == pytest.approx(6.0)

    def test_resumed_digests_match_uninterrupted_run(self, tmp_path, stream, params):
        straight = make_scheduler(tmp_path, stream, params, sub="a")
        expected = [release.digest for release in straight.run_pending()]
        first = make_scheduler(tmp_path, stream, params, sub="b")
        first.run_epoch()
        first.run_epoch()
        second = EpochScheduler(
            stream, first.store, first.ledger, params=params, seed=7
        )
        resumed = [release.digest for release in second.run_pending()]
        assert expected[2:] == resumed
