"""Parity and cache tests for the compiled array-backed trie.

The load-bearing property is *exact post-processing parity*: a compiled
release answers byte-identical counts to the in-memory
:class:`PrivateCountingTrie` for every pattern, through every query path
(single, cached, batch, mine).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.construction import build_private_counting_structure
from repro.core.params import ConstructionParams
from repro.core.private_trie import PrivateCountingTrie, StructureMetadata
from repro.serving import CompiledTrie
from repro.strings.trie import Trie


def make_structure(counts: dict[str, float], **metadata_overrides) -> PrivateCountingTrie:
    trie = Trie()
    for pattern, count in counts.items():
        node = trie.insert(pattern)
        node.noisy_count = count
    metadata = StructureMetadata(
        epsilon=1.0,
        delta=0.0,
        beta=0.1,
        delta_cap=5,
        max_length=8,
        num_documents=10,
        alphabet_size=3,
        error_bound=2.0,
        threshold=4.0,
        **metadata_overrides,
    )
    return PrivateCountingTrie(trie=trie, metadata=metadata)


def probe_patterns(structure: PrivateCountingTrie) -> list[str]:
    """Stored patterns plus prefixes, extensions, misses and oddballs."""
    stored = structure.patterns()
    probes = list(stored)
    probes += [p[:-1] for p in stored if len(p) > 1]
    probes += [p + p[0] for p in stored]
    probes += ["", "zzz", "a?b", "éé", stored[0] * 5 if stored else "x"]
    return probes


@pytest.fixture
def built_structure(small_db, rng):
    """A real (noiseless, low-threshold) construction with many nodes."""
    params = ConstructionParams.pure(2.0, beta=0.1, noiseless=True, threshold=1.0)
    return build_private_counting_structure(small_db, params, rng=rng)


class TestSingleQueryParity:
    def test_handmade_structure(self):
        structure = make_structure({"ab": 7.5, "abc": 3.0, "ba": -1.5})
        compiled = CompiledTrie.from_structure(structure)
        for pattern in ("ab", "abc", "ba", "a", "b", "", "abcd", "zz", "a?"):
            assert compiled.query(pattern) == structure.query(pattern)

    def test_membership_matches(self):
        structure = make_structure({"abc": 3.0})
        compiled = CompiledTrie.from_structure(structure)
        for pattern in ("abc", "ab", "a", "zz", "abcd"):
            assert (pattern in compiled) == (pattern in structure)

    def test_built_structure_parity(self, built_structure):
        compiled = CompiledTrie.from_structure(built_structure)
        for pattern in probe_patterns(built_structure):
            assert compiled.query(pattern) == built_structure.query(pattern)

    def test_root_count_parity(self, built_structure):
        # Constructions store a count on the root; query("") must agree.
        compiled = CompiledTrie.from_structure(built_structure)
        assert compiled.query("") == built_structure.query("")

    def test_empty_structure(self):
        structure = make_structure({})
        compiled = CompiledTrie.from_structure(structure)
        assert compiled.query("anything") == 0.0
        assert compiled.num_nodes == 1
        assert compiled.num_stored_patterns == 0


class TestBatchQueryParity:
    def test_matches_single_queries(self, built_structure):
        compiled = CompiledTrie.from_structure(built_structure)
        probes = probe_patterns(built_structure)
        batch = compiled.batch_query(probes)
        expected = [built_structure.query(p) for p in probes]
        assert np.allclose(batch, expected)

    def test_empty_batch(self, built_structure):
        compiled = CompiledTrie.from_structure(built_structure)
        assert compiled.batch_query([]).tolist() == []

    def test_all_empty_patterns(self, built_structure):
        compiled = CompiledTrie.from_structure(built_structure)
        batch = compiled.batch_query(["", "", ""])
        assert np.allclose(batch, [built_structure.query("")] * 3)

    def test_unknown_alphabet_characters(self):
        structure = make_structure({"ab": 4.0})
        compiled = CompiledTrie.from_structure(structure)
        assert compiled.batch_query(["a?", "?a", "ab", "☃"]).tolist() == [
            0.0,
            0.0,
            4.0,
            0.0,
        ]

    def test_sparse_fallback_parity(self, built_structure, monkeypatch):
        # Force the searchsorted fallback used for huge alphabets.
        monkeypatch.setattr(CompiledTrie, "DENSE_TRANSITION_LIMIT", 0)
        compiled = CompiledTrie.from_structure(built_structure)
        assert compiled._transitions is None
        probes = probe_patterns(built_structure)
        expected = [built_structure.query(p) for p in probes]
        assert np.allclose(compiled.batch_query(probes), expected)

    def test_sparse_fallback_single_node(self, monkeypatch):
        monkeypatch.setattr(CompiledTrie, "DENSE_TRANSITION_LIMIT", 0)
        compiled = CompiledTrie.from_structure(make_structure({}))
        assert compiled.batch_query(["a", ""]).tolist() == [0.0, 0.0]

    def test_large_random_batch(self, built_structure, rng):
        compiled = CompiledTrie.from_structure(built_structure)
        alphabet = ["a", "b", "c"]
        probes = [
            "".join(alphabet[i] for i in rng.integers(0, 3, size=rng.integers(0, 7)))
            for _ in range(500)
        ]
        expected = [built_structure.query(p) for p in probes]
        assert np.allclose(compiled.batch_query(probes), expected)


class TestBatchQueryEdgeCases:
    """The separator-scan shortcuts (NUL-joined encode, uniform fast path)
    must agree with single queries on every degenerate batch, on both the
    dense-table and the sparse ``_advance_sparse`` paths."""

    @pytest.fixture(params=["dense", "sparse"])
    def compiled(self, built_structure, monkeypatch, request):
        if request.param == "sparse":
            monkeypatch.setattr(CompiledTrie, "DENSE_TRANSITION_LIMIT", 0)
        trie = CompiledTrie.from_structure(built_structure)
        assert (trie._transitions is None) == (request.param == "sparse")
        return trie

    def test_empty_batch(self, compiled):
        result = compiled.batch_query([])
        assert result.tolist() == [] and result.dtype == np.float64

    def test_all_empty_patterns(self, compiled, built_structure):
        expected = built_structure.query("")
        assert compiled.batch_query([""] * 5).tolist() == [expected] * 5

    def test_nul_containing_patterns(self, compiled, built_structure):
        # NUL is the join separator; patterns containing it must fall back
        # to the per-pattern length scan and still answer 0 (NUL is outside
        # every vocab).
        probes = ["\x00", "a\x00b", "\x00ab", "ab\x00", "ab", "\x00\x00"]
        expected = [built_structure.query(p) for p in probes]
        assert compiled.batch_query(probes).tolist() == expected
        assert all(built_structure.query(p) == 0.0 for p in probes if "\x00" in p)

    def test_uniform_nul_batch_falls_through_to_general_path(
        self, compiled, built_structure
    ):
        # Uniform lengths but NULs inside the patterns: the separator-count
        # guard must reject the uniform fast path, not misparse the join.
        probes = ["a\x00b", "a\x00b", "ab\x00", "\x00ab"]
        assert compiled.batch_query(probes).tolist() == [0.0] * 4

    def test_uniform_batch_matches_general_path(self, compiled, built_structure):
        stored = built_structure.patterns()
        width = max(len(p) for p in stored)
        uniform = [p for p in stored if len(p) == width][:3] * 4
        if not uniform:
            pytest.skip("structure stores no uniform-width patterns")
        expected = [built_structure.query(p) for p in uniform]
        assert compiled.batch_query(uniform).tolist() == expected
        # A single pattern (m == 1) takes the general path by design.
        assert compiled.batch_query(uniform[:1]).tolist() == expected[:1]

    def test_mixed_lengths_with_empties_and_misses(self, compiled, built_structure):
        probes = ["", "zz", built_structure.patterns()[0], "", "a", "☃", "\x00"]
        expected = [built_structure.query(p) for p in probes]
        assert compiled.batch_query(probes).tolist() == expected


class TestMiningParity:
    def test_mine_matches(self, built_structure):
        compiled = CompiledTrie.from_structure(built_structure)
        for threshold in (0.5, 1.0, 2.0, 100.0):
            assert compiled.mine(threshold) == built_structure.mine(threshold)

    def test_mine_filters_match(self, built_structure):
        compiled = CompiledTrie.from_structure(built_structure)
        assert compiled.mine(1.0, min_length=2) == built_structure.mine(
            1.0, min_length=2
        )
        assert compiled.mine(1.0, max_length=2) == built_structure.mine(
            1.0, max_length=2
        )
        assert compiled.mine(1.0, exact_length=3) == built_structure.mine(
            1.0, exact_length=3
        )

    def test_items_match(self, built_structure):
        compiled = CompiledTrie.from_structure(built_structure)
        assert dict(compiled.items()) == dict(built_structure.items())


class TestLRUCache:
    def test_hits_and_misses(self):
        compiled = CompiledTrie.from_structure(make_structure({"ab": 4.0}))
        assert compiled.query("ab") == 4.0
        assert compiled.query("ab") == 4.0
        info = compiled.cache_info()
        assert info.hits == 1
        assert info.misses == 1
        assert info.size == 1
        assert 0 < info.hit_rate < 1

    def test_eviction_respects_max_size(self):
        compiled = CompiledTrie.from_structure(
            make_structure({"a": 1.0, "b": 2.0, "c": 3.0}), cache_size=2
        )
        for pattern in ("a", "b", "c"):
            compiled.query(pattern)
        assert compiled.cache_info().size == 2
        # "a" was evicted (least recently used); re-querying is a miss but
        # still answers correctly.
        assert compiled.query("a") == 1.0

    def test_cache_disabled(self):
        compiled = CompiledTrie.from_structure(
            make_structure({"a": 1.0}), cache_size=0
        )
        compiled.query("a")
        compiled.query("a")
        info = compiled.cache_info()
        assert info.hits == 0 and info.misses == 0 and info.size == 0

    def test_cache_clear(self):
        compiled = CompiledTrie.from_structure(make_structure({"a": 1.0}))
        compiled.query("a")
        compiled.cache_clear()
        info = compiled.cache_info()
        assert info.hits == 0 and info.misses == 0 and info.size == 0


class TestStatistics:
    def test_counts_and_sizes(self, built_structure):
        compiled = CompiledTrie.from_structure(built_structure)
        assert compiled.num_nodes == built_structure.num_nodes
        assert compiled.num_stored_patterns == built_structure.num_stored_patterns
        assert compiled.error_bound == built_structure.error_bound
        assert compiled.metadata == built_structure.metadata
        assert compiled.nbytes > 0

    def test_compiled_via_structure_hook(self, built_structure):
        compiled = built_structure.compiled(cache_size=16)
        assert compiled.cache_info().max_size == 16
        assert compiled.query("ab") == built_structure.query("ab")
