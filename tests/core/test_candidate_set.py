"""Tests for repro.core.candidate_set (Step 1 of the construction)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidate_set import build_candidate_set, candidate_alpha
from repro.core.database import StringDatabase
from repro.core.params import ConstructionParams
from repro.dp.mechanisms import LaplaceMechanism
from repro.exceptions import ConstructionAborted
from repro.strings.naive import all_substrings, substring_count

DOCS = st.lists(st.text(alphabet="ab", min_size=1, max_size=6), min_size=1, max_size=4)


def noiseless_params(threshold: float = 1.0) -> ConstructionParams:
    return ConstructionParams.pure(
        epsilon=1.0, beta=0.1, noiseless=True, threshold=threshold
    )


class TestExactCandidateSets:
    """With the noiseless mechanism and threshold 1, the candidate sets are
    exactly the sets of the paper's Examples 2 and 3."""

    def test_paper_example_levels(self, example_db):
        candidates = build_candidate_set(example_db, noiseless_params())
        assert candidates.levels[1] == ["a", "b", "e", "s"]
        assert candidates.levels[2] == ["aa", "ab", "ba", "be", "bs", "ee", "es", "sa"]
        assert candidates.levels[4] == ["aaaa", "absa", "babe", "bees", "bsab"]

    def test_paper_example_completion(self, example_db):
        candidates = build_candidate_set(example_db, noiseless_params())
        c3 = set(candidates.by_length[3])
        # Every string of length 3 whose length-2 prefix and suffix are in P_2.
        assert {"aaa", "aab", "aba", "abe", "abs", "baa", "bab", "bee", "bsa",
                "eee", "saa", "sab"} <= c3
        for pattern in c3:
            assert pattern[:2] in candidates.levels[2]
            assert pattern[1:] in candidates.levels[2]
        c5 = set(candidates.by_length[5])
        assert c5 == {"aaaaa", "absab"}

    def test_candidates_contain_every_frequent_substring(self, example_db):
        candidates = build_candidate_set(example_db, noiseless_params())
        all_candidates = candidates.all_strings()
        for substring in all_substrings(example_db.documents):
            assert substring in all_candidates

    def test_threshold_excludes_rare_strings(self, example_db):
        candidates = build_candidate_set(example_db, noiseless_params(threshold=3.0))
        assert "s" not in candidates.levels[1]  # substring count of "s" is 2
        assert "a" in candidates.levels[1]

    @given(DOCS)
    @settings(max_examples=40, deadline=None)
    def test_exact_candidates_cover_all_substrings(self, documents):
        database = StringDatabase(documents)
        candidates = build_candidate_set(database, noiseless_params())
        all_candidates = candidates.all_strings()
        for substring in all_substrings(documents):
            assert substring in all_candidates

    @given(DOCS)
    @settings(max_examples=40, deadline=None)
    def test_completion_consistency(self, documents):
        """Every candidate of non-power-of-two length m has its length-2^k
        prefix and suffix in P_{2^k}."""
        database = StringDatabase(documents)
        candidates = build_candidate_set(database, noiseless_params())
        for length, strings in candidates.by_length.items():
            power = 1 << (length.bit_length() - 1)
            if power == length:
                continue
            for pattern in strings:
                assert pattern[:power] in candidates.levels[power]
                assert pattern[len(pattern) - power :] in candidates.levels[power]


class TestPrivateCandidateSets:
    def test_alpha_and_threshold(self, example_db):
        params = ConstructionParams.pure(epsilon=2.0, beta=0.1)
        candidates = build_candidate_set(example_db, params, rng=np.random.default_rng(0))
        assert candidates.alpha > 0
        assert candidates.threshold == pytest.approx(2 * candidates.alpha)

    def test_budget_accounting(self, example_db):
        params = ConstructionParams.pure(epsilon=2.0, beta=0.1)
        candidates = build_candidate_set(example_db, params, rng=np.random.default_rng(0))
        assert candidates.accountant.total_epsilon <= 2.0 + 1e-9

    def test_gaussian_variant_accounts_delta(self, example_db):
        params = ConstructionParams.approximate(epsilon=2.0, delta=1e-5, beta=0.1)
        candidates = build_candidate_set(example_db, params, rng=np.random.default_rng(0))
        assert candidates.accountant.total_delta <= 1e-5 + 1e-12
        assert candidates.accountant.total_epsilon <= 2.0 + 1e-9

    def test_false_positives_are_rare_at_default_threshold(self, example_db):
        """With the calibrated threshold 2*alpha the candidate levels contain
        (with overwhelming probability) only true substrings — on a toy
        database they are simply empty."""
        params = ConstructionParams.pure(epsilon=1.0, beta=0.1)
        candidates = build_candidate_set(example_db, params, rng=np.random.default_rng(7))
        for level, strings in candidates.levels.items():
            for pattern in strings:
                assert substring_count(pattern, list(example_db)) > 0

    def test_abort_when_candidate_set_explodes(self):
        # A tiny capacity (n * ell = 2) with a negative threshold forces the
        # level sets to keep everything and trip the abort check.
        database = StringDatabase(["ab"])
        params = ConstructionParams.pure(
            epsilon=1.0, beta=0.1, noiseless=True, threshold=-1.0
        )
        with pytest.raises(ConstructionAborted):
            build_candidate_set(database, params)

    def test_doubling_limit_and_lengths_restriction(self, example_db):
        params = noiseless_params()
        candidates = build_candidate_set(
            example_db, params, doubling_limit=2, lengths=[2]
        )
        assert set(candidates.levels) == {1, 2}
        assert set(candidates.by_length) == {2}


class TestCandidateAlpha:
    def test_alpha_grows_with_ell_and_shrinks_with_epsilon(self):
        loose = candidate_alpha(10, 8, 4, LaplaceMechanism(1.0), 0.1, 8)
        tight = candidate_alpha(10, 16, 4, LaplaceMechanism(1.0), 0.1, 16)
        assert tight > loose
        strong_privacy = candidate_alpha(10, 8, 4, LaplaceMechanism(0.5), 0.1, 8)
        assert strong_privacy > loose
