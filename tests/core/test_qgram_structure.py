"""Tests for repro.core.qgram_structure (Theorems 3 and 4)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import StringDatabase
from repro.core.params import ConstructionParams
from repro.core.qgram_structure import (
    build_qgram_structure,
    build_theorem3_qgram_structure,
    build_theorem4_qgram_structure,
)
from repro.exceptions import PrivacyParameterError
from repro.strings.qgrams import qgram_capped_counts, qgram_substring_counts

DOCS = st.lists(st.text(alphabet="ab", min_size=2, max_size=8), min_size=1, max_size=5)


def noiseless_pure(threshold=1.0):
    return ConstructionParams.pure(1.0, beta=0.1, noiseless=True, threshold=threshold)


def noiseless_approx(threshold=1.0):
    return ConstructionParams.approximate(
        1.0, 1e-5, beta=0.1, noiseless=True, threshold=threshold
    )


class TestTheorem3:
    def test_noiseless_counts_exact(self, example_db):
        structure = build_theorem3_qgram_structure(
            example_db, 2, noiseless_pure(), rng=np.random.default_rng(0)
        )
        exact = qgram_substring_counts(example_db.documents, 2)
        for qgram, count in exact.items():
            assert structure.query(qgram) == pytest.approx(count)
        assert structure.metadata.qgram_length == 2

    def test_longer_patterns_not_stored(self, example_db):
        structure = build_theorem3_qgram_structure(
            example_db, 2, noiseless_pure(), rng=np.random.default_rng(0)
        )
        assert structure.query("abe") == 0.0

    def test_q_validation(self, example_db):
        with pytest.raises(PrivacyParameterError):
            build_theorem3_qgram_structure(example_db, 0, noiseless_pure())
        with pytest.raises(PrivacyParameterError):
            build_theorem3_qgram_structure(
                example_db, example_db.max_length + 1, noiseless_pure()
            )

    def test_budget_accounting(self, example_db):
        params = ConstructionParams.pure(2.0, beta=0.1)
        structure = build_theorem3_qgram_structure(
            example_db, 2, params, rng=np.random.default_rng(0)
        )
        assert structure.report["privacy_spent_epsilon"] <= 2.0 + 1e-9

    def test_prebuilt_candidates_skip_candidate_stage(self, example_db):
        structure = build_theorem3_qgram_structure(
            example_db,
            2,
            noiseless_pure(),
            rng=np.random.default_rng(0),
            candidate_qgrams=["ab", "zz"],
        )
        assert structure.query("ab") == pytest.approx(4)
        assert structure.query("zz") == 0.0  # true count 0, pruned at tau=1

    @given(DOCS, st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_noiseless_matches_exact_qgram_table(self, documents, q):
        database = StringDatabase(documents)
        if q > database.max_length:
            return
        structure = build_theorem3_qgram_structure(
            database, q, noiseless_pure(), rng=np.random.default_rng(1)
        )
        exact = qgram_substring_counts(documents, q)
        for qgram, count in exact.items():
            assert structure.query(qgram) == pytest.approx(count)


class TestTheorem4:
    def test_requires_delta_or_noiseless(self, example_db):
        with pytest.raises(PrivacyParameterError):
            build_theorem4_qgram_structure(
                example_db, 2, ConstructionParams.pure(1.0, beta=0.1)
            )

    def test_noiseless_counts_exact(self, example_db):
        structure = build_theorem4_qgram_structure(
            example_db, 2, noiseless_approx(), rng=np.random.default_rng(0)
        )
        exact = qgram_substring_counts(example_db.documents, 2)
        for qgram, count in exact.items():
            assert structure.query(qgram) == pytest.approx(count)

    def test_document_count_semantics(self, example_db):
        params = ConstructionParams.approximate(
            1.0, 1e-5, beta=0.1, noiseless=True, threshold=1.0, delta_cap=1
        )
        structure = build_theorem4_qgram_structure(
            example_db, 2, params, rng=np.random.default_rng(0)
        )
        exact = qgram_capped_counts(example_db.documents, 2, delta=1)
        for qgram, count in exact.items():
            assert structure.query(qgram) == pytest.approx(count)

    def test_only_occurring_qgrams_are_stored(self, example_db):
        """Theorem 4's algorithm never evaluates strings with true count 0,
        so even with a -inf threshold nothing spurious can be stored."""
        params = ConstructionParams.approximate(
            1.0, 1e-5, beta=0.1, threshold=-math.inf
        )
        structure = build_theorem4_qgram_structure(
            example_db, 3, params, rng=np.random.default_rng(0)
        )
        occurring = set(qgram_substring_counts(example_db.documents, 3))
        for pattern, _ in structure.items():
            assert pattern in occurring

    def test_noisy_counts_within_bound(self, example_db):
        params = ConstructionParams.approximate(
            1.0, 1e-5, beta=0.05, threshold=-math.inf
        )
        structure = build_theorem4_qgram_structure(
            example_db, 2, params, rng=np.random.default_rng(2)
        )
        exact = qgram_substring_counts(example_db.documents, 2)
        for pattern, noisy in structure.items():
            assert abs(noisy - exact.get(pattern, 0)) <= structure.error_bound

    def test_budget_accounting(self, example_db):
        params = ConstructionParams.approximate(2.0, 1e-5, beta=0.1)
        structure = build_theorem4_qgram_structure(
            example_db, 4, params, rng=np.random.default_rng(0)
        )
        assert structure.report["privacy_spent_epsilon"] <= 2.0 + 1e-9
        assert structure.report["num_phases"] == math.floor(math.log2(4)) + 2

    @given(DOCS, st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_noiseless_matches_exact_on_random_databases(self, documents, q):
        database = StringDatabase(documents)
        if q > database.max_length:
            return
        structure = build_theorem4_qgram_structure(
            database, q, noiseless_approx(), rng=np.random.default_rng(1)
        )
        exact = qgram_substring_counts(documents, q)
        for qgram, count in exact.items():
            assert structure.query(qgram) == pytest.approx(count)
        for pattern, _ in structure.items():
            assert pattern in exact


class TestDispatch:
    def test_dispatch_selects_flavour(self, example_db):
        pure = build_qgram_structure(
            example_db, 2, noiseless_pure(), rng=np.random.default_rng(0)
        )
        approx = build_qgram_structure(
            example_db, 2, noiseless_approx(), rng=np.random.default_rng(0)
        )
        assert pure.metadata.construction.startswith("theorem-3")
        assert approx.metadata.construction.startswith("theorem-4")
