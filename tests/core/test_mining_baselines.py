"""Tests for repro.core.mining and repro.core.baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import ExactCountingOracle, build_simple_trie_baseline
from repro.core.construction import build_private_counting_structure
from repro.core.counts import exact_count_table
from repro.core.mining import (
    check_mining_guarantee,
    mine_frequent_qgrams,
    mine_frequent_substrings,
)
from repro.core.params import ConstructionParams
from repro.core.private_trie import PrivateCountingTrie, StructureMetadata
from repro.strings.trie import Trie


def noiseless_params(**kwargs) -> ConstructionParams:
    kwargs.setdefault("threshold", 1.0)
    return ConstructionParams.pure(epsilon=1.0, beta=0.1, noiseless=True, **kwargs)


class TestMiningOnNoiselessStructure:
    def test_mining_returns_truly_frequent_patterns(self, example_db):
        structure = build_private_counting_structure(
            example_db, noiseless_params(), rng=np.random.default_rng(0)
        )
        result = mine_frequent_substrings(structure, threshold=4.0)
        mined = result.pattern_set()
        exact = exact_count_table(example_db, example_db.max_length)
        for pattern, count in exact.items():
            if count >= 4:
                assert pattern in mined
        for pattern in mined:
            assert exact.get(pattern, 0) >= 4

    def test_qgram_mining_restricts_length(self, example_db):
        structure = build_private_counting_structure(
            example_db, noiseless_params(), rng=np.random.default_rng(0)
        )
        result = mine_frequent_qgrams(structure, threshold=2.0, q=2)
        assert result.patterns
        assert all(len(pattern) == 2 for pattern in result.pattern_set())

    def test_multiple_thresholds_are_free(self, example_db):
        structure = build_private_counting_structure(
            example_db, noiseless_params(), rng=np.random.default_rng(0)
        )
        sizes = [len(mine_frequent_substrings(structure, t)) for t in (1.0, 2.0, 4.0, 8.0)]
        assert sizes == sorted(sizes, reverse=True)

    def test_guarantee_checker_passes_on_exact_structure(self, example_db):
        structure = build_private_counting_structure(
            example_db, noiseless_params(), rng=np.random.default_rng(0)
        )
        result = mine_frequent_substrings(structure, threshold=3.0)
        violations = check_mining_guarantee(result, example_db)
        assert violations.ok

    def test_guarantee_checker_detects_missing_pattern(self):
        trie = Trie()
        metadata = StructureMetadata(
            epsilon=1.0, delta=0.0, beta=0.1, delta_cap=5, max_length=5,
            num_documents=5, alphabet_size=2, error_bound=1.0, threshold=2.0,
        )
        empty_structure = PrivateCountingTrie(trie=trie, metadata=metadata)
        result = mine_frequent_substrings(empty_structure, threshold=2.0)
        violations = check_mining_guarantee(
            result, {"aa": 10}, alpha=1.0
        )
        assert violations.missed == ["aa"]
        assert not violations.spurious

    def test_guarantee_checker_detects_spurious_pattern(self):
        trie = Trie()
        node = trie.insert("zz")
        node.noisy_count = 50.0
        metadata = StructureMetadata(
            epsilon=1.0, delta=0.0, beta=0.1, delta_cap=5, max_length=5,
            num_documents=5, alphabet_size=2, error_bound=1.0, threshold=2.0,
        )
        structure = PrivateCountingTrie(trie=trie, metadata=metadata)
        result = mine_frequent_substrings(structure, threshold=10.0)
        violations = check_mining_guarantee(result, {"zz": 0}, alpha=1.0)
        assert violations.spurious == ["zz"]

    def test_guarantee_checker_respects_length_restriction(self):
        trie = Trie()
        metadata = StructureMetadata(
            epsilon=1.0, delta=0.0, beta=0.1, delta_cap=5, max_length=5,
            num_documents=5, alphabet_size=2, error_bound=1.0, threshold=2.0,
        )
        structure = PrivateCountingTrie(trie=trie, metadata=metadata)
        result = mine_frequent_qgrams(structure, threshold=2.0, q=2)
        violations = check_mining_guarantee(
            result, {"aaa": 100}, alpha=1.0, restrict_to_length=2
        )
        assert violations.ok  # the frequent pattern has the wrong length


class TestMiningOnPrivateStructure:
    def test_private_mining_guarantee_holds(self, small_db, rng):
        params = ConstructionParams.pure(epsilon=5.0, beta=0.05)
        structure = build_private_counting_structure(small_db, params, rng=rng)
        threshold = structure.metadata.threshold
        result = mine_frequent_substrings(structure, threshold)
        violations = check_mining_guarantee(result, small_db)
        assert violations.ok


class TestSimpleTrieBaseline:
    def test_noiseless_baseline_counts_exactly(self, example_db):
        params = noiseless_params()
        baseline = build_simple_trie_baseline(
            example_db, params, rng=np.random.default_rng(0), max_depth=3
        )
        assert baseline.query("ab") == pytest.approx(4)
        assert baseline.query("be") == pytest.approx(4)
        assert baseline.metadata.construction == "simple-trie baseline"

    def test_noiseless_baseline_stops_below_threshold(self, example_db):
        params = noiseless_params(threshold=3.0)
        baseline = build_simple_trie_baseline(
            example_db, params, rng=np.random.default_rng(0)
        )
        # "s" has substring count 2 < 3, so it is never expanded: "sa" absent.
        assert baseline.query("sa") == 0.0

    def test_noise_scaled_to_ell_squared(self, example_db):
        params = ConstructionParams.pure(epsilon=1.0, beta=0.1)
        baseline = build_simple_trie_baseline(
            example_db, params, rng=np.random.default_rng(0), max_depth=1
        )
        ell = example_db.max_length
        assert baseline.report["l1_sensitivity"] == ell * (ell + 1)
        assert baseline.error_bound > ell * ell  # Omega(ell^2 / eps) noise

    def test_max_nodes_cap_truncates(self, example_db):
        params = noiseless_params()
        baseline = build_simple_trie_baseline(
            example_db, params, rng=np.random.default_rng(0), max_nodes=3
        )
        assert baseline.report["truncated"]
        assert baseline.report["expanded_nodes"] <= 3

    def test_gaussian_flavour(self, example_db):
        params = ConstructionParams.approximate(1.0, 1e-5, beta=0.1)
        baseline = build_simple_trie_baseline(
            example_db, params, rng=np.random.default_rng(0), max_depth=1
        )
        assert baseline.metadata.delta == 1e-5


class TestExactCountingOracle:
    def test_query_matches_database(self, example_db):
        oracle = ExactCountingOracle(example_db)
        assert oracle.query("ab") == 4
        assert oracle.query("zzz") == 0
        assert oracle.error_bound == 0.0

    def test_document_count_mode(self, example_db):
        oracle = ExactCountingOracle(example_db, delta_cap=1)
        assert oracle.query("ab") == 3

    def test_mine_matches_exact_table(self, example_db):
        oracle = ExactCountingOracle(example_db)
        mined = dict(oracle.mine(4.0))
        exact = exact_count_table(example_db, example_db.max_length)
        expected = {p: float(c) for p, c in exact.items() if c >= 4}
        assert mined == expected

    def test_mine_with_length_filters(self, example_db):
        oracle = ExactCountingOracle(example_db)
        qgrams = oracle.mine(2.0, exact_length=2)
        assert all(len(p) == 2 for p, _ in qgrams)
