"""Tests for repro.core.database, repro.core.params and repro.core.counts."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import counts as core_counts
from repro.core.database import StringDatabase
from repro.core.params import DOCUMENT_COUNT, ConstructionParams
from repro.dp.composition import PrivacyBudget
from repro.exceptions import InvalidDocumentError, PrivacyParameterError
from repro.strings.alphabet import Alphabet

DOCS = st.lists(st.text(alphabet="abc", min_size=1, max_size=6), min_size=1, max_size=5)


class TestStringDatabase:
    def test_basic_properties(self, example_db):
        assert example_db.num_documents == 6
        assert example_db.max_length == 5
        assert example_db.alphabet_size == 4  # a, b, e, s
        assert example_db.total_length == 23
        assert len(example_db) == 6
        assert example_db[0] == "aaaa"
        assert list(example_db)[1] == "abe"

    def test_counts_match_example1(self, example_db):
        assert example_db.substring_count("ab") == 4
        assert example_db.document_count("ab") == 3
        assert example_db.count("ab", delta_cap=1) == 3
        assert example_db.count("ab") == 4

    def test_empty_database_rejected(self):
        with pytest.raises(InvalidDocumentError):
            StringDatabase([])

    def test_document_violating_declared_length_rejected(self):
        with pytest.raises(InvalidDocumentError):
            StringDatabase(["abcdef"], max_length=3)

    def test_document_outside_alphabet_rejected(self):
        with pytest.raises(InvalidDocumentError):
            StringDatabase(["abz"], alphabet=Alphabet(("a", "b")))

    def test_replace_document_creates_neighbor(self, example_db):
        neighbor = example_db.replace_document(0, "bbbb")
        assert neighbor.documents[0] == "bbbb"
        assert neighbor.documents[1:] == example_db.documents[1:]
        assert example_db.is_neighbor_of(neighbor)
        assert not example_db.is_neighbor_of(example_db)

    def test_replace_document_index_error(self, example_db):
        with pytest.raises(IndexError):
            example_db.replace_document(17, "a")

    @given(DOCS, st.text(alphabet="abc", min_size=1, max_size=3), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_counts_match_naive_reference(self, documents, pattern, delta):
        database = StringDatabase(documents)
        assert database.count(pattern, delta) == core_counts.count_delta(
            database, pattern, delta
        )
        assert database.substring_count(pattern) == core_counts.substring_count(
            database, pattern
        )
        assert database.document_count(pattern) == core_counts.document_count(
            database, pattern
        )


class TestExactCountTable:
    def test_table_has_all_substrings(self, example_db):
        table = core_counts.exact_count_table(example_db, delta=example_db.max_length)
        assert table["ab"] == 4
        assert table["absab"] == 1
        assert "zz" not in table

    def test_table_respects_cap(self, example_db):
        table = core_counts.exact_count_table(example_db, delta=1, max_length=2)
        assert table["ab"] == 3
        assert max(len(p) for p in table) <= 2


class TestConstructionParams:
    def test_pure_and_approximate_constructors(self):
        pure = ConstructionParams.pure(1.0)
        assert pure.is_pure
        approx = ConstructionParams.approximate(1.0, 1e-5)
        assert not approx.is_pure
        assert approx.budget.delta == 1e-5

    def test_validation(self):
        with pytest.raises(PrivacyParameterError):
            ConstructionParams(budget=PrivacyBudget(1.0), beta=0.0)
        with pytest.raises(PrivacyParameterError):
            ConstructionParams(budget=PrivacyBudget(1.0), delta_cap=0)
        with pytest.raises(PrivacyParameterError):
            ConstructionParams(budget=PrivacyBudget(1.0), max_length=0)
        with pytest.raises(PrivacyParameterError):
            ConstructionParams(budget=PrivacyBudget(1.0), candidate_budget_fraction=1.5)

    def test_document_and_substring_modes(self):
        params = ConstructionParams.pure(1.0)
        doc = params.for_document_count()
        assert doc.delta_cap == DOCUMENT_COUNT
        assert doc.resolve_delta_cap(10) == 1
        sub = doc.for_substring_count()
        assert sub.delta_cap is None
        assert sub.resolve_delta_cap(10) == 10

    def test_resolve_max_length(self):
        params = ConstructionParams.pure(1.0, max_length=8)
        assert params.resolve_max_length(5) == 8
        with pytest.raises(PrivacyParameterError):
            params.resolve_max_length(9)
        default = ConstructionParams.pure(1.0)
        assert default.resolve_max_length(5) == 5

    def test_delta_cap_never_exceeds_ell(self):
        params = ConstructionParams.pure(1.0, delta_cap=100)
        assert params.resolve_delta_cap(7) == 7
