"""Property tests: the object and array construction pipelines are
bit-identical.

``ConstructionParams.build_backend`` is a speed knob, nothing else: for any
documents, any structure kind, any seed and any budget flavour the two
pipelines must produce identical noisy counts, identical metadata and
report, identical prune sets and identical release digests — and they must
abort identically when a candidate level overflows.  These tests pin that
contract, plus the array primitives' own equivalences (sort-join counting
vs the engine layer, the flat heavy-path decomposition vs the object one,
the flat prefix-sum release vs the per-sequence one).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Dataset
from repro.core.array_build import SortJoinCounter, pack_strings
from repro.core.candidate_set import build_candidate_set
from repro.core.construction import build_private_counting_structure
from repro.core.database import StringDatabase
from repro.core.params import ConstructionParams
from repro.core.qgram_structure import (
    theorem3_qgram_structure,
    theorem4_qgram_structure,
)
from repro.counting import make_engine
from repro.dp.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.dp.prefix_sums import PrefixSumMechanism
from repro.exceptions import ConstructionAborted
from repro.strings.trie import Trie
from repro.trees.heavy_path import (
    FlatHeavyPathDecomposition,
    HeavyPathDecomposition,
)

DOCS = st.lists(st.text(alphabet="ab", min_size=1, max_size=8), min_size=1, max_size=6)
WIDE_DOCS = st.lists(
    st.text(alphabet="acé☃", min_size=1, max_size=7), min_size=1, max_size=5
)
SEEDS = st.integers(min_value=0, max_value=2**16)
BUDGETS = st.sampled_from(["noiseless", "pure", "approx"])


def base_params(budget: str) -> ConstructionParams:
    if budget == "noiseless":
        return ConstructionParams.pure(1.0, beta=0.1, noiseless=True, threshold=1.0)
    if budget == "pure":
        return ConstructionParams.pure(8.0, beta=0.1)
    return ConstructionParams.approximate(8.0, 1e-6, beta=0.1)


def run_both(build, params):
    """Run a builder under both backends; abort outcomes count as results."""
    outcomes = []
    for backend in ("object", "array"):
        try:
            outcomes.append(build(replace(params, build_backend=backend)))
        except ConstructionAborted as error:
            outcomes.append(("aborted", str(error), error.level))
    return outcomes


def assert_identical_structures(first, second) -> None:
    aborted = isinstance(first, tuple) or isinstance(second, tuple)
    if aborted:
        assert first == second
        return
    assert first.metadata == second.metadata
    assert first.report == second.report
    assert dict(first.items()) == dict(second.items())
    assert first.query("") == second.query("")
    assert first.content_digest() == second.content_digest()


class TestPipelineEquivalence:
    @given(DOCS, SEEDS, BUDGETS)
    @settings(max_examples=30, deadline=None)
    def test_heavy_path_bit_identical(self, docs, seed, budget):
        database = StringDatabase(docs)
        first, second = run_both(
            lambda params: build_private_counting_structure(
                database, params, rng=np.random.default_rng(seed)
            ),
            base_params(budget),
        )
        assert_identical_structures(first, second)

    @given(WIDE_DOCS, SEEDS, BUDGETS)
    @settings(max_examples=15, deadline=None)
    def test_heavy_path_bit_identical_wide_alphabet(self, docs, seed, budget):
        database = StringDatabase(docs)
        first, second = run_both(
            lambda params: build_private_counting_structure(
                database, params, rng=np.random.default_rng(seed)
            ),
            base_params(budget),
        )
        assert_identical_structures(first, second)

    @given(DOCS, SEEDS, BUDGETS, st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_qgram_t3_bit_identical(self, docs, seed, budget, q):
        database = StringDatabase(docs)
        q = min(q, database.max_length)
        first, second = run_both(
            lambda params: theorem3_qgram_structure(
                database, q, params, rng=np.random.default_rng(seed)
            ),
            base_params(budget),
        )
        assert_identical_structures(first, second)

    @given(DOCS, SEEDS, st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_qgram_t4_bit_identical(self, docs, seed, q):
        database = StringDatabase(docs)
        q = min(q, database.max_length)
        first, second = run_both(
            lambda params: theorem4_qgram_structure(
                database, q, params, rng=np.random.default_rng(seed)
            ),
            base_params("approx"),
        )
        assert_identical_structures(first, second)

    @given(DOCS, SEEDS, BUDGETS)
    @settings(max_examples=25, deadline=None)
    def test_candidate_sets_identical(self, docs, seed, budget):
        database = StringDatabase(docs)
        results = []
        for backend in ("object", "array"):
            params = replace(base_params(budget), build_backend=backend)
            try:
                results.append(
                    build_candidate_set(
                        database, params, rng=np.random.default_rng(seed)
                    )
                )
            except ConstructionAborted as error:
                results.append(("aborted", str(error), error.level))
        first, second = results
        if isinstance(first, tuple) or isinstance(second, tuple):
            assert first == second
            return
        assert first.levels == second.levels
        assert first.by_length == second.by_length
        assert first.noisy_counts == second.noisy_counts
        assert first.alpha == second.alpha
        assert first.threshold == second.threshold

    def test_dataset_backend_knob_round_trips(self, small_db):
        build = lambda backend: (  # noqa: E731 - tiny local factory
            Dataset.from_database(small_db)
            .with_budget(5.0)
            .with_beta(0.1)
            .with_build_backend(backend)
            .build("heavy-path", rng=np.random.default_rng(3))
        )
        array_counter = build("array")
        object_counter = build("object")
        assert array_counter.content_digest() == object_counter.content_digest()
        probes = object_counter.patterns() + ["", "ab", "zz"]
        assert np.array_equal(
            array_counter.query_many(probes), object_counter.query_many(probes)
        )

    def test_timings_are_diagnostics_not_payload(self, small_db, rng):
        from repro._deprecation import reset_deprecation_warnings

        params = ConstructionParams.pure(5.0, beta=0.1)
        structure = build_private_counting_structure(small_db, params, rng=rng)
        # The modern surface: a span-tree profile...
        assert structure.profile is not None
        assert structure.profile.build_backend == "array"
        assert structure.profile.total_seconds > 0
        assert "candidates" in structure.profile.stages()
        # ...and the deprecated dict view derived from it, warning once.
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="timings"):
            timings = structure.timings
        assert timings["build_backend"] == "array"
        assert timings["total_seconds"] > 0
        assert "candidates" in timings["stages"]
        payload = structure.to_dict()
        assert "construction_seconds" not in payload["report"]
        assert "timings" not in payload
        assert "profile" not in payload

    def test_compiled_handoff_matches_from_structure(self, small_db):
        params = ConstructionParams.pure(5.0, beta=0.1, build_backend="array")
        structure = build_private_counting_structure(
            small_db, params, rng=np.random.default_rng(9)
        )
        handoff = structure.compiled()
        handoff.assert_immutable()
        from repro.serving.compiled import CompiledTrie

        rebuilt = CompiledTrie.from_structure(structure)
        probes = structure.patterns() + ["", "ab", "ba", "zzzz"]
        for pattern in probes:
            assert handoff.query(pattern) == rebuilt.query(pattern)
        assert np.array_equal(
            handoff.batch_query(probes), rebuilt.batch_query(probes)
        )
        assert handoff.content_digest() == rebuilt.content_digest()
        # Fresh cache wrapper per compiled() call, shared frozen arrays.
        handoff_misses = handoff.cache_info().misses
        twin = structure.compiled(cache_size=2)
        assert twin.cache_info().misses == 0
        twin.query("ab")
        assert twin.cache_info().misses == 1
        assert handoff.cache_info().misses == handoff_misses


class TestArrayPrimitives:
    @given(DOCS, st.integers(min_value=1, max_value=5), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_sortjoin_counts_match_engines(self, docs, width, delta_cap):
        database = StringDatabase(docs)
        counter = SortJoinCounter(database)
        rng = np.random.default_rng(width * 31 + delta_cap)
        patterns = ["".join(rng.choice(list("ab"), size=width)) for _ in range(12)]
        patterns += [doc[:width] for doc in docs if len(doc) >= width]
        matrix, _ = pack_strings(patterns)
        got = counter.counts(matrix, delta_cap)
        expected = make_engine("naive", database.documents).count_many(
            patterns, delta_cap
        )
        assert np.array_equal(got, expected)

    @given(DOCS)
    @settings(max_examples=30, deadline=None)
    def test_flat_decomposition_matches_object(self, docs):
        trie = Trie(docs)
        object_decomposition = HeavyPathDecomposition(
            trie.root, lambda node: list(node.children.values())
        )
        order = [trie.root]
        ids = {id(trie.root): 0}
        for node in order:
            for child in node.children.values():
                ids[id(child)] = len(order)
                order.append(child)
        # Depth-major BFS ids with dict-order siblings, as the radix build
        # lays them out.
        parents = np.array(
            [-1 if nd.parent is None else ids[id(nd.parent)] for nd in order]
        )
        depths = np.array([nd.depth for nd in order])
        children: list[int] = []
        child_start = np.zeros(len(order), dtype=np.int64)
        child_end = np.zeros(len(order), dtype=np.int64)
        for index, node in enumerate(order):
            child_start[index] = len(children)
            children.extend(ids[id(child)] for child in node.children.values())
            child_end[index] = len(children)
        flat = FlatHeavyPathDecomposition(
            parents, depths, child_start, child_end, np.array(children, dtype=np.int64)
        )
        assert flat.num_paths == object_decomposition.num_paths
        assert [ids[id(path.root)] for path in object_decomposition.paths] == (
            flat.path_start.tolist()
        )
        for path in object_decomposition.paths:
            lo = flat.path_offsets[path.index]
            hi = flat.path_offsets[path.index + 1]
            assert [ids[id(node)] for node in path.nodes] == (
                flat.path_nodes[lo:hi].tolist()
            )
        for node in order:
            assert (
                object_decomposition.subtree_size[node]
                == flat.subtree_size[ids[id(node)]]
            )

    @pytest.mark.parametrize(
        "mechanism",
        [LaplaceMechanism(0.5), GaussianMechanism(0.5, 1e-6)],
        ids=["laplace", "gaussian"],
    )
    @given(
        st.lists(
            st.lists(
                st.floats(-1e4, 1e4, allow_nan=False), min_size=0, max_size=24
            ),
            min_size=0,
            max_size=8,
        ),
        SEEDS,
    )
    @settings(max_examples=40, deadline=None)
    def test_flat_prefix_release_bit_identical(self, mechanism, sequences, seed):
        max_length = max([len(seq) for seq in sequences] + [1])
        prefix = PrefixSumMechanism(
            mechanism,
            total_l1_sensitivity=4.0,
            per_sequence_l1_sensitivity=2.0,
            max_length=max_length,
        )
        reference = prefix.release_many(sequences, np.random.default_rng(seed))
        flat = (
            np.concatenate([np.asarray(s, dtype=np.float64) for s in sequences])
            if sequences
            else np.zeros(0)
        )
        offsets = np.concatenate(
            ([0], np.cumsum([len(s) for s in sequences]))
        ).astype(np.int64)
        got = prefix.release_many_flat(flat, offsets, np.random.default_rng(seed))
        expected = (
            np.concatenate([noisy.values for noisy in reference])
            if sequences
            else np.zeros(0)
        )
        assert np.array_equal(expected, got)
