"""Tests for repro.core.construction (Theorems 1 and 2)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidate_set import build_candidate_set
from repro.core.construction import (
    annotate_trie_with_exact_counts,
    build_private_counting_structure,
    build_theorem1_structure,
    build_theorem2_structure,
)
from repro.core.database import StringDatabase
from repro.core.params import ConstructionParams
from repro.strings.naive import all_substrings, count_delta
from repro.strings.trie import Trie

DOCS = st.lists(st.text(alphabet="ab", min_size=1, max_size=6), min_size=1, max_size=4)


def noiseless_params(**kwargs) -> ConstructionParams:
    kwargs.setdefault("threshold", 1.0)
    return ConstructionParams.pure(epsilon=1.0, beta=0.1, noiseless=True, **kwargs)


class TestTrieAnnotation:
    def test_counts_on_example(self, example_db):
        trie = Trie(["a", "ab", "abe", "b", "be", "bee", "zz"])
        annotate_trie_with_exact_counts(trie, example_db, example_db.max_length)
        assert trie.find("ab").count == 4
        assert trie.find("be").count == 4
        assert trie.find("zz").count == 0
        assert trie.root.count == example_db.total_length

    def test_document_count_annotation(self, example_db):
        trie = Trie(["ab", "be"])
        annotate_trie_with_exact_counts(trie, example_db, 1)
        assert trie.find("ab").count == 3
        assert trie.find("be").count == 4

    @given(DOCS, st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_annotation_matches_naive_counts(self, documents, delta):
        database = StringDatabase(documents)
        patterns = sorted(all_substrings(documents, max_length=4))[:20]
        trie = Trie(patterns)
        annotate_trie_with_exact_counts(trie, database, delta)
        for pattern in patterns:
            node = trie.find(pattern)
            assert node.count == count_delta(pattern, documents, delta)

    def test_counts_monotone_along_trie_paths(self, example_db):
        params = noiseless_params()
        candidates = build_candidate_set(example_db, params)
        trie = Trie(sorted(candidates.all_strings()))
        annotate_trie_with_exact_counts(trie, example_db, example_db.max_length)
        for node in trie.iter_nodes():
            if node.parent is not None and node.parent.count is not None:
                assert node.count <= node.parent.count


class TestNoiselessConstruction:
    """The noiseless pipeline must reproduce exact counts for every stored
    pattern, which validates the heavy-path + prefix-sum plumbing."""

    def test_exact_counts_recovered(self, example_db):
        structure = build_private_counting_structure(
            example_db, noiseless_params(), rng=np.random.default_rng(0)
        )
        for pattern in ["a", "ab", "abe", "absab", "be", "bee", "bees", "b"]:
            assert structure.query(pattern) == pytest.approx(
                example_db.substring_count(pattern)
            )

    def test_document_count_mode(self, example_db):
        params = noiseless_params(delta_cap=1)
        structure = build_private_counting_structure(
            example_db, params, rng=np.random.default_rng(0)
        )
        assert structure.query("ab") == pytest.approx(3)
        assert structure.query("be") == pytest.approx(4)

    def test_absent_patterns_return_zero(self, example_db):
        structure = build_private_counting_structure(
            example_db, noiseless_params(), rng=np.random.default_rng(0)
        )
        assert structure.query("zzz") == 0.0
        # The empty pattern is stored at the trie root and counts, following
        # the paper's convention, the total length of the database.
        assert structure.query("") == pytest.approx(example_db.total_length)

    def test_pruning_removes_zero_count_candidates(self, example_db):
        structure = build_private_counting_structure(
            example_db, noiseless_params(), rng=np.random.default_rng(0)
        )
        for pattern, count in structure.items():
            assert count >= 1.0
        assert structure.report["trie_nodes_after_pruning"] <= structure.report[
            "trie_nodes_before_pruning"
        ]

    @given(DOCS)
    @settings(max_examples=20, deadline=None)
    def test_noiseless_structure_is_exact_on_random_databases(self, documents):
        database = StringDatabase(documents)
        structure = build_private_counting_structure(
            database, noiseless_params(), rng=np.random.default_rng(1)
        )
        for pattern in all_substrings(documents, max_length=3):
            assert structure.query(pattern) == pytest.approx(
                database.substring_count(pattern)
            )


class TestPrivateConstruction:
    def test_budget_accounting_pure(self, small_db):
        params = ConstructionParams.pure(epsilon=2.0, beta=0.1)
        structure = build_private_counting_structure(
            small_db, params, rng=np.random.default_rng(3)
        )
        assert structure.report["privacy_spent_epsilon"] <= 2.0 + 1e-9
        assert structure.metadata.construction.startswith("theorem-1")

    def test_budget_accounting_approx(self, small_db):
        params = ConstructionParams.approximate(epsilon=2.0, delta=1e-5, beta=0.1)
        structure = build_private_counting_structure(
            small_db, params, rng=np.random.default_rng(3)
        )
        assert structure.report["privacy_spent_epsilon"] <= 2.0 + 1e-9
        assert structure.report["privacy_spent_delta"] <= 1e-5 + 1e-12
        assert structure.metadata.construction.startswith("theorem-2")

    def test_stored_counts_error_within_bound(self, small_db, rng):
        """With an exact candidate set and no pruning, every stored count's
        error must respect the counting-stage bound (w.h.p.)."""
        exact_candidates = build_candidate_set(small_db, noiseless_params())
        params = ConstructionParams.pure(
            epsilon=1.0, beta=0.05, threshold=-math.inf
        )
        structure = build_private_counting_structure(
            small_db, params, rng=rng, candidate_set=exact_candidates
        )
        for pattern, noisy in structure.items():
            exact = small_db.substring_count(pattern)
            assert abs(noisy - exact) <= structure.error_bound

    def test_stored_counts_error_within_bound_gaussian(self, small_db, rng):
        exact_candidates = build_candidate_set(small_db, noiseless_params())
        params = ConstructionParams.approximate(
            epsilon=1.0, delta=1e-6, beta=0.05, threshold=-math.inf, delta_cap=1
        )
        structure = build_private_counting_structure(
            small_db, params, rng=rng, candidate_set=exact_candidates
        )
        for pattern, noisy in structure.items():
            exact = small_db.document_count(pattern)
            assert abs(noisy - exact) <= structure.error_bound

    def test_default_threshold_prunes_toy_database(self, example_db):
        """On a six-document database the calibrated threshold exceeds every
        count, so the structure stores (almost surely) nothing — the
        documented behaviour for toy inputs."""
        params = ConstructionParams.pure(epsilon=1.0, beta=0.1)
        structure = build_private_counting_structure(
            example_db, params, rng=np.random.default_rng(5)
        )
        assert structure.metadata.threshold > example_db.total_length
        assert structure.query("zzzz") == 0.0

    def test_wrapper_functions(self, small_db):
        pure = build_theorem1_structure(
            small_db, epsilon=1.0, rng=np.random.default_rng(0)
        )
        assert pure.metadata.delta == 0.0
        approx = build_theorem2_structure(
            small_db, epsilon=1.0, delta=1e-5, rng=np.random.default_rng(0)
        )
        assert approx.metadata.delta == 1e-5

    def test_report_fields_present(self, small_db):
        structure = build_theorem1_structure(
            small_db, epsilon=1.0, rng=np.random.default_rng(0)
        )
        for key in (
            "candidate_size",
            "trie_nodes_before_pruning",
            "trie_nodes_after_pruning",
            "num_heavy_paths",
            "roots_error_bound",
            "prefix_sums_error_bound",
            "absent_pattern_bound",
        ):
            assert key in structure.report

    def test_metadata_records_parameters(self, small_db):
        params = ConstructionParams.pure(epsilon=1.5, beta=0.2, delta_cap=1)
        structure = build_private_counting_structure(
            small_db, params, rng=np.random.default_rng(0)
        )
        metadata = structure.metadata
        assert metadata.epsilon == 1.5
        assert metadata.beta == 0.2
        assert metadata.delta_cap == 1
        assert metadata.num_documents == small_db.num_documents
        assert metadata.max_length == small_db.max_length
