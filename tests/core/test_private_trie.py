"""Tests for repro.core.private_trie."""

from __future__ import annotations

import pytest

from repro.core.private_trie import PrivateCountingTrie, StructureMetadata
from repro.strings.trie import Trie


def make_structure(counts: dict[str, float], **metadata_overrides) -> PrivateCountingTrie:
    trie = Trie()
    for pattern, count in counts.items():
        node = trie.insert(pattern)
        node.noisy_count = count
    metadata = StructureMetadata(
        epsilon=1.0,
        delta=0.0,
        beta=0.1,
        delta_cap=5,
        max_length=5,
        num_documents=10,
        alphabet_size=3,
        error_bound=metadata_overrides.pop("error_bound", 2.0),
        threshold=metadata_overrides.pop("threshold", 4.0),
        **metadata_overrides,
    )
    return PrivateCountingTrie(trie=trie, metadata=metadata)


class TestQueries:
    def test_query_present_and_absent(self):
        structure = make_structure({"ab": 7.5, "abc": 3.0})
        assert structure.query("ab") == 7.5
        assert structure.query("abc") == 3.0
        assert structure.query("zz") == 0.0
        assert "ab" in structure
        assert "zz" not in structure

    def test_intermediate_nodes_without_counts_are_absent(self):
        structure = make_structure({"abc": 3.0})
        # "a" and "ab" exist as trie nodes but carry no stored count.
        assert structure.query("ab") == 0.0
        assert "ab" not in structure

    def test_items_and_patterns(self):
        structure = make_structure({"a": 1.0, "b": 2.0})
        assert dict(structure.items()) == {"a": 1.0, "b": 2.0}
        assert sorted(structure.patterns()) == ["a", "b"]
        assert structure.num_stored_patterns == 2

    def test_depth_and_num_nodes(self):
        structure = make_structure({"abcd": 1.0})
        assert structure.depth() == 4
        assert structure.num_nodes == 5


class TestMining:
    def test_threshold_filtering(self):
        structure = make_structure({"a": 10.0, "ab": 6.0, "b": 1.0})
        mined = structure.mine(5.0)
        assert [pattern for pattern, _ in mined] == ["a", "ab"]

    def test_length_filters(self):
        structure = make_structure({"a": 10.0, "ab": 10.0, "abc": 10.0})
        assert [p for p, _ in structure.mine(1.0, min_length=2)] == ["ab", "abc"]
        assert [p for p, _ in structure.mine(1.0, max_length=1)] == ["a"]
        assert [p for p, _ in structure.mine(1.0, exact_length=2)] == ["ab"]

    def test_results_sorted_by_count_then_pattern(self):
        structure = make_structure({"x": 5.0, "a": 5.0, "b": 9.0})
        mined = structure.mine(1.0)
        assert mined[0][0] == "b"
        assert [p for p, _ in mined[1:]] == ["a", "x"]

    def test_mining_alpha_accounts_for_absent_patterns(self):
        structure = make_structure({"a": 10.0})
        structure.report["absent_pattern_bound"] = 9.0
        assert structure.mining_alpha(threshold=2.0) == pytest.approx(7.0)
        assert structure.mining_alpha(threshold=20.0) == pytest.approx(2.0)


class TestSerialization:
    def test_roundtrip_dict(self):
        structure = make_structure({"ab": 4.0, "ba": 2.5})
        structure.report["candidate_size"] = 17
        payload = structure.to_dict()
        restored = PrivateCountingTrie.from_dict(payload)
        assert dict(restored.items()) == dict(structure.items())
        assert restored.metadata == structure.metadata
        assert restored.report["candidate_size"] == 17

    def test_roundtrip_json(self):
        structure = make_structure({"ab": 4.0})
        restored = PrivateCountingTrie.from_json(structure.to_json())
        assert restored.query("ab") == 4.0

    def test_metadata_properties(self):
        structure = make_structure({"a": 1.0})
        assert structure.error_bound == 2.0
        assert structure.privacy_budget.epsilon == 1.0
        assert structure.privacy_budget.is_pure


class TestSaveLoad:
    def _structure(self):
        from repro.core.private_trie import PrivateCountingTrie, StructureMetadata
        from repro.strings.trie import Trie

        trie = Trie()
        for pattern, count in (("ab", 4.5), ("abe", 1.2), ("b", 7.0)):
            node = trie.insert(pattern)
            node.noisy_count = count
        metadata = StructureMetadata(
            epsilon=1.0,
            delta=0.0,
            beta=0.1,
            delta_cap=5,
            max_length=5,
            num_documents=6,
            alphabet_size=4,
            error_bound=3.0,
            threshold=6.0,
            construction="unit-test",
        )
        return PrivateCountingTrie(trie=trie, metadata=metadata, report={"k": 1})

    def test_save_and_load_roundtrip(self, tmp_path):
        from repro.core.private_trie import PrivateCountingTrie

        structure = self._structure()
        path = structure.save(tmp_path / "release.json")
        assert path.exists()
        restored = PrivateCountingTrie.load(path)
        assert restored.metadata == structure.metadata
        assert dict(restored.items()) == dict(structure.items())
        assert restored.report == structure.report

    def test_save_accepts_string_paths(self, tmp_path):
        from repro.core.private_trie import PrivateCountingTrie

        structure = self._structure()
        path = structure.save(str(tmp_path / "release.json"))
        assert PrivateCountingTrie.load(str(path)).query("ab") == 4.5
