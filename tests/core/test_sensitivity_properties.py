"""Property-based tests of the sensitivity bounds the privacy analysis uses.

The privacy of the constructions rests on a handful of combinatorial claims
about how counts can change between neighboring databases (Observation 1,
Corollary 3, Lemma 8, Lemma 10, Lemma 16).  These tests check those claims
empirically on random neighboring databases — if any of them failed, the
calibrated noise would be too small and the mechanisms would not be
differentially private.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidate_set import build_candidate_set
from repro.core.construction import annotate_trie_with_exact_counts
from repro.core.database import StringDatabase
from repro.core.params import ConstructionParams
from repro.strings.naive import all_substrings, count_delta, count_occurrences
from repro.strings.trie import Trie
from repro.trees.heavy_path import HeavyPathDecomposition

DOC = st.text(alphabet="ab", min_size=1, max_size=8)
DOCS = st.lists(DOC, min_size=1, max_size=4)


def noiseless_params() -> ConstructionParams:
    return ConstructionParams.pure(1.0, beta=0.1, noiseless=True, threshold=1.0)


class TestObservation1AndCorollary3:
    @given(DOC, st.integers(1, 8))
    @settings(max_examples=60)
    def test_cumulative_count_of_fixed_length_substrings(self, document, length):
        """Observation 1: the total number of occurrences of all length-m
        substrings of S is at most |S| <= ell."""
        total = sum(
            count_occurrences(pattern, document)
            for pattern in {document[i : i + length] for i in range(len(document))}
            if len(pattern) == length
        )
        assert total <= len(document)

    @given(DOCS, DOC, st.integers(0, 3), st.integers(1, 3), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_l1_sensitivity_of_fixed_length_counts(
        self, documents, replacement, index, length, delta
    ):
        """Corollary 3 / 6: replacing one document changes the counts of all
        length-m patterns by at most 2 ell in total (and each single count by
        at most Delta)."""
        database = documents
        neighbor = list(documents)
        neighbor[index % len(documents)] = replacement
        ell = max(max(len(d) for d in database), len(replacement))
        patterns = {
            p
            for p in all_substrings(list(database) + [replacement])
            if len(p) == length
        }
        total_change = 0
        for pattern in patterns:
            before = count_delta(pattern, database, delta)
            after = count_delta(pattern, neighbor, delta)
            assert abs(before - after) <= delta
            total_change += abs(before - after)
        assert total_change <= 2 * ell


class TestHeavyPathSensitivity:
    """Lemma 8 / Lemma 10 / Lemma 16 on the candidate trie."""

    def _trie_and_decomposition(self, documents, delta):
        database = StringDatabase(documents)
        candidates = build_candidate_set(database, noiseless_params())
        trie = Trie(sorted(candidates.all_strings()))
        annotate_trie_with_exact_counts(trie, database, delta)
        decomposition = HeavyPathDecomposition(
            trie.root, lambda node: list(node.children.values())
        )
        return trie, decomposition

    @given(DOCS, st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_lemma10_root_count_budget(self, documents, delta):
        """The counts of all heavy-path roots, restricted to the occurrences
        inside any single document S, sum to at most
        ell * (floor(log |T_C|) + 1)."""
        trie, decomposition = self._trie_and_decomposition(documents, delta)
        log_bound = math.floor(math.log2(max(2, trie.num_nodes))) + 1
        for document in documents:
            total = 0
            for root in decomposition.path_roots():
                pattern = root.string()
                if pattern == "":
                    continue
                total += min(delta, count_occurrences(pattern, document))
            assert total <= len(document) * log_bound

    @given(DOCS, st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_lemma8_difference_sequence_l1_budget(self, documents, delta):
        """For every heavy path p with root r, the L1 norm of the part of the
        difference sequence attributable to one document S is at most
        count_Delta(str(r), S)."""
        trie, decomposition = self._trie_and_decomposition(documents, delta)
        for document in documents:
            for path in decomposition.paths:
                counts = [
                    min(delta, count_occurrences(node.string(), document))
                    if node.string()
                    else min(delta, len(document))
                    for node in path.nodes
                ]
                l1 = sum(
                    abs(counts[i] - counts[i - 1]) for i in range(1, len(counts))
                )
                assert l1 <= counts[0]

    @given(DOCS, st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_counts_monotone_non_increasing_down_paths(self, documents, delta):
        """count_Delta(str(v), D) never increases when walking down the trie
        (str(parent) is a prefix of str(child))."""
        trie, decomposition = self._trie_and_decomposition(documents, delta)
        for path in decomposition.paths:
            values = [node.count for node in path.nodes]
            assert all(a >= b for a, b in zip(values, values[1:]))


class TestCandidateTrieSizeClaims:
    @given(DOCS)
    @settings(max_examples=25, deadline=None)
    def test_candidate_set_size_bound(self, documents):
        """Lemma 6: |C| <= n^2 ell^3 (the exact candidate set is much smaller,
        but it must never exceed the paper's bound)."""
        database = StringDatabase(documents)
        candidates = build_candidate_set(database, noiseless_params())
        n, ell = database.num_documents, database.max_length
        assert candidates.size <= n * n * ell**3

    @given(DOCS)
    @settings(max_examples=25, deadline=None)
    def test_level_sets_bounded_by_n_ell(self, documents):
        database = StringDatabase(documents)
        candidates = build_candidate_set(database, noiseless_params())
        for strings in candidates.levels.values():
            assert len(strings) <= database.num_documents * database.max_length
