"""Edge cases and cross-cutting consistency checks for the construction
pipeline that are not covered by the per-module tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import ExactCountingOracle
from repro.core.construction import build_private_counting_structure
from repro.core.database import StringDatabase
from repro.core.params import DOCUMENT_COUNT, ConstructionParams
from repro.core.private_trie import PrivateCountingTrie
from repro.core.qgram_structure import build_qgram_structure
from repro.exceptions import PrivacyParameterError
from repro.strings.naive import all_substrings


def noiseless_params(**kwargs) -> ConstructionParams:
    kwargs.setdefault("threshold", 1.0)
    return ConstructionParams.pure(epsilon=1.0, beta=0.1, noiseless=True, **kwargs)


class TestDegenerateDatabases:
    def test_single_document_single_character(self):
        database = StringDatabase(["a"])
        structure = build_private_counting_structure(database, noiseless_params())
        assert structure.query("a") == 1.0
        assert structure.query("b") == 0.0
        assert structure.metadata.max_length == 1

    def test_single_repeated_character_document(self):
        database = StringDatabase(["aaaaaaaa"])
        structure = build_private_counting_structure(database, noiseless_params())
        # count(a^k, a^8) = 8 - k + 1.
        for k in range(1, 9):
            assert structure.query("a" * k) == pytest.approx(9 - k)

    def test_identical_documents(self):
        database = StringDatabase(["abab"] * 5)
        structure = build_private_counting_structure(database, noiseless_params())
        assert structure.query("ab") == pytest.approx(10)
        doc_structure = build_private_counting_structure(
            database, noiseless_params(delta_cap=DOCUMENT_COUNT)
        )
        assert doc_structure.query("ab") == pytest.approx(5)

    def test_documents_of_mixed_lengths(self):
        database = StringDatabase(["a", "ab", "abc", "abcd"])
        structure = build_private_counting_structure(database, noiseless_params())
        oracle = ExactCountingOracle(database)
        for pattern in all_substrings(database.documents):
            assert structure.query(pattern) == pytest.approx(oracle.query(pattern))

    def test_alphabet_with_unicode_symbols(self):
        database = StringDatabase(["αβγ", "βγα", "γγγ"])
        structure = build_private_counting_structure(database, noiseless_params())
        assert structure.query("γγ") == pytest.approx(2)
        assert structure.query("βγ") == pytest.approx(2)
        assert structure.query("δ") == 0.0

    def test_declared_max_length_larger_than_observed(self):
        database = StringDatabase(["abc", "cab"], max_length=10)
        structure = build_private_counting_structure(database, noiseless_params())
        assert structure.metadata.max_length == 10
        assert structure.query("ab") == pytest.approx(2)


class TestParameterHandling:
    def test_delta_cap_larger_than_ell_is_clamped(self):
        database = StringDatabase(["abab", "baba"])
        params = noiseless_params(delta_cap=100)
        structure = build_private_counting_structure(database, params)
        assert structure.metadata.delta_cap == database.max_length

    def test_document_count_never_exceeds_substring_count(self, example_db):
        substring = build_private_counting_structure(example_db, noiseless_params())
        documents = build_private_counting_structure(
            example_db, noiseless_params(delta_cap=DOCUMENT_COUNT)
        )
        for pattern, _ in substring.items():
            assert documents.query(pattern) <= substring.query(pattern) + 1e-9

    def test_threshold_override_keeps_more_patterns(self, example_db, rng):
        params_low = ConstructionParams.pure(epsilon=5.0, beta=0.1, threshold=1.0)
        params_default = ConstructionParams.pure(epsilon=5.0, beta=0.1)
        low = build_private_counting_structure(
            example_db, params_low, rng=np.random.default_rng(7)
        )
        default = build_private_counting_structure(
            example_db, params_default, rng=np.random.default_rng(7)
        )
        assert low.num_stored_patterns >= default.num_stored_patterns

    def test_invalid_beta_rejected(self):
        with pytest.raises(PrivacyParameterError):
            ConstructionParams.pure(epsilon=1.0, beta=0.0)
        with pytest.raises(PrivacyParameterError):
            ConstructionParams.pure(epsilon=1.0, beta=1.0)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(PrivacyParameterError):
            ConstructionParams.pure(epsilon=0.0)
        with pytest.raises(PrivacyParameterError):
            ConstructionParams.pure(epsilon=-2.0)

    def test_qgram_q_equal_one(self, example_db):
        structure = build_qgram_structure(example_db, 1, noiseless_params())
        for letter in "abes":
            assert structure.query(letter) == pytest.approx(
                example_db.substring_count(letter)
            )

    def test_qgram_q_equal_ell(self, example_db):
        q = example_db.max_length
        structure = build_qgram_structure(example_db, q, noiseless_params())
        assert structure.query("absab") == pytest.approx(1)


class TestStructureConsistency:
    def test_query_of_prefix_at_least_query_of_extension_noiseless(self, example_db):
        structure = build_private_counting_structure(example_db, noiseless_params())
        for pattern, count in structure.items():
            if len(pattern) > 1:
                prefix_count = structure.query(pattern[:-1])
                if prefix_count > 0:
                    assert prefix_count + 1e-9 >= count

    def test_mining_and_items_consistent(self, example_db):
        structure = build_private_counting_structure(example_db, noiseless_params())
        mined = dict(structure.mine(threshold=2.0))
        for pattern, count in structure.items():
            assert (count >= 2.0) == (pattern in mined)

    def test_serialization_roundtrip_preserves_queries_and_mining(self, example_db):
        structure = build_private_counting_structure(example_db, noiseless_params())
        restored = PrivateCountingTrie.from_json(structure.to_json())
        assert restored.metadata == structure.metadata
        for pattern, count in structure.items():
            assert restored.query(pattern) == pytest.approx(count)
        assert restored.mine(threshold=3.0) == structure.mine(threshold=3.0)

    def test_structure_is_pure_post_processing(self, example_db, rng):
        """Querying and mining must not touch the database: deleting the
        database reference after construction changes nothing."""
        structure = build_private_counting_structure(
            example_db, ConstructionParams.pure(epsilon=2.0, beta=0.1), rng=rng
        )
        before = [structure.query(p) for p in ("ab", "be", "zzz")]
        del example_db
        after = [structure.query(p) for p in ("ab", "be", "zzz")]
        assert before == after

    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=5), min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_noiseless_structure_matches_oracle_on_random_databases(self, documents):
        database = StringDatabase(documents)
        structure = build_private_counting_structure(database, noiseless_params())
        oracle = ExactCountingOracle(database)
        for pattern in all_substrings(documents):
            assert structure.query(pattern) == pytest.approx(oracle.query(pattern))
        # Patterns absent from the database must be reported as 0.
        for absent in ("zzz", "caaab"):
            if database.substring_count(absent) == 0:
                assert structure.query(absent) == 0.0

    @given(
        st.lists(st.text(alphabet="ab", min_size=1, max_size=5), min_size=1, max_size=4),
        st.integers(1, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_noiseless_delta_cap_matches_naive(self, documents, delta_cap):
        database = StringDatabase(documents)
        structure = build_private_counting_structure(
            database, noiseless_params(delta_cap=delta_cap)
        )
        oracle = ExactCountingOracle(database, delta_cap=delta_cap)
        for pattern in all_substrings(documents):
            assert structure.query(pattern) == pytest.approx(oracle.query(pattern))
