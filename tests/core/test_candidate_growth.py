"""Tests for repro.core.candidate_growth (one-letter-extension ablation)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidate_growth import (
    build_onestep_candidate_set,
    onestep_candidate_alpha,
)
from repro.core.candidate_set import build_candidate_set, candidate_alpha
from repro.core.database import StringDatabase
from repro.core.params import ConstructionParams
from repro.dp.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.strings.naive import all_substrings

DOCS = st.lists(st.text(alphabet="ab", min_size=1, max_size=6), min_size=1, max_size=4)


def noiseless_params(**kwargs) -> ConstructionParams:
    kwargs.setdefault("threshold", 1.0)
    return ConstructionParams.pure(epsilon=1.0, beta=0.1, noiseless=True, **kwargs)


class TestNoiselessCoverage:
    def test_levels_equal_occurring_substrings_per_length(self, example_db):
        candidates = build_onestep_candidate_set(example_db, noiseless_params())
        table = set(all_substrings(example_db.documents))
        for length, strings in candidates.levels.items():
            expected = sorted({s for s in table if len(s) == length})
            assert strings == expected

    def test_by_length_mirrors_levels(self, example_db):
        candidates = build_onestep_candidate_set(example_db, noiseless_params())
        for length, strings in candidates.by_length.items():
            assert strings == candidates.levels.get(length, [])

    def test_lengths_filter(self, example_db):
        candidates = build_onestep_candidate_set(
            example_db, noiseless_params(), lengths=[2, 3]
        )
        assert set(candidates.by_length) == {2, 3}

    def test_max_pattern_length_caps_growth(self, example_db):
        candidates = build_onestep_candidate_set(
            example_db, noiseless_params(), max_pattern_length=3
        )
        assert max(candidates.levels) <= 3

    def test_growth_stops_when_a_level_is_empty(self):
        database = StringDatabase(["ab", "ba"], max_length=6)
        candidates = build_onestep_candidate_set(database, noiseless_params())
        # No substring of length 3 exists, so lengths beyond 3 are never grown.
        assert max(candidates.levels) <= 3
        assert candidates.levels.get(3, []) == []

    @given(DOCS)
    @settings(max_examples=25, deadline=None)
    def test_exact_one_step_candidates_cover_all_substrings(self, documents):
        database = StringDatabase(documents)
        candidates = build_onestep_candidate_set(database, noiseless_params())
        covered = candidates.all_strings()
        for substring in all_substrings(documents):
            assert substring in covered

    @given(DOCS)
    @settings(max_examples=25, deadline=None)
    def test_one_step_and_doubling_agree_on_power_of_two_lengths(self, documents):
        """With exact counts and threshold 1, both strategies keep exactly the
        occurring patterns at power-of-two lengths."""
        database = StringDatabase(documents)
        onestep = build_onestep_candidate_set(database, noiseless_params())
        doubling = build_candidate_set(database, noiseless_params())
        for length in doubling.levels:
            if length in onestep.levels:
                assert set(doubling.levels[length]) == set(onestep.levels[length])


class TestNoiseCalibration:
    def test_alpha_at_least_doubling_alpha_under_same_budget(self, example_db):
        epsilon, beta = 1.0, 0.1
        ell = example_db.max_length
        doubling_levels = int(math.floor(math.log2(ell))) + 1
        onestep_levels = ell
        alpha_doubling = candidate_alpha(
            example_db.num_documents,
            ell,
            example_db.alphabet_size,
            LaplaceMechanism(epsilon / doubling_levels),
            beta / doubling_levels,
            ell,
        )
        alpha_onestep = onestep_candidate_alpha(
            example_db.num_documents,
            ell,
            example_db.alphabet_size,
            LaplaceMechanism(epsilon / onestep_levels),
            beta / onestep_levels,
            ell,
        )
        assert alpha_onestep >= alpha_doubling

    def test_alpha_ratio_grows_with_ell(self):
        epsilon, beta, n, sigma = 1.0, 0.1, 10, 4
        ratios = []
        for ell in (8, 32, 128):
            doubling_levels = int(math.floor(math.log2(ell))) + 1
            ratios.append(
                onestep_candidate_alpha(
                    n, ell, sigma, LaplaceMechanism(epsilon / ell), beta / ell, ell
                )
                / candidate_alpha(
                    n,
                    ell,
                    sigma,
                    LaplaceMechanism(epsilon / doubling_levels),
                    beta / doubling_levels,
                    ell,
                )
            )
        assert ratios == sorted(ratios)
        assert ratios[-1] > ratios[0]

    def test_gaussian_alpha_uses_sqrt_ell_delta(self):
        tight = onestep_candidate_alpha(
            10, 64, 4, GaussianMechanism(1.0, 1e-6), 0.01, 1
        )
        loose = onestep_candidate_alpha(
            10, 64, 4, GaussianMechanism(1.0, 1e-6), 0.01, 64
        )
        assert tight < loose

    def test_default_threshold_is_twice_alpha(self, example_db):
        params = ConstructionParams.pure(epsilon=5.0, beta=0.1)
        candidates = build_onestep_candidate_set(
            example_db, params, rng=np.random.default_rng(0)
        )
        assert candidates.threshold == pytest.approx(2.0 * candidates.alpha)


class TestPrivacyAccounting:
    def test_budget_split_over_ell_levels(self, example_db, rng):
        params = ConstructionParams.pure(epsilon=1.0, beta=0.1)
        candidates = build_onestep_candidate_set(example_db, params, rng=rng)
        # Every grown level spends epsilon / ell; the total never exceeds the
        # stage budget even when the growth stops early.
        assert candidates.accountant.total_epsilon <= params.budget.epsilon + 1e-9
        per_level = params.budget.epsilon / example_db.max_length
        for record in candidates.accountant.records:
            assert record.epsilon == pytest.approx(per_level)

    def test_gaussian_flavour_accounts_delta(self, example_db, rng):
        params = ConstructionParams.approximate(epsilon=1.0, delta=1e-6, beta=0.1)
        candidates = build_onestep_candidate_set(example_db, params, rng=rng)
        assert candidates.accountant.total_delta <= params.budget.delta + 1e-12
        assert candidates.accountant.total_epsilon <= params.budget.epsilon + 1e-9

    def test_explicit_stage_budget_used(self, example_db, rng):
        params = ConstructionParams.pure(epsilon=3.0, beta=0.1)
        candidates = build_onestep_candidate_set(
            example_db, params, budget=params.budget.scaled(1.0 / 3.0), rng=rng
        )
        assert candidates.accountant.total_epsilon <= 1.0 + 1e-9

    def test_noisy_counts_only_for_kept_strings(self, example_db, rng):
        params = ConstructionParams.pure(epsilon=1.0, beta=0.1)
        candidates = build_onestep_candidate_set(example_db, params, rng=rng)
        kept = set()
        for strings in candidates.levels.values():
            kept.update(strings)
        assert set(candidates.noisy_counts) == kept
