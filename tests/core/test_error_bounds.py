"""Tests for repro.core.error_bounds."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.error_bounds import (
    baseline_error_bound,
    candidate_stage_bound,
    counting_stage_bound,
    structure_error_bound,
    theorem1_asymptotic,
    theorem2_asymptotic,
    theorem3_asymptotic,
    theorem4_asymptotic,
    theorem5_lower_bound,
    theorem6_lower_bound,
    theorem7_lower_bound,
)
from repro.core.params import ConstructionParams


class TestImplementationBounds:
    def test_bounds_positive_and_monotone_in_ell(self):
        params = ConstructionParams.pure(1.0, beta=0.1)
        small = counting_stage_bound(10, 8, params)
        large = counting_stage_bound(10, 32, params)
        assert 0 < small < large

    def test_bounds_decrease_with_epsilon(self):
        weak = counting_stage_bound(10, 16, ConstructionParams.pure(0.5, beta=0.1))
        strong = counting_stage_bound(10, 16, ConstructionParams.pure(4.0, beta=0.1))
        assert strong < weak

    def test_candidate_stage_bound_positive(self):
        params = ConstructionParams.pure(1.0, beta=0.1)
        assert candidate_stage_bound(10, 16, 4, params) > 0

    def test_structure_bound_dominates_stage_bounds(self):
        params = ConstructionParams.pure(1.0, beta=0.1)
        total = structure_error_bound(10, 16, 4, params)
        assert total >= counting_stage_bound(10, 16, params)
        assert total >= candidate_stage_bound(10, 16, 4, params)

    def test_document_count_gaussian_beats_pure_for_large_ell(self):
        ell = 4096
        pure = counting_stage_bound(
            50, ell, ConstructionParams.pure(1.0, beta=0.1, delta_cap=1)
        )
        approx = counting_stage_bound(
            50, ell, ConstructionParams.approximate(1.0, 1e-6, beta=0.1, delta_cap=1)
        )
        assert approx < pure

    def test_actual_trie_size_tightens_the_bound(self):
        params = ConstructionParams.pure(1.0, beta=0.1)
        worst_case = counting_stage_bound(10, 16, params)
        tight = counting_stage_bound(
            10, 16, params, trie_size=100, num_paths=20, max_path_length=16
        )
        assert tight < worst_case

    def test_baseline_bound_grows_quadratically(self):
        params = ConstructionParams.pure(1.0, beta=0.1)
        small = baseline_error_bound(10, 16, params)
        large = baseline_error_bound(10, 64, params)
        assert large / small > 10  # ~quadratic growth (16x) minus log effects


class TestAsymptotics:
    def test_theorem1_linear_in_ell(self):
        small = theorem1_asymptotic(100, 64, 4, 1.0)
        large = theorem1_asymptotic(100, 128, 4, 1.0)
        assert 1.5 < large / small < 4

    def test_theorem2_sqrt_ell_for_document_count(self):
        small = theorem2_asymptotic(100, 64, 4, 1.0, 1e-6, delta_cap=1)
        large = theorem2_asymptotic(100, 256, 4, 1.0, 1e-6, delta_cap=1)
        assert 1.5 < large / small < 4  # sqrt(4) = 2 up to log factors

    def test_theorem3_below_theorem1(self):
        assert theorem3_asymptotic(100, 64, 4, 1.0) <= theorem1_asymptotic(
            100, 64, 4, 1.0
        )

    def test_theorem4_positive(self):
        assert theorem4_asymptotic(100, 64, 8, 4, 1.0, 1e-6, delta_cap=1) > 0

    @given(st.integers(4, 512), st.floats(0.1, 5.0))
    @settings(max_examples=40)
    def test_asymptotics_scale_inversely_with_epsilon(self, ell, epsilon):
        loose = theorem1_asymptotic(50, ell, 4, epsilon)
        tight = theorem1_asymptotic(50, ell, 4, 2 * epsilon)
        assert tight == pytest.approx(loose / 2)


class TestLowerBounds:
    def test_theorem6_is_half_ell(self):
        assert theorem6_lower_bound(100) == 50.0

    def test_theorem5_capped_by_n(self):
        assert theorem5_lower_bound(5, 10_000, 4, 0.01) == 5.0
        assert theorem5_lower_bound(10**9, 100, 4, 1.0) < 10**9

    def test_theorem5_requires_four_symbols(self):
        with pytest.raises(ValueError):
            theorem5_lower_bound(10, 10, 3, 1.0)

    def test_theorem7_pure_worse_than_approx(self):
        pure = theorem7_lower_bound(1000, 256, 3, 1.0, 0.0)
        approx = theorem7_lower_bound(1000, 256, 3, 1.0, 1e-6)
        assert approx < pure

    def test_upper_bounds_dominate_lower_bounds(self):
        """Sanity: for matching parameters the paper's upper bound shape sits
        above the lower bound shape (they differ by polylog factors)."""
        n, ell, sigma, eps = 1000, 256, 4, 1.0
        assert theorem1_asymptotic(n, ell, sigma, eps) >= theorem5_lower_bound(
            n, ell, sigma, eps
        )
        assert theorem1_asymptotic(n, ell, sigma, eps) >= theorem6_lower_bound(ell)
