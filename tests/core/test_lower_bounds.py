"""Tests for repro.core.lower_bounds (the hard instances of Thms 5-7)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lower_bounds import (
    exact_marginals,
    marginals_reduction,
    packing_database,
    packing_patterns,
    substring_lower_bound_pair,
)
from repro.strings.alphabet import Alphabet


class TestSubstringPair:
    def test_pair_structure(self):
        database, neighbor, pattern = substring_lower_bound_pair(ell=6, n=4)
        assert pattern == "a"
        assert database.documents[0] == "aaaaaa"
        assert all(doc == "bbbbbb" for doc in database.documents[1:])
        assert all(doc == "bbbbbb" for doc in neighbor.documents)
        assert database.is_neighbor_of(neighbor)

    def test_counts_differ_by_ell(self):
        database, neighbor, pattern = substring_lower_bound_pair(ell=9, n=3)
        assert database.substring_count(pattern) == 9
        assert neighbor.substring_count(pattern) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            substring_lower_bound_pair(0, 3)
        with pytest.raises(ValueError):
            substring_lower_bound_pair(3, 0)

    @given(st.integers(1, 30), st.integers(1, 10))
    @settings(max_examples=40)
    def test_pair_always_neighbors(self, ell, n):
        database, neighbor, _ = substring_lower_bound_pair(ell, n)
        assert database.is_neighbor_of(neighbor)


class TestPacking:
    def test_pattern_generation(self, rng):
        patterns = packing_patterns(3, 6, ("c", "d"), rng)
        assert len(patterns) == 3
        assert all(len(p) == 3 for p in patterns)
        assert all(set(p) <= {"c", "d"} for p in patterns)

    def test_odd_length_rejected(self, rng):
        with pytest.raises(ValueError):
            packing_patterns(2, 5, ("c",), rng)

    def test_database_structure(self, rng):
        alphabet = Alphabet(("0", "1", "c", "d"))
        secrets = ["cc", "dd"]
        instance = packing_database(secrets, ell=12, n=6, copies=4, alphabet=alphabet)
        assert instance.copies == 4
        assert len(instance.database) == 6
        assert all(len(doc) == 12 for doc in instance.database)
        # The planted patterns occur in exactly `copies` documents.
        for planted in instance.planted_patterns:
            assert instance.database.document_count(planted) == 4

    def test_planted_patterns_have_position_codes(self, rng):
        alphabet = Alphabet(("0", "1", "c", "d"))
        instance = packing_database(["cc", "dd"], ell=10, n=3, copies=2, alphabet=alphabet)
        assert instance.planted_patterns[0] == "cc" + "00"
        assert instance.planted_patterns[1] == "dd" + "01"

    def test_carrier_too_long_rejected(self):
        alphabet = Alphabet(("0", "1", "c"))
        with pytest.raises(ValueError):
            packing_database(["cccc"], ell=6, n=2, copies=1, alphabet=alphabet)

    def test_copies_out_of_range_rejected(self):
        alphabet = Alphabet(("0", "1", "c"))
        with pytest.raises(ValueError):
            packing_database(["cc"], ell=8, n=2, copies=3, alphabet=alphabet)

    def test_mismatched_pattern_lengths_rejected(self):
        alphabet = Alphabet(("0", "1", "c"))
        with pytest.raises(ValueError):
            packing_database(["cc", "c"], ell=8, n=2, copies=1, alphabet=alphabet)


class TestMarginalsReduction:
    def test_reduction_dimensions(self):
        matrix = np.array([[1, 0, 1], [0, 0, 1]])
        reduction = marginals_reduction(matrix)
        assert reduction.num_rows == 2
        assert len(reduction.column_patterns) == 3
        assert len(reduction.database) == 2
        code_length = max(1, int(np.ceil(np.log2(3))))
        assert reduction.database.max_length == 3 * (code_length + 2)

    def test_document_counts_encode_marginals(self):
        rng = np.random.default_rng(0)
        matrix = (rng.random((8, 5)) < 0.4).astype(np.int64)
        reduction = marginals_reduction(matrix)
        truth = exact_marginals(matrix)
        counts = [
            reduction.database.document_count(pattern)
            for pattern in reduction.column_patterns
        ]
        estimates = reduction.marginals_from_counts(counts)
        assert np.allclose(estimates, truth)

    def test_non_binary_matrix_rejected(self):
        with pytest.raises(ValueError):
            marginals_reduction(np.array([[2, 0]]))

    def test_wrong_dimensionality_rejected(self):
        with pytest.raises(ValueError):
            marginals_reduction(np.array([1, 0, 1]))

    def test_exact_marginals(self):
        matrix = np.array([[1, 0], [1, 1]])
        assert exact_marginals(matrix).tolist() == [1.0, 0.5]

    @given(st.integers(1, 10), st.integers(1, 6), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_reduction_is_exact_on_random_matrices(self, n, d, seed):
        rng = np.random.default_rng(seed)
        matrix = (rng.random((n, d)) < 0.5).astype(np.int64)
        reduction = marginals_reduction(matrix)
        counts = [
            reduction.database.document_count(pattern)
            for pattern in reduction.column_patterns
        ]
        assert np.allclose(
            reduction.marginals_from_counts(counts), exact_marginals(matrix)
        )

    def test_neighboring_matrices_give_neighboring_databases(self):
        matrix = np.array([[1, 0], [0, 1]])
        other = matrix.copy()
        other[1] = [1, 1]
        first = marginals_reduction(matrix).database
        second = marginals_reduction(other).database
        assert first.is_neighbor_of(second)
