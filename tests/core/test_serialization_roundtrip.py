"""Round-trip property tests for PrivateCountingTrie JSON serialization.

The release store (repro.serving.store) persists structures as JSON and
promises that a reloaded release answers *identical* queries.  These tests
exercise that contract over many randomized structures: random pattern sets,
adversarial characters, extreme counts, and real (noisy and noiseless)
constructions — save -> load must preserve every query, the metadata, the
report, and the content digest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.construction import build_private_counting_structure
from repro.core.params import ConstructionParams
from repro.core.private_trie import PrivateCountingTrie, StructureMetadata
from repro.strings.trie import Trie

ALPHABETS = ["ab", "acgt", "0123456789", "aé☃b"]


def random_structure(rng: np.random.Generator, alphabet: str) -> PrivateCountingTrie:
    """A structure over ``alphabet`` with random patterns and counts."""
    trie = Trie()
    num_patterns = int(rng.integers(0, 40))
    for _ in range(num_patterns):
        length = int(rng.integers(1, 9))
        pattern = "".join(rng.choice(list(alphabet), size=length))
        node = trie.insert(pattern)
        # Counts include negatives, huge values and non-round floats, all of
        # which a noisy release can legitimately contain.
        node.noisy_count = float(rng.normal(0.0, 10.0 ** rng.integers(0, 7)))
    metadata = StructureMetadata(
        epsilon=float(rng.uniform(0.1, 50.0)),
        delta=float(rng.choice([0.0, 1e-6, 1e-9])),
        beta=float(rng.uniform(0.01, 0.5)),
        delta_cap=int(rng.integers(1, 20)),
        max_length=int(rng.integers(1, 30)),
        num_documents=int(rng.integers(1, 10_000)),
        alphabet_size=len(alphabet),
        error_bound=float(rng.uniform(0.0, 1e4)),
        threshold=float(rng.uniform(0.0, 1e4)),
        qgram_length=int(rng.integers(1, 8)) if rng.random() < 0.5 else None,
        construction=str(rng.choice(["thm1", "thm2", ""])),
    )
    report = {"absent_pattern_bound": float(rng.uniform(0.0, 1e4))}
    return PrivateCountingTrie(trie=trie, metadata=metadata, report=report)


def probe_patterns(
    structure: PrivateCountingTrie, rng: np.random.Generator, alphabet: str
) -> list[str]:
    """Stored patterns, their prefixes/extensions, and random misses."""
    stored = structure.patterns()
    probes = list(stored)
    probes += [p[: len(p) // 2] for p in stored]
    probes += [p + alphabet[0] for p in stored]
    probes.append("")
    chars = list(alphabet + "zZ?")
    for _ in range(20):
        length = int(rng.integers(0, 10))
        probes.append("".join(str(c) for c in rng.choice(chars, size=length)))
    return probes


def assert_identical(
    original: PrivateCountingTrie,
    restored: PrivateCountingTrie,
    probes: list[str],
) -> None:
    assert restored.metadata == original.metadata
    assert restored.report == original.report
    assert dict(restored.items()) == dict(original.items())
    for pattern in probes:
        assert restored.query(pattern) == original.query(pattern), pattern
        assert (pattern in restored) == (pattern in original), pattern
    assert restored.mine(original.metadata.threshold) == original.mine(
        original.metadata.threshold
    )


class TestRandomizedRoundTrips:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("alphabet", ALPHABETS)
    def test_json_roundtrip_preserves_queries(self, seed, alphabet):
        rng = np.random.default_rng(seed)
        structure = random_structure(rng, alphabet)
        restored = PrivateCountingTrie.from_json(structure.to_json())
        assert_identical(structure, restored, probe_patterns(structure, rng, alphabet))

    @pytest.mark.parametrize("seed", range(5))
    def test_save_load_roundtrip(self, seed, tmp_path):
        rng = np.random.default_rng(100 + seed)
        alphabet = ALPHABETS[seed % len(ALPHABETS)]
        structure = random_structure(rng, alphabet)
        path = structure.save(tmp_path / f"release_{seed}.json")
        restored = PrivateCountingTrie.load(path)
        assert_identical(structure, restored, probe_patterns(structure, rng, alphabet))

    @pytest.mark.parametrize("seed", range(5))
    def test_digest_is_stable_across_roundtrip(self, seed):
        rng = np.random.default_rng(200 + seed)
        structure = random_structure(rng, "acgt")
        restored = PrivateCountingTrie.from_json(structure.to_json())
        assert restored.content_digest() == structure.content_digest()
        # Serialization is canonical: dumping twice gives the same bytes.
        assert structure.to_json() == structure.to_json()

    def test_double_roundtrip_is_fixed_point(self):
        rng = np.random.default_rng(7)
        structure = random_structure(rng, "acgt")
        once = PrivateCountingTrie.from_json(structure.to_json())
        twice = PrivateCountingTrie.from_json(once.to_json())
        assert once.to_json() == twice.to_json()


class TestConstructedRoundTrips:
    def test_noisy_construction_roundtrip(self, small_db, rng):
        params = ConstructionParams.pure(5.0, beta=0.1)
        structure = build_private_counting_structure(small_db, params, rng=rng)
        restored = PrivateCountingTrie.from_json(structure.to_json())
        probes = structure.patterns() + ["", "ab", "ba", "zzzz", "abababab"]
        assert_identical(structure, restored, probes)

    def test_noiseless_construction_roundtrip(self, example_db, rng, tmp_path):
        params = ConstructionParams.pure(2.0, beta=0.1, noiseless=True, threshold=1.0)
        structure = build_private_counting_structure(example_db, params, rng=rng)
        restored = PrivateCountingTrie.load(structure.save(tmp_path / "r.json"))
        probes = structure.patterns() + ["", "be", "bee", "nope"]
        assert_identical(structure, restored, probes)

    def test_root_count_survives_roundtrip(self, small_db, rng):
        # Constructions store a noisy count on the root (the empty pattern);
        # serialization must not silently drop it.
        params = ConstructionParams.pure(5.0, beta=0.1)
        structure = build_private_counting_structure(small_db, params, rng=rng)
        assert structure.query("") != 0.0
        restored = PrivateCountingTrie.from_json(structure.to_json())
        assert restored.query("") == structure.query("")

    def test_compiled_view_of_reloaded_structure_matches(self, small_db, rng):
        # store -> load -> compile is the serving path; end-to-end parity.
        params = ConstructionParams.pure(5.0, beta=0.1)
        structure = build_private_counting_structure(small_db, params, rng=rng)
        restored = PrivateCountingTrie.from_json(structure.to_json())
        compiled = restored.compiled()
        probes = structure.patterns() + ["", "ab", "zz"]
        for pattern in probes:
            assert compiled.query(pattern) == structure.query(pattern)
