"""The non-power-of-two completion path of ``build_candidate_set``.

For a length ``m`` that is not a power of two, ``C_m`` contains every string
of length ``m`` whose length-``2^k`` prefix and suffix (``k = floor(log2 m)``)
both belong to ``P_{2^k}``; the implementation finds them through
suffix/prefix overlaps on the ``CollectionLCE`` structure.  With noiseless
counts and threshold 1, ``P_{2^k}`` is exactly the set of occurring
``2^k``-substrings, so the completion can be checked end to end against the
naive ``all_substrings`` enumeration: every occurring ``m``-substring must be
completed, and nothing outside the brute-force overlap closure may appear.
"""

from __future__ import annotations

import math

import pytest

from repro.core.candidate_set import build_candidate_set
from repro.core.database import StringDatabase
from repro.core.params import ConstructionParams
from repro.strings.naive import all_substrings

NOISELESS = ConstructionParams.pure(1.0, beta=0.1, noiseless=True, threshold=1.0)

DATABASES = {
    "periodic": StringDatabase(["abcabcab", "bcabcabc", "cabcabca"]),
    "mixed": StringDatabase(["aabbaabb", "abababab", "bbbaaabb", "ab"]),
    "unary-heavy": StringDatabase(["aaaaaaaa", "aaabaaab", "baaabaaa"]),
}

NON_POWERS = (3, 5, 6, 7)


def brute_force_completion(level: list[str], m: int) -> set[str]:
    """The paper's definition of ``C_m``, spelled out directly on strings:
    all ``left + right[overlap:]`` whose length-``overlap`` suffix/prefix
    agree, for ``overlap = 2 * 2^k - m``."""
    power = 1 << int(math.floor(math.log2(m)))
    overlap = 2 * power - m
    return {
        left + right[overlap:]
        for left in level
        for right in level
        if left[power - overlap :] == right[:overlap]
    }


@pytest.mark.parametrize("name", sorted(DATABASES))
@pytest.mark.parametrize("m", NON_POWERS)
def test_completion_matches_brute_force_overlap_closure(name, m):
    database = DATABASES[name]
    candidates = build_candidate_set(database, NOISELESS, lengths=[m])
    power = 1 << int(math.floor(math.log2(m)))
    assert m != power, "test lengths must not be powers of two"
    expected = brute_force_completion(candidates.levels[power], m)
    assert set(candidates.by_length[m]) == expected
    # by_length values stay sorted for determinism.
    assert candidates.by_length[m] == sorted(candidates.by_length[m])


@pytest.mark.parametrize("name", sorted(DATABASES))
@pytest.mark.parametrize("m", NON_POWERS)
def test_completion_covers_every_occurring_substring(name, m):
    database = DATABASES[name]
    candidates = build_candidate_set(database, NOISELESS, lengths=[m])
    occurring = {
        s for s in all_substrings(list(database)) if len(s) == m
    }
    assert occurring <= set(candidates.by_length[m])


@pytest.mark.parametrize("m", NON_POWERS)
def test_completed_strings_have_their_halves_in_the_level(m):
    database = DATABASES["mixed"]
    candidates = build_candidate_set(database, NOISELESS, lengths=[m])
    power = 1 << int(math.floor(math.log2(m)))
    level = set(candidates.levels[power])
    for candidate in candidates.by_length[m]:
        assert len(candidate) == m
        assert candidate[:power] in level
        assert candidate[-power:] in level


def test_noiseless_level_sets_are_exactly_occurring_substrings():
    """The premise of the tests above: with threshold 1 and no noise,
    ``P_{2^k}`` is the set of occurring ``2^k``-substrings."""
    database = DATABASES["periodic"]
    candidates = build_candidate_set(database, NOISELESS)
    substrings = all_substrings(list(database))
    for power, level in candidates.levels.items():
        assert set(level) == {s for s in substrings if len(s) == power}
