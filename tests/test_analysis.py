"""Tests for repro.analysis (metrics, reporting, experiment runners)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import experiments
from repro.analysis.metrics import (
    error_summary,
    max_error_over_all_substrings,
    mining_quality,
    query_errors,
)
from repro.analysis.reporting import format_table, format_value, save_results
from repro.core.baselines import ExactCountingOracle


class TestMetrics:
    def test_query_errors_against_exact_oracle(self, example_db):
        oracle = ExactCountingOracle(example_db)
        errors = query_errors(oracle, example_db, ["ab", "be", "zz"])
        assert np.allclose(errors, 0.0)

    def test_error_summary_statistics(self, example_db):
        class OffByOne:
            def query(self, pattern):
                return ExactCountingOracle(example_db).query(pattern) + 1.0

        summary = error_summary(OffByOne(), example_db, ["ab", "be"])
        assert summary.max_error == pytest.approx(1.0)
        assert summary.mean_error == pytest.approx(1.0)
        assert summary.num_patterns == 2
        assert summary.as_dict()["max_error"] == pytest.approx(1.0)

    def test_error_summary_empty_patterns(self, example_db):
        oracle = ExactCountingOracle(example_db)
        summary = error_summary(oracle, example_db, [])
        assert summary.max_error == 0.0 and summary.num_patterns == 0

    def test_max_error_over_all_substrings_zero_for_oracle(self, example_db):
        oracle = ExactCountingOracle(example_db)
        summary = max_error_over_all_substrings(
            oracle, example_db, max_pattern_length=3
        )
        assert summary.max_error == 0.0
        assert summary.num_patterns > 0

    def test_mining_quality_perfect(self):
        exact = {"aa": 10, "bb": 2}
        quality = mining_quality(["aa"], exact, threshold=5, alpha=1)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.guarantee_recall == 1.0
        assert quality.guarantee_precision == 1.0

    def test_mining_quality_detects_misses_and_noise(self):
        exact = {"aa": 10, "bb": 9, "cc": 1}
        quality = mining_quality(["cc"], exact, threshold=5, alpha=2)
        assert quality.precision == 0.0
        assert quality.recall == 0.0
        assert quality.guarantee_recall == 0.0  # aa (>=7) missing
        assert quality.guarantee_precision == 0.0  # cc (<=3) reported

    def test_mining_quality_length_restriction(self):
        exact = {"aaa": 10, "bb": 10}
        quality = mining_quality(["bb"], exact, threshold=5, alpha=1, restrict_to_length=2)
        assert quality.recall == 1.0

    def test_mining_quality_empty_report(self):
        quality = mining_quality([], {"aa": 1}, threshold=5, alpha=1)
        assert quality.precision == 1.0
        assert quality.num_reported == 0


class TestReporting:
    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(3.14159) == "3.142"
        assert format_value(0.00001) == "1e-05"
        assert format_value(123456.0) == "1.23e+05"
        assert format_value(True) == "True"
        assert format_value("x") == "x"

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        table = format_table(rows)
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert "22" in lines[3]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_explicit_columns(self):
        rows = [{"a": 1, "b": 2}]
        table = format_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_save_results_writes_json(self, tmp_path):
        path = save_results("E0", [{"x": 1}], directory=tmp_path)
        assert path.exists()
        assert path.name == "E0.json"


class TestExperimentRunners:
    """Light-weight sanity runs of the experiment functions (the benchmarks
    run them at full size)."""

    def test_example_database_matches_paper(self):
        database = experiments.example_database()
        assert database.substring_count("ab") == 4
        assert database.document_count("ab") == 3

    def test_e1_rows(self):
        rows = experiments.run_example_counts()
        by_pattern = {row["pattern"]: row for row in rows}
        assert by_pattern["ab"]["substring_count"] == 4
        assert by_pattern["ab"]["document_count"] == 3

    def test_e2_reproduces_example2(self):
        rows = experiments.run_candidate_figure()
        by_set = {row["set"]: row for row in rows}
        assert by_set["P_1"]["strings"] == "a b e s"
        assert by_set["P_4"]["size"] == 5
        assert "absab" in by_set["C_5"]["strings"]

    def test_e3_prefix_sums_consistent(self):
        rows = experiments.run_prefix_sum_figure()
        assert rows[0]["node"] == "(root)"
        # prefix sums reconstruct count(node) - count(root).
        root_count = rows[0]["count"]
        for row in rows[1:]:
            assert row["count"] - root_count == pytest.approx(row["prefix_sum"])

    def test_error_scaling_small(self):
        rows = experiments.run_error_scaling([4, 6], n=6, trials=1)
        assert len(rows) == 2
        for row in rows:
            assert row["max_error_worst"] <= row["analytic_bound"]

    def test_exact_candidate_structure_helper(self, example_db, rng):
        from repro.core.params import ConstructionParams

        structure = experiments.build_structure_with_exact_candidates(
            example_db, ConstructionParams.pure(1.0, beta=0.1, noiseless=True), rng
        )
        assert structure.query("ab") == pytest.approx(4)

    def test_prefix_sum_ablation_shapes(self):
        rows = experiments.run_prefix_sum_ablation([8, 16], trials=2)
        assert len(rows) == 2
        assert all(row["binary_tree_max_error"] >= 0 for row in rows)

    def test_tree_counting_experiment_rows(self):
        rows = experiments.run_tree_counting_experiment([8], num_items=30)
        assert rows[0]["max_error"] <= rows[0]["analytic_bound"]

    def test_query_time_experiment(self):
        rows = experiments.run_query_time_experiment([1, 2], n=4, ell=8, repetitions=10)
        assert len(rows) == 2


class TestCLI:
    def test_list_and_quickstart(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "E17" in output
        assert main(["quickstart"]) == 0
        assert "error bound" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["run", "E99"]) == 2

    def test_run_e1(self, capsys):
        from repro.cli import main

        assert main(["run", "E1"]) == 0
        assert "substring_count" in capsys.readouterr().out

    def test_mine_command(self, capsys):
        from repro.cli import main

        assert main(["mine", "--n", "40", "--ell", "8", "--epsilon", "5"]) == 0
        output = capsys.readouterr().out
        assert "workload=genome" in output
