"""Setuptools entry point.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in editable mode without build isolation (offline
CI images), via::

    pip install -e . --no-build-isolation --no-use-pep517

(pip requires the ``wheel`` package for that flag), or — on images without
``wheel`` — via the legacy fallback that reads the same metadata::

    python setup.py develop
"""

from setuptools import setup

setup()
