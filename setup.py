"""Setuptools entry point.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in editable mode on environments without the
``wheel`` package (offline CI images), via::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
