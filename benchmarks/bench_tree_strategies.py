"""E18 — Hierarchical-histogram strategies on the same tree and items: the
paper's heavy-path algorithm (Theorem 8), the range-counting reduction cited
in Section 1.1.3, and the leaf-sum baseline of Zhang et al. [72].

The two polylogarithmic strategies scale like ``polylog(u)`` in the universe
size, while the leaf-sum baseline accumulates the noise of every descendant
leaf and scales like ``sqrt(u)``; at laptop-scale universes the baseline's
small constants still win, but its growth rate is clearly polynomial (the
crossover predicted by the analytic bounds lies at ``u ~ 10^5``)."""

from repro.analysis import experiments


def test_e18_tree_strategy_comparison(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_tree_strategy_comparison(
            [32, 128, 512], num_items=400, epsilon=1.0, trials=3
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E18",
        "Hierarchical counting strategies (heavy paths vs range counting vs leaf sums)",
        rows,
    )
    for row in rows:
        # Measured errors must respect the analytic high-probability bounds.
        assert row["heavy_path_max_error"] <= row["heavy_path_bound"]
        assert row["range_counting_max_error"] <= row["range_counting_bound"]
        assert row["leaf_sum_max_error"] <= row["leaf_sum_bound"]
        # On additive hierarchical histograms the specialized range-counting
        # reduction has smaller constants than the general heavy-path
        # algorithm (which also covers non-additive functions).
        assert row["range_counting_max_error"] <= row["heavy_path_max_error"]

    def growth(key: str) -> float:
        return rows[-1][key] / max(rows[0][key], 1e-9)

    # The leaf-sum baseline's error grows polynomially (~sqrt(u)) while the
    # other two grow polylogarithmically: its bound must grow strictly faster
    # across the 16x universe sweep.
    assert growth("leaf_sum_bound") > growth("heavy_path_bound")
    assert growth("leaf_sum_bound") > growth("range_counting_bound")
    assert growth("leaf_sum_max_error") > growth("range_counting_max_error") * 0.9
