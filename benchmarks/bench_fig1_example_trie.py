"""E1 — Example 1 / Figure 1: exact counts on the running example and the
trie of all suffixes."""

from repro.analysis import experiments


def test_e1_example_counts(benchmark, experiment_report):
    rows = benchmark.pedantic(experiments.run_example_counts, rounds=1, iterations=1)
    experiment_report.record(
        "E1", "Example 1 / Figure 1: exact counts on the running example", rows
    )
    by_pattern = {row["pattern"]: row for row in rows}
    # The paper's Example 1: count_1(ab, D) = 3 and count(ab, D) = 4.
    assert by_pattern["ab"]["document_count"] == 3
    assert by_pattern["ab"]["substring_count"] == 4
