"""E2 — Examples 2-4 / Figure 2: candidate sets and the heavy-path
decomposition of the candidate trie on the running example."""

from repro.analysis import experiments


def test_e2_candidate_sets_and_heavy_paths(benchmark, experiment_report):
    rows = benchmark.pedantic(experiments.run_candidate_figure, rounds=1, iterations=1)
    experiment_report.record(
        "E2", "Examples 2-4 / Figure 2: exact candidate sets and heavy paths", rows
    )
    by_set = {row["set"]: row for row in rows}
    # Example 2 of the paper (exact sets with threshold 1).
    assert by_set["P_1"]["strings"] == "a b e s"
    assert by_set["P_2"]["strings"] == "aa ab ba be bs ee es sa"
    assert by_set["P_4"]["strings"] == "aaaa absa babe bees bsab"
    # Example 3: C_5 contains exactly the strings covered by P_4 overlaps.
    assert by_set["C_5"]["strings"] == "aaaaa absab"
    # Every string in C_3 has its length-2 prefix and suffix in P_2
    # (the paper's Example 3 lists a subset; see EXPERIMENTS.md).
    p2 = set(by_set["P_2"]["strings"].split())
    for pattern in by_set["C_3"]["strings"].split():
        assert pattern[:2] in p2 and pattern[1:] in p2
