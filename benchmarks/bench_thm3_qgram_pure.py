"""E6 — Theorems 3 and 4: error of the fixed-length q-gram structures."""

from repro.analysis import experiments


def test_e6_qgram_error(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_qgram_error([2, 4, 8], n=40, ell=20, epsilon=1.0),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E6", "Theorems 3/4: q-gram stored-count error vs q", rows
    )
    for row in rows:
        assert row["pure_max_error"] <= row["pure_bound"]
        assert row["approx_max_error"] <= row["approx_bound"]
        # Theorem 4 only ever stores q-grams that occur in the database.
        assert row["approx_stored"] <= 40 * 20
    # The pure-DP error bound does not grow with q (it depends on ell, not q),
    # so the measured errors should stay within one bound across q.
    assert max(row["pure_max_error"] for row in rows) <= rows[0]["pure_bound"]
