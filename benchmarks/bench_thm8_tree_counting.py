"""E13 — Theorem 8: generic epsilon-DP counting on trees; the error grows
only polylogarithmically with the universe size."""

from repro.analysis import experiments


def test_e13_tree_counting(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_tree_counting_experiment(
            [64, 256, 1024], num_items=500, epsilon=1.0
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E13", "Theorem 8: hierarchical histograms (error vs universe size)", rows
    )
    for row in rows:
        assert row["max_error"] <= row["analytic_bound"]
    # Polylogarithmic growth: multiplying the universe by 16 must grow the
    # error far less than 16x.
    assert rows[-1]["max_error"] <= rows[0]["max_error"] * 8 + 1
