"""E9 — End-to-end private frequent-substring mining (the paper's headline
application) on genome- and transit-style workloads."""

from repro.analysis import experiments


def test_e9_private_mining_genome(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_mining_experiment(
            workload="genome", n=300, ell=12, epsilons=(5.0, 20.0, 50.0)
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E9", "Private frequent-substring mining (genome workload)", rows
    )
    # The alpha-approximate mining contract (Definition 2) holds at every
    # privacy level.
    assert all(row["guarantee_ok"] for row in rows)
    # More budget means a lower threshold, hence at least as many reported
    # patterns.
    thresholds = [row["threshold"] for row in rows]
    assert thresholds == sorted(thresholds, reverse=True)
    reported = [row["num_reported"] for row in rows]
    assert reported == sorted(reported)
    # At the most generous budget some frequent patterns are actually
    # recovered, and nothing clearly infrequent is reported.
    assert rows[-1]["num_reported"] > 0
    assert rows[-1]["precision"] >= 0.8


def test_e9_private_mining_transit(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_mining_experiment(
            workload="transit", n=300, ell=12, epsilons=(20.0, 50.0)
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E9b", "Private frequent-substring mining (transit workload)", rows
    )
    assert all(row["guarantee_ok"] for row in rows)
