"""E21 — Counting-engine equivalence and speedup curve.

The unified :mod:`repro.counting` layer's acceptance contract: every backend
returns bitwise-identical ``count_many`` results, and the single-pass
Aho-Corasick engine beats per-pattern suffix-array counting by at least 5x
on a candidate level of >= 256 patterns (the batch shape of the doubling
construction's ``P_{2^k} x P_{2^k}`` levels, which is where the construction
spends its counting time).
"""

from repro.analysis import experiments


def test_e21_counting_engines(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_counting_engine_benchmark(
            batch_sizes=(16, 64, 256, 1024)
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E21",
        "Counting-engine equivalence and speedup (batched Aho-Corasick vs per-pattern)",
        rows,
    )
    for row in rows:
        # Equivalence: the backend choice may never change a count.
        assert row["engines_equal"], f"backends disagree at batch {row['batch']}"
    # The acceptance headline: >= 5x on candidate levels of >= 256 patterns.
    for row in rows:
        if row["batch"] >= 256:
            assert row["ac_speedup_vs_sa"] >= 5.0, (
                f"batch {row['batch']}: Aho-Corasick only "
                f"{row['ac_speedup_vs_sa']:.2f}x over per-pattern suffix-array"
            )
            # The auto policy must route these batches to the automaton.
            assert row["auto_backend"] == "aho-corasick"
