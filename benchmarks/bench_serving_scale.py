"""E27 — Sharded serving tier: throughput scaling over worker processes.

The acceptance contract of the multi-process serving tier
(:mod:`repro.serving.cluster`): uniform q-gram ``/batch`` traffic routed
through the hash-sharding router must be **bit-identical** to the
single-process server — both float-for-float in every client and
byte-for-byte on a raw response body — at every worker count; second-and-
later workers must add ~0 private resident pages over the one mmap-shared
``.dpsb`` copy; a worker ``kill -9``'d mid-run must cost nothing (the
router retries, the supervisor respawns, the clients still get complete
identical results); and with at least 4 CPUs available, 4 workers must
serve at least **2.5x** the single-process pattern throughput.

The speedup floors are gated on ``available_cpus`` (recorded in every
row): a single-core container cannot exhibit multi-core scaling, but it
still proves bit identity, page sharing and crash recovery — those gates
always apply.

Also runnable as a script (the CI ``serving-scale-smoke`` job does)::

    python benchmarks/bench_serving_scale.py --smoke --output smoke.json

Script mode persists the rows as JSON (the repo-root
``BENCH_serving_scale.json`` records the perf trajectory) and exits
non-zero when any correctness assertion or an applicable speedup floor
fails; ``--smoke`` runs 1 and 2 workers with a smaller release and
shorter run (the full run sweeps 1/2/4/8 workers at the 86k-node size).
"""

import os

from repro.analysis import experiments

TITLE = "Sharded serving: throughput vs workers, bit identity, crash drill"

FULL_SPEEDUP_FLOOR = 2.5  # 4 workers vs single-process, needs >= 4 CPUs
SMOKE_SPEEDUP_FLOOR = 1.0  # 2 workers vs single-process, needs >= 2 CPUs
SMOKE = {
    "worker_counts": (1, 2),
    "target_nodes": 20_000,
    "batch_size": 512,
    "clients": 2,
    "rounds": 8,
}
FULL = {
    "worker_counts": (1, 2, 4, 8),
    "target_nodes": 86_000,
    "batch_size": 1024,
    "clients": 4,
    "rounds": 16,
}


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _check_rows(rows, *, smoke):
    failures = []
    cpus = rows[0]["available_cpus"] if rows else _available_cpus()
    drills = 0
    for row in rows:
        label = f"{row['mode']}/{row['workers']}w"
        if not row["bit_identical"]:
            failures.append(f"{label}: client responses not bit-identical")
        if not row["response_bytes_identical"]:
            failures.append(f"{label}: raw response bytes differ from single-process")
        if row["errors"]:
            failures.append(f"{label}: {row['errors']} client errors")
        if row["mode"] != "cluster":
            continue
        extra = row.get("max_extra_worker_private_kb")
        if extra is not None and extra > 512:
            failures.append(
                f"{label}: extra workers hold {extra} KB private .dpsb pages "
                "(expected ~0, floor 512)"
            )
        if "crash_drill_ok" in row:
            drills += 1
            if not row["crash_drill_ok"]:
                failures.append(
                    f"{label}: crash drill failed "
                    f"(respawns={row['crash_drill_respawns']}, "
                    f"errors={row['crash_drill_errors']})"
                )
        floor_workers, floor, min_cpus = (
            (2, SMOKE_SPEEDUP_FLOOR, 2) if smoke else (4, FULL_SPEEDUP_FLOOR, 4)
        )
        if row["workers"] == floor_workers and cpus >= min_cpus:
            if row["speedup_vs_single"] < floor:
                failures.append(
                    f"{label}: only {row['speedup_vs_single']:.2f}x over "
                    f"single-process (floor {floor}x at {cpus} CPUs)"
                )
    if not drills:
        failures.append("no crash drill ran (need a worker count >= 2)")
    return failures


def test_e27_serving_scale(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_serving_scale(**SMOKE),
        rounds=1,
        iterations=1,
    )
    experiment_report.record("E27", TITLE, rows)
    failures = _check_rows(rows, smoke=True)
    assert not failures, "; ".join(failures)


def _main() -> int:
    import argparse
    import json
    import pathlib
    import sys

    parser = argparse.ArgumentParser(description=TITLE)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: 1-2 workers, smaller release (full mode sweeps 1/2/4/8)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_serving_scale.json",
        help="where to write the JSON rows (default: BENCH_serving_scale.json)",
    )
    args = parser.parse_args()

    params = SMOKE if args.smoke else FULL
    rows = experiments.run_serving_scale(**params)
    failures = _check_rows(rows, smoke=args.smoke)

    payload = {
        "experiment": "E27",
        "title": TITLE,
        "mode": "smoke" if args.smoke else "full",
        "full_speedup_floor": FULL_SPEEDUP_FLOOR,
        "smoke_speedup_floor": SMOKE_SPEEDUP_FLOOR,
        "available_cpus": rows[0]["available_cpus"] if rows else _available_cpus(),
        "rows": rows,
        "ok": not failures,
    }
    pathlib.Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    for row in rows:
        drill = (
            f" crash_drill_ok={row['crash_drill_ok']}"
            f" respawns={row['crash_drill_respawns']}"
            if "crash_drill_ok" in row
            else ""
        )
        extra = row.get("max_extra_worker_private_kb")
        print(
            f"{row['mode']}/{row['workers']}w: "
            f"{row['patterns_per_second']:.0f} patterns/s "
            f"({row['speedup_vs_single']:.2f}x vs single, "
            f"{row['available_cpus']} cpus); "
            f"bit_identical={row['bit_identical']} "
            f"bytes_identical={row['response_bytes_identical']} "
            f"extra_worker_private_kb={extra}{drill}"
        )
    if failures:
        print("\n".join(f"FAIL: {line}" for line in failures), file=sys.stderr)
        return 1
    print(f"ok — rows written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
