"""E5 — Theorem 2: under approximate DP, Document Count (Delta = 1) beats
Substring Count (Delta = ell) by roughly sqrt(ell)."""

from repro.analysis import experiments


def test_e5_document_vs_substring_counting(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_document_vs_substring(
            [8, 16, 32], n=10, epsilon=1.0, delta=1e-6, symbols=("a", "b")
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E5", "Theorem 2: Document Count vs Substring Count error (approx DP)", rows
    )
    for row in rows:
        # Document counting is never worse, and the advantage tracks sqrt(ell)
        # (within a factor ~3 to absorb noise).
        assert row["document_count_error"] <= row["substring_count_error"] * 1.05
        assert row["ratio"] > row["sqrt_ell"] / 3
    # The advantage grows with ell.
    assert rows[-1]["ratio"] > rows[0]["ratio"]
