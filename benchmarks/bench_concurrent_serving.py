"""E23 — Concurrent serving: bit-identical replays and throughput vs
threads.

The serving stack advertises arbitrary concurrent traffic at zero privacy
cost; this benchmark replays one seeded mixed workload (``/query``,
``/batch``, ``/mine``, ``/healthz``) against a live :class:`QueryService`
from 1, 2, 4 and 8 barrier-started threads.  The acceptance property is
correctness under contention, not linear scaling (the GIL bounds that):
every concurrent replay must be *bit-identical* to the serial replay, with
zero errors and health counters that advance by exactly the workload
totals.  Throughput per thread count is recorded for the report.
"""

from repro.analysis import experiments


def test_e23_concurrent_serving(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_concurrent_serving(
            thread_counts=(1, 2, 4, 8), n=1000, num_operations=2000
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E23",
        "Concurrent serving: bit-identical replays and throughput vs threads",
        rows,
    )
    assert [row["threads"] for row in rows] == [1, 2, 4, 8]
    for row in rows:
        # Queries are pure post-processing: any divergence under threads is
        # a concurrency bug, not noise.
        assert row["bit_identical"], f"{row['threads']} threads diverged"
        assert row["errors"] == 0
        assert row["counters_consistent"], (
            f"{row['threads']} threads drifted the /healthz counters"
        )
        # The replay makes real progress (thousands of ops/s even at 1 thread).
        assert row["ops_per_second"] > 100
