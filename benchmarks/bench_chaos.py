"""E29 — Chaos drill: seeded fault injection against the resilient tier.

The acceptance contract of the resilience layer (``docs/RESILIENCE.md``):
with failpoints armed from one seed — injected 500s inside every worker's
request handler, injected connection resets on the router's worker
round-trips — and one worker ``kill -9``'d mid-run, resilient clients
hammering a live cluster must see **zero** errors and bit-identical
answers; client p99 latency must stay under the per-request deadline; the
injection logs written by the router and by every worker process must
verify exactly against the pure recomputation of the seeded schedule
(:func:`repro.faults.verify_log` — the run is replayable, not merely
survivable); the killed worker must be respawned; and the framework must
be free when disarmed (min-of-N ``/batch`` round-trips with injection off
versus armed at an irrelevant site stay within noise of ratio 1).

Also runnable as a script (the CI ``chaos-smoke`` job does)::

    python benchmarks/bench_chaos.py --smoke --output smoke.json

Script mode persists the rows as JSON (the repo-root ``BENCH_chaos.json``
records the trajectory) and exits non-zero when any gate fails;
``--smoke`` drills a 2-worker cluster with lighter traffic (the full run
drills 4 workers).
"""

from repro.analysis import experiments

TITLE = "Chaos drill: seeded faults + worker kill, zero client errors, replayable"

SMOKE = {
    "workers": 2,
    "target_nodes": 10_000,
    "clients": 3,
    "requests_per_client": 25,
    "batch_size": 128,
    "overhead_repeats": 20,
}
FULL = {
    "workers": 4,
    "target_nodes": 40_000,
    "clients": 4,
    "requests_per_client": 40,
    "batch_size": 256,
    "overhead_repeats": 40,
}

#: min-of-N HTTP round-trip timing on a shared machine is noisy; the gate
#: allows 5% even though the measured ratio sits at ~1.0.
OVERHEAD_GATE = 1.05


def _check_rows(rows, *, smoke):
    failures = []
    drill_rows = [row for row in rows if row.get("mode") == "chaos-drill"]
    overhead_rows = [row for row in rows if row.get("mode") == "disarmed-overhead"]
    if not drill_rows:
        failures.append("no chaos drill ran")
    for row in drill_rows:
        if not row["zero_failures"]:
            failures.append(
                f"drill: {row['client_errors']} client-visible errors and "
                f"{row['mismatches']} mismatched answers across "
                f"{row['requests_total']} requests"
            )
        if not row["replay_identical"]:
            failures.append(
                f"drill: injection log does not replay: {row['replay_problems']}"
            )
        if not (row["injected_router"] and row["injected_worker"]):
            failures.append(
                f"drill: expected faults at both tiers, got "
                f"router={row['injected_router']} worker={row['injected_worker']}"
            )
        if not row["p99_under_deadline"]:
            failures.append(
                f"drill: p99 {row['p99_ms']:.0f}ms breached the "
                f"{row['deadline_s']:g}s deadline"
            )
        if row["respawns"] < 1:
            failures.append("drill: the killed worker was never respawned")
        if row["workers_live_after"] < row["workers"]:
            failures.append(
                f"drill: only {row['workers_live_after']}/{row['workers']} "
                "workers live after the run"
            )
    if not overhead_rows:
        failures.append("no disarmed-overhead row")
    for row in overhead_rows:
        if row["overhead_ratio"] > OVERHEAD_GATE:
            failures.append(
                f"overhead: disarmed failpoints cost ratio "
                f"{row['overhead_ratio']:.3f} > {OVERHEAD_GATE}"
            )
    return failures


def test_e29_chaos_drill(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_chaos_drill(**SMOKE),
        rounds=1,
        iterations=1,
    )
    experiment_report.record("E29", TITLE, rows)
    failures = _check_rows(rows, smoke=True)
    assert not failures, "; ".join(failures)


def _main() -> int:
    import argparse
    import json
    import pathlib
    import sys

    parser = argparse.ArgumentParser(description=TITLE)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: 2-worker drill with lighter traffic (full: 4 workers)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_chaos.json",
        help="where to write the JSON rows (default: BENCH_chaos.json)",
    )
    args = parser.parse_args()

    params = SMOKE if args.smoke else FULL
    rows = experiments.run_chaos_drill(**params)
    failures = _check_rows(rows, smoke=args.smoke)

    payload = {
        "experiment": "E29",
        "title": TITLE,
        "mode": "smoke" if args.smoke else "full",
        "rows": rows,
        "ok": not failures,
    }
    pathlib.Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    for row in rows:
        if row["mode"] == "chaos-drill":
            print(
                f"drill: {row['requests_total']} requests over "
                f"{row['workers']} workers, {row['client_errors']} client "
                f"errors, {row['mismatches']} mismatches, "
                f"{row['injected_router']}+{row['injected_worker']} faults "
                f"injected (router+workers), {row['respawns']} respawn(s), "
                f"p99={row['p99_ms']:.0f}ms (deadline {row['deadline_s']:g}s), "
                f"replay_identical={row['replay_identical']}"
            )
        else:
            print(
                f"overhead: disarmed {row['disarmed_ms']:.3f}ms vs "
                f"armed-elsewhere {row['armed_elsewhere_ms']:.3f}ms "
                f"(ratio {row['overhead_ratio']:.3f})"
            )
    if failures:
        print("\n".join(f"FAIL: {line}" for line in failures), file=sys.stderr)
        return 1
    print(f"ok — rows written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
