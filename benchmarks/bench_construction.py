"""E24 — Array-native construction pipeline: speedup and bit-identity.

The acceptance contract of the ``build_backend="array"`` fast path: on every
scenario whose candidate trie exceeds 10k nodes, the end-to-end
``build("heavy-path")`` must run at least 5x faster than the object
pipeline, and the released structure must be **bit-identical** — same
``content_digest()``, same stored patterns — at every benchmarked setting.

Also runnable as a script (the CI benchmark-smoke job does)::

    python benchmarks/bench_construction.py --tiny --output smoke.json

Script mode persists the rows as JSON (the repo-root
``BENCH_construction.json`` records the perf trajectory) and exits non-zero
when the equivalence or speedup floor fails; ``--tiny`` runs a
seconds-sized scenario and only requires speedup >= 1 (small tries cannot
amortize a 5x win, but the array path must never be a regression).
"""

from repro.analysis import experiments

TITLE = "Construction pipeline: array backend vs object backend"


def test_e24_construction_backends(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_construction_benchmark(),
        rounds=1,
        iterations=1,
    )
    experiment_report.record("E24", TITLE, rows)
    for row in rows:
        # Bit-identity: the backend may never change a released value.
        assert row["digests_equal"], f"digest mismatch at n={row['n']}"
        assert row["items_equal"], f"stored patterns differ at n={row['n']}"
    large = [row for row in rows if row["candidate_trie_nodes"] >= 10_000]
    assert large, "no scenario produced a candidate trie with >= 10k nodes"
    for row in large:
        assert row["speedup"] >= 5.0, (
            f"n={row['n']} ({row['candidate_trie_nodes']} candidate-trie "
            f"nodes): array pipeline only {row['speedup']:.2f}x over object"
        )


def _main() -> int:
    import argparse
    import json
    import pathlib
    import sys

    parser = argparse.ArgumentParser(description=TITLE)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="seconds-sized CI smoke: one small scenario, speedup floor 1x",
    )
    parser.add_argument(
        "--output",
        default="BENCH_construction.json",
        help="where to write the JSON rows (default: BENCH_construction.json)",
    )
    args = parser.parse_args()

    if args.tiny:
        # Best-of-3 timings: one scheduler stall on a shared CI runner must
        # not flip the >= 1x floor on a ~25ms build.
        scenarios, timing_reps = [(300, 12, 40.0, 20.0)], 3
        speedup_floor, node_floor = 1.0, 0
    else:
        scenarios, timing_reps = [(600, 12, 40.0, 20.0), (1000, 14, 50.0, 25.0)], 1
        speedup_floor, node_floor = 5.0, 10_000
    rows = experiments.run_construction_benchmark(scenarios, timing_reps=timing_reps)

    failures = []
    for row in rows:
        if not row["digests_equal"]:
            failures.append(f"n={row['n']}: content digests differ")
        if not row["items_equal"]:
            failures.append(f"n={row['n']}: stored patterns differ")
        if row["candidate_trie_nodes"] >= node_floor and row["speedup"] < speedup_floor:
            failures.append(
                f"n={row['n']}: speedup {row['speedup']:.2f}x below the "
                f"{speedup_floor}x floor"
            )
    payload = {
        "experiment": "E24",
        "title": TITLE,
        "mode": "tiny" if args.tiny else "full",
        "speedup_floor": speedup_floor,
        "node_floor": node_floor,
        "rows": rows,
        "ok": not failures,
    }
    pathlib.Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    for row in rows:
        print(
            f"n={row['n']} ell={row['ell']} "
            f"nodes={row['candidate_trie_nodes']}: "
            f"object {row['object_seconds']:.3f}s "
            f"array {row['array_seconds']:.3f}s "
            f"speedup {row['speedup']:.2f}x "
            f"digests_equal={row['digests_equal']}"
        )
    if failures:
        print("\n".join(f"FAIL: {line}" for line in failures), file=sys.stderr)
        return 1
    print(f"ok — rows written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
