"""E14 — Theorem 9 and the colored tree counting application: approximate DP
improves on pure DP for distinct-color counting on trees."""

from repro.analysis import experiments


def test_e14_colored_tree_counting(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_colored_counting_experiment(
            [64, 256], num_items=400, num_colors=12, epsilon=1.0, delta=1e-6
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E14", "Theorem 9: colored tree counting (pure vs approximate DP)", rows
    )
    by_key = {(row["universe"], row["flavour"]): row for row in rows}
    for universe in (64, 256):
        pure = by_key[(universe, "pure")]
        approx = by_key[(universe, "approx")]
        assert pure["max_error"] <= pure["analytic_bound"]
        assert approx["max_error"] <= approx["analytic_bound"]
        # Theorem 9's bound improves on Theorem 8's for this problem.
        assert approx["analytic_bound"] < pure["analytic_bound"]
