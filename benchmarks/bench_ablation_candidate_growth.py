"""E19 — Candidate-growth ablation: the paper's doubling strategy needs only
``floor(log2 ell) + 1`` noisy releases, so its per-level error alpha stays
~``ell log ell``; the one-letter-extension strategy of prior work [18, 51]
splits the same budget over ``ell`` releases and its alpha degrades to
~``ell^2``."""

from repro.analysis import experiments


def test_e19_candidate_growth_ablation(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_candidate_growth_ablation([8, 16, 32, 64], n=10),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E19", "Candidate growth: doubling vs one-letter extension", rows
    )
    for row in rows:
        # The one-step strategy always pays at least as much noise per level.
        assert row["alpha_onestep"] >= row["alpha_doubling"]
        # Doubling uses exponentially fewer levels.
        assert row["doubling_levels"] <= row["onestep_levels"]
    # The advantage of doubling grows with ell (the alpha ratio approaches
    # ell / log ell up to logarithmic factors).
    ratios = [row["alpha_ratio"] for row in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > ratios[0]
