"""E16 — Lemmas 11/18: the binary-tree prefix-sum mechanism against naive
per-element noise with the same budget."""

from repro.analysis import experiments


def test_e16_binary_tree_vs_naive_prefix_sums(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_prefix_sum_ablation(
            [8, 64, 512], epsilon=1.0, trials=5
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E16", "Binary-tree prefix sums vs naive per-element noise", rows
    )
    for row in rows:
        assert row["binary_tree_max_error"] <= row["binary_tree_bound"]
    # The binary-tree mechanism wins for long sequences and its advantage
    # grows with T (polylog vs polynomial error).
    advantages = [
        row["naive_max_error"] / row["binary_tree_max_error"] for row in rows
    ]
    assert advantages[-1] > advantages[0]
    assert advantages[-1] > 3.0
