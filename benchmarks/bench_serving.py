"""E20 — Query-serving throughput: per-node trie loops vs the compiled
array trie (single, LRU-cached and vectorized batch query paths) on the
genome and transit workloads.

The serving layer's contract is twofold: *exact* post-processing parity
(a compiled release answers the same counts as the in-memory structure)
and a large throughput win for batched traffic.  The headline number is
``batch_speedup``: vectorized ``CompiledTrie.batch_query`` against a plain
``PrivateCountingTrie.query`` loop over the same serving-style traffic mix.
"""

from repro.analysis import experiments


def test_e20_serving_throughput(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_serving_throughput(
            workloads=("genome", "transit"), n=2000, num_queries=20_000
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E20", "Query-serving throughput (compiled trie vs per-node loops)", rows
    )
    for row in rows:
        # Serving is post-processing: every path answers identical counts.
        assert row["parity_ok"], f"parity violated on {row['workload']}"
        # The compiled batch path is the acceptance headline: at least 5x
        # the throughput of per-node PrivateCountingTrie.query loops.
        assert row["batch_speedup"] >= 5.0, (
            f"{row['workload']}: batch only "
            f"{row['batch_speedup']:.2f}x over the trie loop"
        )
        # The LRU cache pays off on skewed traffic.
        assert row["cache_hit_rate"] > 0.5
    # Batched serving reaches millions of queries per second.
    assert all(row["qps_compiled_batch"] > 1_000_000 for row in rows)
