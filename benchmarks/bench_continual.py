"""E28 — Continual release: O(log T) spend, stable replay, hot reload.

The acceptance contract of the continual-release pipeline
(:class:`repro.serving.EpochScheduler` over a
:class:`repro.api.CorpusStream`): releasing every epoch of a T-epoch
stream must charge the ledger exactly the dyadic-tree bound
``bit_length(t) * epoch_epsilon`` after each epoch ``t`` — strictly below
naive sequential composition from epoch 3 on — with one audited
``charge_epoch`` ledger entry per epoch; replaying the same stream with
the same seed into a fresh store must reproduce every release digest
exactly; and hot-reloading a live multi-worker cluster on every publish
must cost the clients nothing: zero visible failures, with the tier
serving the final epoch's version when the stream drains.

Also runnable as a script (the CI ``continual-smoke`` job does)::

    python benchmarks/bench_continual.py --smoke --output smoke.json

Script mode persists the rows as JSON (the repo-root
``BENCH_continual.json`` records the trajectory) and exits non-zero when
any gate fails; ``--smoke`` runs a 4-epoch stream against a 2-worker
cluster (the full run is the 8-epoch stream of the E28 experiment).
"""

from repro.analysis import experiments

TITLE = "Continual release: tree-schedule spend, digest-stable replay, hot reload"

SMOKE = {
    "epochs": 4,
    "docs_per_epoch": 8,
    "workers": 2,
    "clients": 2,
}
FULL = {
    "epochs": 8,
    "docs_per_epoch": 12,
    "workers": 2,
    "clients": 3,
}


def _check_rows(rows, *, smoke):
    failures = []
    epoch_rows = [row for row in rows if "epoch" in row]
    drill_rows = [row for row in rows if row.get("mode") == "reload-drill"]
    expected = (SMOKE if smoke else FULL)["epochs"]
    if len(epoch_rows) != expected:
        failures.append(f"released {len(epoch_rows)} epochs, expected {expected}")
    for row in epoch_rows:
        label = f"epoch {row['epoch']}"
        if not row["bound_ok"]:
            failures.append(
                f"{label}: spent eps={row['spent_epsilon']} != tree bound "
                f"{row['tree_bound_epsilon']}"
            )
        if not row["below_naive"]:
            failures.append(
                f"{label}: spend {row['spent_epsilon']} not below naive "
                f"{row['naive_epsilon']}"
            )
        if not row["digest_stable"]:
            failures.append(f"{label}: replay digest differs ({row['digest12']}...)")
        if not row["ledger_audited"]:
            failures.append(f"{label}: no charge_epoch entry in the ledger")
    if not drill_rows:
        failures.append("no reload drill ran")
    for row in drill_rows:
        if not row["zero_failures"]:
            failures.append(
                f"reload drill: {row['client_errors']} client-visible failures "
                f"across {row['reloads']} reloads"
            )
        if not row["serving_latest"]:
            failures.append(
                f"reload drill: cluster serves v{row['final_version_serving']}, "
                f"stream head is v{row['final_version_expected']}"
            )
        if row["reloads"] < expected - 1:
            failures.append(
                f"reload drill: only {row['reloads']} reloads for "
                f"{expected} epochs (expected {expected - 1})"
            )
    return failures


def test_e28_continual_release(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_continual_release(**SMOKE),
        rounds=1,
        iterations=1,
    )
    experiment_report.record("E28", TITLE, rows)
    failures = _check_rows(rows, smoke=True)
    assert not failures, "; ".join(failures)


def _main() -> int:
    import argparse
    import json
    import pathlib
    import sys

    parser = argparse.ArgumentParser(description=TITLE)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: 4-epoch stream, 2 workers (full mode runs 8 epochs)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_continual.json",
        help="where to write the JSON rows (default: BENCH_continual.json)",
    )
    args = parser.parse_args()

    params = SMOKE if args.smoke else FULL
    rows = experiments.run_continual_release(**params)
    failures = _check_rows(rows, smoke=args.smoke)

    payload = {
        "experiment": "E28",
        "title": TITLE,
        "mode": "smoke" if args.smoke else "full",
        "rows": rows,
        "ok": not failures,
    }
    pathlib.Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    for row in rows:
        if "epoch" in row:
            print(
                f"epoch {row['epoch']}: v{row['version']} "
                f"marginal eps={row['marginal_epsilon']:g} "
                f"spent eps={row['spent_epsilon']:g} "
                f"(tree bound {row['tree_bound_epsilon']:g}, "
                f"naive {row['naive_epsilon']:g}) "
                f"digest_stable={row['digest_stable']} "
                f"reloaded={row['reloaded']}"
            )
        else:
            print(
                f"reload drill: {row['reloads']} reloads, "
                f"{row['queries_served']} queries, "
                f"{row['client_errors']} client errors, "
                f"serving v{row['final_version_serving']} "
                f"(head v{row['final_version_expected']})"
            )
    if failures:
        print("\n".join(f"FAIL: {line}" for line in failures), file=sys.stderr)
        return 1
    print(f"ok — rows written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
