"""E11 — Theorem 6: on the a^ell / b^ell neighboring pair the substring-count
error grows linearly in ell, matching the Omega(ell) lower bound."""

from repro.analysis import experiments


def test_e11_substring_count_lower_bound(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_substring_lb_experiment(
            [16, 64, 256, 1024], n=8, epsilon=1.0, trials=3
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E11", "Theorem 6: worst-case substring-count error vs ell", rows
    )
    # The measured error always dominates the Omega(ell) lower bound ...
    for row in rows:
        assert row["max_error"] >= row["lower_bound"] / 2.0
    # ... and it grows with ell roughly linearly (the paper's upper bound is
    # ell * polylog, the lower bound is ell / 2).
    errors = [row["error_on_D"] for row in rows]
    assert errors[-1] > errors[0]
