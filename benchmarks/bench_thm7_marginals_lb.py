"""E12 — Theorem 7: answering 1-way marginals through the Document Count
structure; pure DP pays ~d, approximate DP pays ~sqrt(d)."""

from repro.analysis import experiments


def test_e12_marginals_reduction(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_marginals_experiment(
            [4, 8], n=10, epsilon=1.0, delta=1e-6
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E12", "Theorem 7: 1-way marginals via Document Count", rows
    )
    by_key = {(row["d"], row["flavour"]): row for row in rows}
    for d in (4, 8):
        pure = by_key[(d, "pure")]["document_count_error"]
        approx = by_key[(d, "approx")]["document_count_error"]
        # Approximate DP answers the marginals more accurately than pure DP,
        # exactly the separation Theorem 7 formalises.
        assert approx < pure
