"""E8 — Simple-trie baseline (Omega(ell^2) noise) vs the paper's heavy-path
structure (O(ell polylog) noise): the win factor grows with ell."""

from repro.analysis import experiments


def test_e8_baseline_vs_heavy_paths(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_baseline_comparison(
            [64, 256, 1024, 4096], n=9, epsilon=1.0, trials=2
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E8", "Simple-trie baseline vs heavy-path structure (error vs ell)", rows
    )
    # The baseline's analytic bound grows quadratically while ours grows
    # near-linearly, so their ratio must increase along the sweep ...
    bound_ratios = [row["baseline_bound"] / row["heavy_path_bound"] for row in rows]
    assert bound_ratios == sorted(bound_ratios)
    # ... and the measured error ratio moves in the baseline's disfavour too.
    measured_ratios = [row["baseline_over_ours"] for row in rows]
    assert measured_ratios[-1] > measured_ratios[0]
    # At the largest ell the heavy-path structure is at least competitive
    # (the asymptotic crossover; see EXPERIMENTS.md for the exact numbers).
    assert measured_ratios[-1] > 0.5
