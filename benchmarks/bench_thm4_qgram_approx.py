"""E7 — Theorem 4: near-linear construction time of the approximate-DP
q-gram structure."""

from repro.analysis import experiments


def test_e7_qgram_construction_time(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_qgram_timing(
            [(50, 20), (100, 20), (200, 20), (400, 20)], q=4
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E7", "Theorem 4: q-gram construction time vs input size n*ell", rows
    )
    # Near-linear scaling: quadrupling the input must not increase the
    # per-character cost by more than ~5x (the suffix-array substitution adds
    # an O(log N) factor; a quadratic algorithm would grow ~8x here).
    first = rows[0]["seconds_per_char"]
    last = rows[-1]["seconds_per_char"]
    assert last <= first * 5.0
    # Absolute construction time stays laptop-friendly.
    assert rows[-1]["construction_seconds"] < 30.0
