"""E26 — Release payload formats: cold-start latency and per-process RSS.

The acceptance contract of the binary columnar release format
(``vNNNN.dpsb``, :mod:`repro.serving.binfmt`): at the 86k-node size, cold
start via binary+mmap — measured as *time to first batch*, load plus one
``batch_query`` — must be at least **5x** faster than parsing the JSON
payload; the canonical content digest must be equal across formats and
directions; ``query_many`` answers must be bit-identical across all three
load paths; and ``migrate()`` must convert a JSON version in place with the
digest proven equal before the old payload is removed.  The rows also
record the resident-set breakdown of concurrent mmap processes: the second
process's *private* pages over the mapped blob are the page-cache-sharing
headline (near zero).

Also runnable as a script (the CI ``release-format-smoke`` job does)::

    python benchmarks/bench_release_format.py --smoke --output smoke.json

Script mode persists the rows as JSON (the repo-root
``BENCH_release_format.json`` records the perf trajectory) and exits
non-zero when any correctness assertion or the speedup floor fails;
``--smoke`` runs only the 86k-node size (the full run adds 810k nodes).
"""

from repro.analysis import experiments

TITLE = "Release formats: cold start and RSS, JSON vs binary vs binary+mmap"

SPEEDUP_FLOOR = 5.0
SMOKE_SIZES = (86_000,)
FULL_SIZES = (86_000, 810_000)


def _check_rows(rows):
    failures = []
    for row in rows:
        nodes = row["num_nodes"]
        if not row["digests_equal"]:
            failures.append(f"{nodes} nodes: content digests differ across formats")
        if not row["parity_ok"]:
            failures.append(f"{nodes} nodes: query_many answers differ")
        if not row["migrate_ok"]:
            failures.append(f"{nodes} nodes: migrate failed its digest proof")
        if row["cold_start_speedup_mmap_vs_json"] < SPEEDUP_FLOOR:
            failures.append(
                f"{nodes} nodes: mmap cold start only "
                f"{row['cold_start_speedup_mmap_vs_json']:.2f}x over JSON "
                f"(floor {SPEEDUP_FLOOR}x)"
            )
    return failures


def test_e26_release_formats(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_release_format_benchmark(SMOKE_SIZES),
        rounds=1,
        iterations=1,
    )
    experiment_report.record("E26", TITLE, rows)
    failures = _check_rows(rows)
    assert not failures, "; ".join(failures)


def _main() -> int:
    import argparse
    import json
    import pathlib
    import sys

    parser = argparse.ArgumentParser(description=TITLE)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: the 86k-node size only (full mode adds 810k nodes)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_release_format.json",
        help="where to write the JSON rows (default: BENCH_release_format.json)",
    )
    args = parser.parse_args()

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    rows = experiments.run_release_format_benchmark(sizes)
    failures = _check_rows(rows)

    payload = {
        "experiment": "E26",
        "title": TITLE,
        "mode": "smoke" if args.smoke else "full",
        "speedup_floor": SPEEDUP_FLOOR,
        "rows": rows,
        "ok": not failures,
    }
    pathlib.Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    for row in rows:
        unique = row.get("second_process_unique_kb")
        print(
            f"{row['num_nodes']} nodes: json first-batch "
            f"{row['json_first_batch_seconds'] * 1e3:.1f}ms, binary "
            f"{row['binary_first_batch_seconds'] * 1e3:.1f}ms, binary+mmap "
            f"{row['mmap_first_batch_seconds'] * 1e3:.1f}ms "
            f"({row['cold_start_speedup_mmap_vs_json']:.0f}x vs json); "
            f"digests_equal={row['digests_equal']} "
            f"migrate_ok={row['migrate_ok']} "
            f"second_process_unique_kb={unique}"
        )
    if failures:
        print("\n".join(f"FAIL: {line}" for line in failures), file=sys.stderr)
        return 1
    print(f"ok — rows written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
