"""E17 — Design-choice ablation: heavy-path release vs per-node independent
noise calibrated to the naive ell^2 sensitivity, on the same candidate trie."""

from repro.analysis import experiments


def test_e17_heavy_path_ablation(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_heavy_path_ablation(
            [64, 256, 1024], n=9, epsilon=1.0, trials=2
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E17", "Ablation: heavy-path release vs per-node ell^2 noise", rows
    )
    # The per-node approach pays ~ell^2 noise, the heavy-path approach
    # ~ell polylog: the ratio must move in favour of heavy paths as ell grows.
    ratios = [row["per_node_over_heavy"] for row in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > ratios[0]
