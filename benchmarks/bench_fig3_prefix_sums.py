"""E3 — Figure 3: difference sequence and dyadic prefix sums on the topmost
heavy path of the candidate trie."""

import pytest

from repro.analysis import experiments


def test_e3_difference_sequence_prefix_sums(benchmark, experiment_report):
    rows = benchmark.pedantic(experiments.run_prefix_sum_figure, rounds=1, iterations=1)
    experiment_report.record(
        "E3", "Figure 3: difference sequence and prefix sums on a heavy path", rows
    )
    # The root of the trie spells the empty string and counts every position.
    assert rows[0]["node"] == "(root)"
    assert rows[0]["count"] == 23
    # Reconstructing count(v) = count(root) + prefix sum must be exact.
    for row in rows[1:]:
        assert rows[0]["count"] + row["prefix_sum"] == pytest.approx(row["count"])
    # Counts are non-increasing down a heavy path (Lemma 8's monotonicity).
    counts = [row["count"] for row in rows]
    assert all(a >= b for a, b in zip(counts, counts[1:]))
