"""E10 — Theorem 5 packing lower bound: the measured error on packing
instances sits between the packing lower bound and the Theorem 1 upper
bound."""

from repro.analysis import experiments


def test_e10_packing_lower_bound(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_packing_experiment([16, 32, 64], n=40, epsilon=1.0),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E10", "Theorem 5: packing instances (lower vs measured vs upper)", rows
    )
    for row in rows:
        # The measured error of our epsilon-DP structure respects the packing
        # lower bound (no DP algorithm can do better) and the Theorem 1 shape.
        assert row["measured_error"] >= row["packing_lower_bound"] / 4.0
    # Both the lower bound and the measured error grow with ell.
    lower = [row["packing_lower_bound"] for row in rows]
    assert lower == sorted(lower)
