"""E25 — Observability smoke: exposition validity and telemetry overhead.

The telemetry layer's contract is that it is *free when off and cheap when
on*: counters and spans must not tax the serving hot path, and whatever
``/metrics`` emits must be syntactically valid Prometheus text exposition
(the validator lives next to the renderer in :mod:`repro.obs.export`, so a
rendering bug cannot certify itself).  This script is the CI gate for both:

1. build a small noiseless release and drive a short mixed load test
   through a real HTTP server (``create_server``), recording per-endpoint
   latency percentiles;
2. scrape ``GET /metrics`` and run :func:`repro.obs.validate_exposition`
   over the bytes on the wire — the build fails on any grammar violation,
   non-cumulative bucket, or ``+Inf``/``_count`` disagreement — and check
   the request counters and latency histograms actually populated;
3. measure the batch-query hot path with telemetry enabled vs disabled
   (best-of-``reps`` each, interleaved) and fail if the enabled path costs
   more than ``OVERHEAD_FLOOR`` (5%) over the disabled path.

Run with::

    PYTHONPATH=src python benchmarks/bench_observability.py --smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import threading
import time
import urllib.request

import numpy as np

from repro import obs
from repro.core.construction import build_private_counting_structure
from repro.core.params import ConstructionParams
from repro.serving import QueryService, create_server, generate_workload, run_load_test
from repro.workloads import genome_with_motifs

TITLE = "Observability: exposition validity and telemetry overhead"

#: enabled/disabled best-of ratio the batch hot path must stay under.
OVERHEAD_FLOOR = 1.05

#: absolute slack (seconds) below which the ratio check is vacuous — on a
#: tiny workload a single scheduler tick dwarfs any real overhead.
NOISE_FLOOR_SECONDS = 2e-3


def _build_service(n: int, ell: int, seed: int) -> QueryService:
    rng = np.random.default_rng(seed)
    database = genome_with_motifs(n, ell, rng, motifs=("ACGTAC", "GGCC"))
    params = ConstructionParams.pure(2.0, beta=0.1, noiseless=True, threshold=1.0)
    structure = build_private_counting_structure(database, params, rng=rng)
    return QueryService({"genome": structure})


def _scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.read().decode("utf-8")


def _best_of(callable_, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def measure_overhead(
    service: QueryService, *, batches: int = 50, size: int = 64, reps: int = 7
) -> dict:
    """Best-of batch-query wall time with telemetry enabled vs disabled."""
    release = service.release("genome")
    rng = np.random.default_rng(7)
    pool = sorted(pattern for pattern, _ in release.items()) or [""]
    patterns = [pool[int(i)] for i in rng.integers(len(pool), size=size)]

    def run_batches() -> None:
        for _ in range(batches):
            service.batch(patterns)

    run_batches()  # warm the caches once, outside the timed region
    previous = obs.set_enabled(True)
    try:
        # Interleaved A/B: take each mode's best over `reps` passes so one
        # scheduler stall cannot decide the comparison.
        enabled_best = disabled_best = float("inf")
        for _ in range(reps):
            obs.set_enabled(True)
            enabled_best = min(enabled_best, _best_of(run_batches, 1))
            obs.set_enabled(False)
            disabled_best = min(disabled_best, _best_of(run_batches, 1))
    finally:
        obs.set_enabled(previous)
    ratio = enabled_best / disabled_best if disabled_best else 1.0
    return {
        "batches": batches,
        "batch_size": size,
        "enabled_seconds": enabled_best,
        "disabled_seconds": disabled_best,
        "overhead_ratio": ratio,
        "overhead_seconds": enabled_best - disabled_best,
    }


def run_observability_smoke(
    *, n: int = 300, ell: int = 10, ops: int = 400, threads: int = 8, seed: int = 0
) -> dict:
    service = _build_service(n, ell, seed)
    server = create_server(service, port=0)
    worker = threading.Thread(target=server.serve_forever, daemon=True)
    worker.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    failures: list[str] = []
    try:
        workload = generate_workload(service, ops, seed=seed)
        result = run_load_test(service, workload, threads=threads)
        if not result.bit_identical:
            failures.append(
                f"load test diverged: {len(result.mismatches)} mismatches, "
                f"{len(result.errors)} errors"
            )
        if not result.counters_consistent:
            failures.append("health counters drifted from the workload totals")

        text = _scrape(f"{base}/metrics")
        try:
            samples = obs.validate_exposition(text)
        except ValueError as error:
            failures.append(f"invalid exposition: {error}")
            samples = 0
        snapshot = json.loads(_scrape(f"{base}/metrics?format=json"))
        latency = {
            entry["labels"]["endpoint"]: entry["value"]
            for entry in snapshot.get("dpsc_request_seconds", {}).get("series", [])
        }
        for endpoint in ("query", "batch", "mine", "healthz"):
            if latency.get(endpoint, {}).get("count", 0) <= 0:
                failures.append(f"no latency observations for /{endpoint}")

        overhead = measure_overhead(service)
        if (
            overhead["overhead_ratio"] > OVERHEAD_FLOOR
            and overhead["overhead_seconds"] > NOISE_FLOOR_SECONDS
        ):
            failures.append(
                f"telemetry overhead {overhead['overhead_ratio']:.3f}x exceeds "
                f"the {OVERHEAD_FLOOR}x floor "
                f"(+{overhead['overhead_seconds'] * 1e3:.2f}ms)"
            )
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return {
        "experiment": "E25",
        "title": TITLE,
        "operations": result.operations,
        "threads": result.threads,
        "loadtest": result.row(),
        "exposition_samples": samples,
        "overhead": overhead,
        "failures": failures,
        "ok": not failures,
    }


def _main() -> int:
    parser = argparse.ArgumentParser(description=TITLE)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-sized CI run (smaller corpus and workload)",
    )
    parser.add_argument("--ops", type=int, default=0, help="override operation count")
    parser.add_argument(
        "--output",
        default="BENCH_observability.json",
        help="where to write the JSON payload",
    )
    args = parser.parse_args()
    if args.smoke:
        kwargs = {"n": 200, "ell": 8, "ops": args.ops or 300, "threads": 4}
    else:
        kwargs = {"n": 800, "ell": 12, "ops": args.ops or 2000, "threads": 8}
    payload = run_observability_smoke(**kwargs)
    pathlib.Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    row = payload["loadtest"]
    print(
        f"loadtest: {row['operations']} ops x {payload['threads']} threads, "
        f"{row['ops_per_second']:.0f} ops/s, "
        f"query_p95={row.get('query_p95_seconds', float('nan')) * 1e3:.3f}ms"
    )
    print(f"exposition: {payload['exposition_samples']} valid samples")
    overhead = payload["overhead"]
    print(
        f"overhead: enabled {overhead['enabled_seconds'] * 1e3:.2f}ms vs "
        f"disabled {overhead['disabled_seconds'] * 1e3:.2f}ms "
        f"({overhead['overhead_ratio']:.3f}x)"
    )
    if payload["failures"]:
        print(
            "\n".join(f"FAIL: {line}" for line in payload["failures"]),
            file=sys.stderr,
        )
        return 1
    print(f"ok — payload written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
