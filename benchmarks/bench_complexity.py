"""E15 — Complexity claims: queries run in O(|P|) time (independent of the
database size), and a direct micro-benchmark of a single query."""

from repro.analysis import experiments
from repro.core.construction import build_private_counting_structure
from repro.core.params import ConstructionParams
from repro.workloads.synthetic import periodic_documents

import numpy as np


def test_e15_query_time_linear_in_pattern_length(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_query_time_experiment(
            [1, 2, 4, 8, 16, 32], n=40, ell=64, repetitions=2000
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E15", "Query time vs pattern length (O(|P|) queries)", rows
    )
    times = [row["microseconds_per_query"] for row in rows]
    lengths = [row["pattern_length"] for row in rows]
    # Linear, not quadratic: growing |P| by 32x grows the time by far less
    # than 32^2 (and typically close to 32x or less, dominated by overhead).
    assert times[-1] <= times[0] * lengths[-1] * 4


def test_e15_single_query_microbenchmark(benchmark):
    """pytest-benchmark timing of one trie query on a realistic structure."""
    database = periodic_documents(40, 32, np.random.default_rng(0))
    params = ConstructionParams.pure(1.0, beta=0.1, noiseless=True, threshold=1.0)
    structure = build_private_counting_structure(
        database, params, rng=np.random.default_rng(0)
    )
    pattern = structure.patterns()[0]
    benchmark(structure.query, pattern)
