"""E4 — Theorem 1: error of the pure-DP structure scales (near-)linearly in
ell and stays below the analytic bound."""

from repro.analysis import experiments


def test_e4_pure_dp_error_scaling(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_error_scaling(
            [8, 16, 24], n=15, epsilon=1.0, symbols=("a", "b"), trials=2
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E4", "Theorem 1: pure-DP stored-count error vs ell", rows
    )
    # Measured error never exceeds the analytic (implementation-constant) bound.
    for row in rows:
        assert row["max_error_worst"] <= row["analytic_bound"]
    # The error grows with ell (the paper predicts ~linear growth).
    errors = [row["max_error_mean"] for row in rows]
    assert errors[-1] > errors[0]
    # Growth is clearly sub-quadratic: tripling ell must not blow the error
    # up by more than ~the bound's own growth factor.
    assert errors[-1] / max(errors[0], 1e-9) < (rows[-1]["ell"] / rows[0]["ell"]) ** 2
