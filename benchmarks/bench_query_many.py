"""E22 — Batched ``query_many`` vs per-pattern loops across structure kinds.

The unified :mod:`repro.api` layer's acceptance contract: every registered
structure kind answers ``query_many(patterns)`` bit-for-bit equal to the
per-pattern ``query`` loop, and the vectorized path beats the loop by at
least 5x on batches of >= 512 patterns on the q-gram structure (the
near-linear Theorem 4 construction, whose fixed-length traffic rides the
compiled trie's uniform-length batch path).
"""

from repro.analysis import experiments


def test_e22_query_many(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: experiments.run_query_many_benchmark(
            batch_sizes=(64, 256, 512, 1024)
        ),
        rounds=1,
        iterations=1,
    )
    experiment_report.record(
        "E22",
        "Batched query_many vs per-pattern query loops across structure kinds",
        rows,
    )
    kinds = {row["kind"] for row in rows}
    assert kinds == {"heavy-path", "qgram-t3", "qgram-t4", "baseline"}
    for row in rows:
        # Equivalence: batching may never change a single count.
        assert row["bitwise_equal"], (
            f"{row['kind']}: query_many diverges from the query loop "
            f"at batch {row['batch']}"
        )
    # The acceptance headline: >= 5x at >= 512 patterns on the q-gram
    # structure served at scale (Theorem 4).
    for row in rows:
        if row["kind"] == "qgram-t4" and row["batch"] >= 512:
            assert row["speedup"] >= 5.0, (
                f"qgram-t4 batch {row['batch']}: query_many only "
                f"{row['speedup']:.2f}x over the per-pattern loop"
            )
