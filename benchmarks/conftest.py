"""Shared infrastructure for the benchmark harness.

Every benchmark runs one experiment from DESIGN.md's index (E1-E19), records
its rows through the ``experiment_report`` fixture and asserts the shape the
paper predicts.  The collected tables are printed in the terminal summary (so
they survive pytest's output capturing and end up in ``bench_output.txt``)
and saved as JSON under ``results/``.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_table, save_results

_COLLECTED: list[tuple[str, str, list[dict]]] = []


class ExperimentReporter:
    """Collects experiment tables for the end-of-run summary."""

    def record(self, experiment_id: str, title: str, rows: list[dict]) -> None:
        _COLLECTED.append((experiment_id, title, rows))
        try:
            save_results(experiment_id, rows)
        except OSError:  # pragma: no cover - read-only filesystems
            pass


@pytest.fixture
def experiment_report() -> ExperimentReporter:
    return ExperimentReporter()


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: D103
    if not _COLLECTED:
        return
    terminalreporter.write_sep("=", "experiment tables (paper reproduction)")
    for experiment_id, title, rows in _COLLECTED:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"[{experiment_id}] {title}")
        for line in format_table(rows).splitlines():
            terminalreporter.write_line(line)
