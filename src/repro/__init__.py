"""repro — differentially private substring and document counting.

A from-scratch reproduction of "Differentially Private Substring and Document
Counting with Near-Optimal Error" (Bernardini, Bille, Gørtz, Steiner;
PODS 2025).  The package builds differentially private data structures that
answer, for *every* possible pattern, how often it occurs in a collection of
documents (Substring Count) or how many documents contain it (Document
Count), with additive error nearly matching the paper's lower bounds.

Quickstart::

    from repro import StringDatabase, ConstructionParams
    from repro import build_private_counting_structure

    db = StringDatabase(["aaaa", "abe", "absab", "babe", "bee", "bees"])
    params = ConstructionParams.pure(epsilon=2.0, beta=0.1)
    structure = build_private_counting_structure(db, params)
    structure.query("ab")          # noisy substring count, post-processing
    structure.mine(threshold=3.0)  # frequent-pattern mining, no extra privacy cost

Subpackages
-----------
``repro.core``
    The paper's contribution: candidate sets, the heavy-path construction
    (Theorems 1-2), q-gram structures (Theorems 3-4), mining, baselines,
    error bounds and lower-bound constructions.
``repro.strings``
    String-algorithm substrate (suffix arrays/trees, tries, Aho-Corasick).
``repro.counting``
    Batched exact-counting engines (naive / suffix-array / Aho-Corasick
    behind one ``count_many`` protocol with an ``auto`` selector); every
    construction stage and the serving build path count through this layer
    (see docs/ARCHITECTURE.md).
``repro.dp``
    Differential-privacy substrate (mechanisms, composition, binary-tree
    prefix sums).
``repro.trees``
    Heavy paths and private counting functions on trees (Theorems 8-9).
``repro.workloads``
    Synthetic workload generators (genome, transit, text, adversarial).
``repro.analysis``
    Error metrics, experiment runners, plain-text reporting.
``repro.serving``
    Production query serving: compiled array-backed tries with vectorized
    batch queries, a versioned release store, a cross-release privacy-budget
    ledger, and a threaded JSON query server with client (see
    ``docs/SERVING.md``).
"""

from repro.core import (
    DOCUMENT_COUNT,
    SUBSTRING_COUNT,
    ConstructionParams,
    ExactCountingOracle,
    PrivateCountingTrie,
    StringDatabase,
    build_private_counting_structure,
    build_qgram_structure,
    build_simple_trie_baseline,
    build_theorem1_structure,
    build_theorem2_structure,
    build_theorem3_qgram_structure,
    build_theorem4_qgram_structure,
    check_mining_guarantee,
    mine_frequent_qgrams,
    mine_frequent_substrings,
)
from repro.counting import (
    AhoCorasickEngine,
    CountingEngine,
    NaiveEngine,
    SuffixArrayEngine,
    make_engine,
    resolve_backend,
)
from repro.dp import GaussianMechanism, LaplaceMechanism, PrivacyBudget
from repro.serving import (
    BudgetLedger,
    CompiledTrie,
    QueryService,
    ReleaseStore,
    ServingClient,
    build_release,
)
from repro.trees import private_colored_counts, private_hierarchical_counts, private_tree_counts

__version__ = "1.0.0"

__all__ = [
    "DOCUMENT_COUNT",
    "SUBSTRING_COUNT",
    "ConstructionParams",
    "ExactCountingOracle",
    "PrivateCountingTrie",
    "StringDatabase",
    "build_private_counting_structure",
    "build_qgram_structure",
    "build_simple_trie_baseline",
    "build_theorem1_structure",
    "build_theorem2_structure",
    "build_theorem3_qgram_structure",
    "build_theorem4_qgram_structure",
    "check_mining_guarantee",
    "mine_frequent_qgrams",
    "mine_frequent_substrings",
    "AhoCorasickEngine",
    "CountingEngine",
    "NaiveEngine",
    "SuffixArrayEngine",
    "make_engine",
    "resolve_backend",
    "GaussianMechanism",
    "LaplaceMechanism",
    "PrivacyBudget",
    "BudgetLedger",
    "CompiledTrie",
    "QueryService",
    "ReleaseStore",
    "ServingClient",
    "build_release",
    "private_colored_counts",
    "private_hierarchical_counts",
    "private_tree_counts",
    "__version__",
]
