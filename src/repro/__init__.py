"""repro — differentially private substring and document counting.

A from-scratch reproduction of "Differentially Private Substring and Document
Counting with Near-Optimal Error" (Bernardini, Bille, Gørtz, Steiner;
PODS 2025).  The package builds differentially private data structures that
answer, for *every* possible pattern, how often it occurs in a collection of
documents (Substring Count) or how many documents contain it (Document
Count), with additive error nearly matching the paper's lower bounds.

Quickstart (the unified API; see docs/API.md and README.md)::

    from repro import Dataset

    counter = (
        Dataset.from_documents(["aaaa", "abe", "absab", "babe", "bee", "bees"])
        .with_budget(epsilon=2.0)
        .with_beta(0.1)
        .build("heavy-path")       # or "qgram-t3"/"qgram-t4" (q=...), "baseline"
    )
    counter.query("ab")            # noisy substring count, post-processing
    counter.query_many(["ab", "be"])   # vectorized batch, same counts
    counter.mine(threshold=3.0)    # frequent-pattern mining, no extra privacy cost

Every structure kind builds through the same ``Dataset`` façade, satisfies
the ``PrivateCounter`` protocol, and plugs into the serving stack
(``counter.release(store)``); new kinds register via
``register_structure_kind`` without touching core.  The per-theorem
``build_*`` functions still work as deprecation shims.

Subpackages
-----------
``repro.api``
    The canonical public surface: the ``PrivateCounter`` protocol, the
    structure-kind registry, and the fluent ``Dataset`` builder
    (see ``docs/API.md``).
``repro.core``
    The paper's contribution: candidate sets, the heavy-path construction
    (Theorems 1-2), q-gram structures (Theorems 3-4), mining, baselines,
    error bounds and lower-bound constructions.
``repro.strings``
    String-algorithm substrate (suffix arrays/trees, tries, Aho-Corasick).
``repro.counting``
    Batched exact-counting engines (naive / suffix-array / Aho-Corasick
    behind one ``count_many`` protocol with an ``auto`` selector); every
    construction stage and the serving build path count through this layer
    (see docs/ARCHITECTURE.md).
``repro.dp``
    Differential-privacy substrate (mechanisms, composition, binary-tree
    prefix sums).
``repro.trees``
    Heavy paths and private counting functions on trees (Theorems 8-9).
``repro.workloads``
    Synthetic workload generators (genome, transit, text, adversarial).
``repro.analysis``
    Error metrics, experiment runners, plain-text reporting.
``repro.serving``
    Production query serving: compiled array-backed tries with vectorized
    batch queries, a versioned release store, a cross-release privacy-budget
    ledger, and a threaded JSON query server with client (see
    ``docs/SERVING.md``).
"""

from repro.api import (
    CorpusStream,
    Dataset,
    PrivateCounter,
    StructureKind,
    StructureRegistry,
    default_registry,
    register_structure_kind,
)
from repro.core import (
    DOCUMENT_COUNT,
    SUBSTRING_COUNT,
    ConstructionParams,
    ExactCountingOracle,
    PrivateCountingTrie,
    StringDatabase,
    build_private_counting_structure,
    build_qgram_structure,
    build_simple_trie_baseline,
    build_theorem1_structure,
    build_theorem2_structure,
    build_theorem3_qgram_structure,
    build_theorem4_qgram_structure,
    check_mining_guarantee,
    mine_frequent_qgrams,
    mine_frequent_substrings,
)
from repro.counting import (
    AhoCorasickEngine,
    CountingEngine,
    NaiveEngine,
    SuffixArrayEngine,
    make_engine,
    resolve_backend,
)
from repro.dp import ContinualAccountant, GaussianMechanism, LaplaceMechanism, PrivacyBudget
from repro.serving import (
    BudgetLedger,
    CompiledTrie,
    EpochScheduler,
    QueryService,
    ReleaseStore,
    ServingClient,
    build_release,
)
from repro.trees import private_colored_counts, private_hierarchical_counts, private_tree_counts

__version__ = "1.0.0"

__all__ = [
    "CorpusStream",
    "Dataset",
    "PrivateCounter",
    "StructureKind",
    "StructureRegistry",
    "default_registry",
    "register_structure_kind",
    "DOCUMENT_COUNT",
    "SUBSTRING_COUNT",
    "ConstructionParams",
    "ExactCountingOracle",
    "PrivateCountingTrie",
    "StringDatabase",
    "build_private_counting_structure",
    "build_qgram_structure",
    "build_simple_trie_baseline",
    "build_theorem1_structure",
    "build_theorem2_structure",
    "build_theorem3_qgram_structure",
    "build_theorem4_qgram_structure",
    "check_mining_guarantee",
    "mine_frequent_qgrams",
    "mine_frequent_substrings",
    "AhoCorasickEngine",
    "CountingEngine",
    "NaiveEngine",
    "SuffixArrayEngine",
    "make_engine",
    "resolve_backend",
    "ContinualAccountant",
    "GaussianMechanism",
    "LaplaceMechanism",
    "PrivacyBudget",
    "BudgetLedger",
    "CompiledTrie",
    "EpochScheduler",
    "QueryService",
    "ReleaseStore",
    "ServingClient",
    "build_release",
    "private_colored_counts",
    "private_hierarchical_counts",
    "private_tree_counts",
    "__version__",
]
