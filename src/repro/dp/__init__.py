"""Differential-privacy substrate: mechanisms, composition, prefix sums."""

from repro.dp.composition import (
    CompositionRecord,
    ContinualAccountant,
    EpochCharge,
    PrivacyAccountant,
    PrivacyBudget,
)
from repro.dp.distributions import (
    gaussian_sum_std,
    gaussian_tail_bound,
    laplace_sum_tail_bound,
    laplace_tail_bound,
    sample_gaussian,
    sample_laplace,
)
from repro.dp.mechanisms import (
    CountingMechanism,
    GaussianMechanism,
    LaplaceMechanism,
    NoiselessMechanism,
    per_level_mechanism,
)
from repro.dp.prefix_sums import (
    NoisyPrefixSums,
    PrefixSumMechanism,
    canonical_cover,
    dyadic_intervals,
)

__all__ = [
    "CompositionRecord",
    "ContinualAccountant",
    "EpochCharge",
    "PrivacyAccountant",
    "PrivacyBudget",
    "gaussian_sum_std",
    "gaussian_tail_bound",
    "laplace_sum_tail_bound",
    "laplace_tail_bound",
    "sample_gaussian",
    "sample_laplace",
    "CountingMechanism",
    "GaussianMechanism",
    "LaplaceMechanism",
    "NoiselessMechanism",
    "per_level_mechanism",
    "NoisyPrefixSums",
    "PrefixSumMechanism",
    "canonical_cover",
    "dyadic_intervals",
]
