"""Differential-privacy noise mechanisms.

Three mechanisms share a common interface (:class:`CountingMechanism`) so the
paper's construction algorithms can be written once and instantiated with
either privacy flavour:

* :class:`LaplaceMechanism` — the epsilon-DP Laplace mechanism (Lemma 3 /
  Corollary 1); calibrated to the ``L1`` sensitivity of the released vector.
* :class:`GaussianMechanism` — the (epsilon, delta)-DP Gaussian mechanism
  (Lemma 5 / Corollary 2); calibrated to the ``L2`` sensitivity.
* :class:`NoiselessMechanism` — adds no noise at all.  It exists purely so
  that tests and illustrative figures can exercise the construction pipeline
  deterministically; **it provides no privacy whatsoever** and its
  ``epsilon`` is reported as infinity.

Every mechanism exposes the exact high-probability sup-norm error bound of
the noise it injects, which is what the analytic bounds of
:mod:`repro.core.error_bounds` are assembled from.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.dp.composition import PrivacyBudget
from repro.dp.distributions import (
    gaussian_tail_bound,
    laplace_tail_bound,
    sample_gaussian,
    sample_laplace,
)
from repro.exceptions import PrivacyParameterError, SensitivityError

__all__ = [
    "CountingMechanism",
    "LaplaceMechanism",
    "GaussianMechanism",
    "NoiselessMechanism",
    "per_level_mechanism",
]


def _check_sensitivity(value: float, name: str) -> None:
    if value <= 0 or not math.isfinite(value):
        raise SensitivityError(f"{name} must be positive and finite, got {value}")


class CountingMechanism(ABC):
    """Common interface of the noise mechanisms used by the constructions.

    The construction algorithms compute both an ``L1`` and an ``L2``
    sensitivity bound for each vector of counts they release; a concrete
    mechanism uses whichever norm its privacy analysis needs.
    """

    #: epsilon of the guarantee provided by one invocation of the mechanism.
    epsilon: float
    #: delta of the guarantee (0 for pure DP).
    delta: float

    @property
    def is_pure(self) -> bool:
        """``True`` when the mechanism satisfies pure (delta = 0) DP."""
        return self.delta == 0.0

    @abstractmethod
    def noise_scale(self, l1_sensitivity: float, l2_sensitivity: float) -> float:
        """The scale parameter of the injected noise (Laplace scale ``b`` or
        Gaussian standard deviation ``sigma``)."""

    @abstractmethod
    def randomize(
        self,
        values: np.ndarray,
        *,
        l1_sensitivity: float,
        l2_sensitivity: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return ``values`` plus freshly sampled noise."""

    @abstractmethod
    def sup_error_bound(
        self,
        num_queries: int,
        beta: float,
        *,
        l1_sensitivity: float,
        l2_sensitivity: float,
    ) -> float:
        """A bound ``alpha`` such that with probability at least ``1 - beta``
        the noise added to every one of ``num_queries`` released values has
        absolute value at most ``alpha``."""


@dataclass(frozen=True)
class LaplaceMechanism(CountingMechanism):
    """The epsilon-differentially private Laplace mechanism (Lemma 3)."""

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise PrivacyParameterError("epsilon must be positive")
        if self.delta != 0.0:
            raise PrivacyParameterError("the Laplace mechanism has delta = 0")

    def noise_scale(self, l1_sensitivity: float, l2_sensitivity: float) -> float:
        _check_sensitivity(l1_sensitivity, "l1_sensitivity")
        return l1_sensitivity / self.epsilon

    def randomize(
        self,
        values: np.ndarray,
        *,
        l1_sensitivity: float,
        l2_sensitivity: float = 0.0,
        rng: np.random.Generator,
    ) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        scale = self.noise_scale(l1_sensitivity, l2_sensitivity)
        return values + sample_laplace(scale, values.shape, rng)

    def sup_error_bound(
        self,
        num_queries: int,
        beta: float,
        *,
        l1_sensitivity: float,
        l2_sensitivity: float = 0.0,
    ) -> float:
        # Corollary 1: ||noise||_inf <= (Delta_1 / epsilon) * ln(k / beta)
        # with probability >= 1 - beta (union bound over k coordinates).
        scale = self.noise_scale(l1_sensitivity, l2_sensitivity)
        return laplace_tail_bound(scale, beta / max(1, num_queries))


@dataclass(frozen=True)
class GaussianMechanism(CountingMechanism):
    """The (epsilon, delta)-differentially private Gaussian mechanism
    (Lemma 5), with ``sigma = sqrt(2 ln(1.25 / delta)) * Delta_2 / epsilon``.
    """

    epsilon: float
    delta: float

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise PrivacyParameterError("epsilon must be positive")
        if not 0 < self.delta < 1:
            raise PrivacyParameterError("delta must lie in (0, 1)")

    def noise_scale(self, l1_sensitivity: float, l2_sensitivity: float) -> float:
        _check_sensitivity(l2_sensitivity, "l2_sensitivity")
        c = math.sqrt(2.0 * math.log(1.25 / self.delta))
        return c * l2_sensitivity / self.epsilon

    def randomize(
        self,
        values: np.ndarray,
        *,
        l1_sensitivity: float = 0.0,
        l2_sensitivity: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        sigma = self.noise_scale(l1_sensitivity, l2_sensitivity)
        return values + sample_gaussian(sigma, values.shape, rng)

    def sup_error_bound(
        self,
        num_queries: int,
        beta: float,
        *,
        l1_sensitivity: float = 0.0,
        l2_sensitivity: float,
    ) -> float:
        # Corollary 2: sigma * sqrt(2 ln(2k / beta)) bounds every coordinate
        # with probability >= 1 - beta.
        sigma = self.noise_scale(l1_sensitivity, l2_sensitivity)
        return gaussian_tail_bound(sigma, beta / max(1, num_queries))


@dataclass(frozen=True)
class NoiselessMechanism(CountingMechanism):
    """A mechanism that adds no noise.

    .. warning::
       This mechanism is **not differentially private**.  It is provided so
       the structural plumbing of the construction algorithms (candidate
       sets, heavy-path bookkeeping, prefix sums, pruning) can be verified
       exactly in tests and so the paper's illustrative figures (which show
       exact counts) can be regenerated.  Its ``epsilon`` is infinity.
    """

    epsilon: float = math.inf
    delta: float = 0.0

    def noise_scale(self, l1_sensitivity: float, l2_sensitivity: float) -> float:
        return 0.0

    def randomize(
        self,
        values: np.ndarray,
        *,
        l1_sensitivity: float = 0.0,
        l2_sensitivity: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        return np.asarray(values, dtype=np.float64).copy()

    def sup_error_bound(
        self,
        num_queries: int,
        beta: float,
        *,
        l1_sensitivity: float = 0.0,
        l2_sensitivity: float = 0.0,
    ) -> float:
        return 0.0


def per_level_mechanism(
    budget: PrivacyBudget, num_levels: int, noiseless: bool = False
) -> CountingMechanism:
    """The per-level mechanism of a multi-level candidate construction.

    The total budget is split evenly across the ``num_levels`` releases
    (simple composition, Lemma 1): ``floor(log2 ell) + 1`` levels for the
    paper's doubling strategy, ``ell`` for the one-letter-extension ablation.
    Pure budgets get Laplace noise, approximate budgets Gaussian;
    ``noiseless`` short-circuits to :class:`NoiselessMechanism` for tests and
    exact figures.
    """
    if noiseless:
        return NoiselessMechanism()
    share = budget.split(num_levels)
    if budget.is_pure:
        return LaplaceMechanism(share.epsilon)
    return GaussianMechanism(share.epsilon, share.delta)
