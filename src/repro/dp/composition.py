"""Privacy budgets, simple composition and accounting.

The paper's constructions split a global budget ``(epsilon, delta)`` across a
fixed number of sub-algorithms and rely on *simple composition* (Lemma 1): a
sequence of ``(epsilon_i, delta_i)``-DP algorithms is
``(sum epsilon_i, sum delta_i)``-DP.  :class:`PrivacyBudget` models a budget
and its splits; :class:`PrivacyAccountant` records what each construction
stage actually spent, so the total privacy cost of a run can be audited.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import PrivacyParameterError

__all__ = ["PrivacyBudget", "PrivacyAccountant", "CompositionRecord"]


@dataclass(frozen=True)
class PrivacyBudget:
    """An ``(epsilon, delta)`` differential-privacy budget."""

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise PrivacyParameterError("epsilon must be positive")
        if not 0 <= self.delta < 1:
            raise PrivacyParameterError("delta must lie in [0, 1)")

    @property
    def is_pure(self) -> bool:
        return self.delta == 0.0

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    def split(self, parts: int) -> "PrivacyBudget":
        """Budget of one of ``parts`` equal shares (simple composition)."""
        if parts < 1:
            raise PrivacyParameterError("parts must be at least 1")
        return PrivacyBudget(self.epsilon / parts, self.delta / parts)

    def scaled(self, fraction: float) -> "PrivacyBudget":
        """Budget scaled by a fraction in ``(0, 1]``."""
        if not 0 < fraction <= 1:
            raise PrivacyParameterError("fraction must lie in (0, 1]")
        return PrivacyBudget(self.epsilon * fraction, self.delta * fraction)

    def compose(self, other: "PrivacyBudget") -> "PrivacyBudget":
        """Simple composition of two budgets (Lemma 1)."""
        return PrivacyBudget(self.epsilon + other.epsilon, self.delta + other.delta)


@dataclass(frozen=True)
class CompositionRecord:
    """One accounted privacy expenditure."""

    label: str
    epsilon: float
    delta: float


@dataclass
class PrivacyAccountant:
    """Tracks privacy expenditures under simple composition.

    Construction algorithms register every sub-mechanism they run; tests then
    assert that the total never exceeds the user-supplied budget.
    """

    records: list[CompositionRecord] = field(default_factory=list)

    def spend(self, label: str, epsilon: float, delta: float = 0.0) -> None:
        """Record an ``(epsilon, delta)``-DP sub-algorithm invocation."""
        if epsilon < 0 or delta < 0:
            raise PrivacyParameterError("cannot spend a negative budget")
        self.records.append(CompositionRecord(label, epsilon, delta))

    @property
    def total_epsilon(self) -> float:
        return sum(record.epsilon for record in self.records)

    @property
    def total_delta(self) -> float:
        return sum(record.delta for record in self.records)

    def total(self) -> PrivacyBudget:
        """The composed budget of everything spent so far."""
        epsilon = self.total_epsilon
        delta = self.total_delta
        if epsilon == 0:
            # An accountant with no expenditure composes to the trivial
            # guarantee; report an infinitesimally small positive epsilon so
            # PrivacyBudget's validation is satisfied.
            return PrivacyBudget(epsilon=1e-12, delta=delta)
        return PrivacyBudget(epsilon=epsilon, delta=delta)

    def within(self, budget: PrivacyBudget, tolerance: float = 1e-9) -> bool:
        """``True`` when the composed expenditure stays within ``budget``
        (up to floating-point tolerance)."""
        return (
            self.total_epsilon <= budget.epsilon + tolerance
            and self.total_delta <= budget.delta + tolerance
        )

    def summary(self) -> str:
        """Human-readable breakdown of the expenditures."""
        lines = [
            f"  {record.label}: epsilon={record.epsilon:.6g}, delta={record.delta:.3g}"
            for record in self.records
        ]
        lines.append(
            f"  total: epsilon={self.total_epsilon:.6g}, delta={self.total_delta:.3g}"
        )
        return "\n".join(lines)
