"""Privacy budgets, simple composition and accounting.

The paper's constructions split a global budget ``(epsilon, delta)`` across a
fixed number of sub-algorithms and rely on *simple composition* (Lemma 1): a
sequence of ``(epsilon_i, delta_i)``-DP algorithms is
``(sum epsilon_i, sum delta_i)``-DP.  :class:`PrivacyBudget` models a budget
and its splits; :class:`PrivacyAccountant` records what each construction
stage actually spent, so the total privacy cost of a run can be audited.

:class:`ContinualAccountant` extends the same accounting to *continual
observation*: a corpus that grows by one epoch at a time and is re-released
after every epoch.  Naive sequential composition prices ``T`` re-releases at
``T`` times the per-release budget; charging them against the dyadic-tree
schedule of :mod:`repro.dp.prefix_sums` (the binary-tree mechanism applied to
epochs instead of sequence positions) brings the total down to
``(floor(log2 T) + 1)`` times the per-release budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import PrivacyParameterError

__all__ = [
    "PrivacyBudget",
    "PrivacyAccountant",
    "CompositionRecord",
    "ContinualAccountant",
    "EpochCharge",
]


@dataclass(frozen=True)
class PrivacyBudget:
    """An ``(epsilon, delta)`` differential-privacy budget."""

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise PrivacyParameterError("epsilon must be positive")
        if not 0 <= self.delta < 1:
            raise PrivacyParameterError("delta must lie in [0, 1)")

    @property
    def is_pure(self) -> bool:
        return self.delta == 0.0

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    def split(self, parts: int) -> "PrivacyBudget":
        """Budget of one of ``parts`` equal shares (simple composition)."""
        if parts < 1:
            raise PrivacyParameterError("parts must be at least 1")
        return PrivacyBudget(self.epsilon / parts, self.delta / parts)

    def scaled(self, fraction: float) -> "PrivacyBudget":
        """Budget scaled by a fraction in ``(0, 1]``."""
        if not 0 < fraction <= 1:
            raise PrivacyParameterError("fraction must lie in (0, 1]")
        return PrivacyBudget(self.epsilon * fraction, self.delta * fraction)

    def compose(self, other: "PrivacyBudget") -> "PrivacyBudget":
        """Simple composition of two budgets (Lemma 1)."""
        return PrivacyBudget(self.epsilon + other.epsilon, self.delta + other.delta)


@dataclass(frozen=True)
class CompositionRecord:
    """One accounted privacy expenditure."""

    label: str
    epsilon: float
    delta: float


@dataclass
class PrivacyAccountant:
    """Tracks privacy expenditures under simple composition.

    Construction algorithms register every sub-mechanism they run; tests then
    assert that the total never exceeds the user-supplied budget.
    """

    records: list[CompositionRecord] = field(default_factory=list)

    def spend(self, label: str, epsilon: float, delta: float = 0.0) -> None:
        """Record an ``(epsilon, delta)``-DP sub-algorithm invocation."""
        if epsilon < 0 or delta < 0:
            raise PrivacyParameterError("cannot spend a negative budget")
        self.records.append(CompositionRecord(label, epsilon, delta))

    @property
    def total_epsilon(self) -> float:
        return sum(record.epsilon for record in self.records)

    @property
    def total_delta(self) -> float:
        return sum(record.delta for record in self.records)

    def total(self) -> PrivacyBudget:
        """The composed budget of everything spent so far."""
        epsilon = self.total_epsilon
        delta = self.total_delta
        if epsilon == 0:
            # An accountant with no expenditure composes to the trivial
            # guarantee; report an infinitesimally small positive epsilon so
            # PrivacyBudget's validation is satisfied.
            return PrivacyBudget(epsilon=1e-12, delta=delta)
        return PrivacyBudget(epsilon=epsilon, delta=delta)

    def within(self, budget: PrivacyBudget, tolerance: float = 1e-9) -> bool:
        """``True`` when the composed expenditure stays within ``budget``
        (up to floating-point tolerance)."""
        return (
            self.total_epsilon <= budget.epsilon + tolerance
            and self.total_delta <= budget.delta + tolerance
        )

    def summary(self) -> str:
        """Human-readable breakdown of the expenditures."""
        lines = [
            f"  {record.label}: epsilon={record.epsilon:.6g}, delta={record.delta:.3g}"
            for record in self.records
        ]
        lines.append(
            f"  total: epsilon={self.total_epsilon:.6g}, delta={self.total_delta:.3g}"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class EpochCharge:
    """The accounting outcome of one epoch under the dyadic-tree schedule."""

    #: 1-based epoch number.
    epoch: int
    #: marginal ``(epsilon, delta)`` this epoch added to the running total
    #: (the full per-level budget when a new tree level opened, zero
    #: otherwise — see :class:`ContinualAccountant`).
    epsilon: float
    delta: float
    #: whether this epoch opened a new dyadic level (epoch is a power of two).
    new_level: bool
    #: dyadic levels in use after this epoch: ``floor(log2 epoch) + 1``.
    levels_used: int
    #: the dyadic interval ``[epoch - lowbit(epoch), epoch)`` that *completed*
    #: at this epoch — the one new per-interval structure a continual builder
    #: has to construct.
    new_interval: tuple[int, int]
    #: canonical dyadic cover of ``[0, epoch)`` — the intervals whose
    #: structures the epoch's combined release is assembled from.
    cover: tuple[tuple[int, int], ...]


class ContinualAccountant:
    """Prices ``T`` re-releases of a growing corpus at ``O(log T)`` budget.

    The schedule is the binary-tree mechanism of
    :mod:`repro.dp.prefix_sums` applied to *epochs*: the release after epoch
    ``t`` is assembled from one private structure per interval of
    ``canonical_cover(t, horizon)``, and exactly one new interval —
    ``[t - lowbit(t), t)``, exposed as :meth:`new_interval` — completes at
    each epoch.  Each per-interval structure is built over only the
    documents of its epochs with the full ``epoch_budget``.

    Why that costs ``O(log T)`` instead of ``O(T)``: every document arrives
    in exactly one epoch, so the intervals of one dyadic *level* are
    data-disjoint and compose in parallel — the whole level costs one
    ``epoch_budget`` no matter how many of its intervals are ever built.
    Levels compose sequentially, and epochs ``1..t`` touch levels
    ``0..floor(log2 t)``, so the cumulative spend through epoch ``t`` is
    ``(floor(log2 t) + 1) * epoch_budget``.  The marginal charge of an epoch
    is therefore the full ``epoch_budget`` exactly when a new level opens
    (``t`` a power of two) and zero otherwise.  Combining the cover
    structures into one release is post-processing and free.

    Epochs must be charged in order (1, 2, 3, ...): the schedule's soundness
    argument is about the *sequence* of releases, not any single one.
    """

    def __init__(self, epoch_budget: PrivacyBudget, *, horizon: int) -> None:
        if horizon < 1:
            raise PrivacyParameterError("horizon must be at least 1 epoch")
        self.epoch_budget = epoch_budget
        self.horizon = int(horizon)
        #: dyadic levels at full horizon: floor(log2 T) + 1.
        self.levels = int(math.floor(math.log2(self.horizon))) + 1
        self.accountant = PrivacyAccountant()
        self.charges: list[EpochCharge] = []

    # ------------------------------------------------------------------
    # Schedule geometry (pure functions of the epoch number)
    # ------------------------------------------------------------------
    @staticmethod
    def levels_used(epoch: int) -> int:
        """Dyadic levels in use after ``epoch`` epochs: ``floor(log2 t)+1``."""
        if epoch < 1:
            return 0
        return epoch.bit_length()

    @staticmethod
    def new_interval(epoch: int) -> tuple[int, int]:
        """The one dyadic interval that completes at ``epoch``:
        ``[epoch - lowbit(epoch), epoch)``."""
        if epoch < 1:
            raise PrivacyParameterError("epochs are numbered from 1")
        return (epoch - (epoch & -epoch), epoch)

    def cover(self, epoch: int) -> list[tuple[int, int]]:
        """Canonical dyadic cover of ``[0, epoch)`` — the per-interval
        structures the epoch's combined release is built from (reuses
        :func:`repro.dp.prefix_sums.canonical_cover`)."""
        from repro.dp.prefix_sums import canonical_cover

        if not 1 <= epoch <= self.horizon:
            raise PrivacyParameterError(
                f"epoch {epoch} outside the schedule horizon [1, {self.horizon}]"
            )
        return canonical_cover(epoch, self.horizon)

    def marginal(self, epoch: int) -> tuple[float, float]:
        """The ``(epsilon, delta)`` charging ``epoch`` would add: the full
        epoch budget when a new level opens, zero otherwise."""
        if not 1 <= epoch <= self.horizon:
            raise PrivacyParameterError(
                f"epoch {epoch} outside the schedule horizon [1, {self.horizon}]"
            )
        if epoch & (epoch - 1) == 0:  # power of two: a new level opens
            return (self.epoch_budget.epsilon, self.epoch_budget.delta)
        return (0.0, 0.0)

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    @property
    def current_epoch(self) -> int:
        """Epochs charged so far (the next charge is ``current_epoch + 1``)."""
        return len(self.charges)

    def charge_epoch(self, epoch: int | None = None) -> EpochCharge:
        """Charge the next epoch against the schedule and return its record.

        ``epoch`` defaults to the next epoch in sequence and must equal it
        when given — the schedule cannot skip or repeat epochs.
        """
        expected = self.current_epoch + 1
        if epoch is None:
            epoch = expected
        if epoch != expected:
            raise PrivacyParameterError(
                f"epochs must be charged in order: expected epoch {expected}, "
                f"got {epoch}"
            )
        if epoch > self.horizon:
            raise PrivacyParameterError(
                f"epoch {epoch} exceeds the schedule horizon {self.horizon}"
            )
        epsilon, delta = self.marginal(epoch)
        self.accountant.spend(f"epoch-{epoch}", epsilon, delta)
        charge = EpochCharge(
            epoch=epoch,
            epsilon=epsilon,
            delta=delta,
            new_level=epsilon > 0 or delta > 0 or epoch == 1,
            levels_used=self.levels_used(epoch),
            new_interval=self.new_interval(epoch),
            cover=tuple(self.cover(epoch)),
        )
        self.charges.append(charge)
        return charge

    # ------------------------------------------------------------------
    # Totals and bounds
    # ------------------------------------------------------------------
    @property
    def total_epsilon(self) -> float:
        return self.accountant.total_epsilon

    @property
    def total_delta(self) -> float:
        return self.accountant.total_delta

    def spent_through(self, epoch: int) -> tuple[float, float]:
        """The closed-form cumulative spend after ``epoch`` epochs:
        ``(floor(log2 epoch) + 1) * epoch_budget``."""
        levels = self.levels_used(epoch)
        return (
            levels * self.epoch_budget.epsilon,
            levels * self.epoch_budget.delta,
        )

    def total_budget(self) -> PrivacyBudget:
        """Worst-case spend over the full horizon: ``levels * epoch_budget``
        — what a :class:`~repro.serving.BudgetLedger` cap must cover."""
        return PrivacyBudget(
            self.levels * self.epoch_budget.epsilon,
            self.levels * self.epoch_budget.delta,
        )

    def naive_budget(self, epochs: int | None = None) -> PrivacyBudget:
        """What the same re-releases would cost under naive sequential
        composition (one full ``epoch_budget`` per epoch) — the comparison
        point the tree schedule beats for ``epochs >= 3``."""
        count = self.horizon if epochs is None else int(epochs)
        if count < 1:
            raise PrivacyParameterError("epochs must be at least 1")
        return PrivacyBudget(
            count * self.epoch_budget.epsilon,
            count * self.epoch_budget.delta,
        )
