"""Noise distributions and their concentration bounds.

This module collects the probabilistic facts the paper relies on:

* the Laplace distribution and its tail bound (Lemma 2);
* the normal distribution and the Gaussian tail bound (Lemma 4);
* concentration of sums of independent Laplace variables (Lemma 12,
  which instantiates Corollary 2.9 of Chan-Shi-Song);
* closure of Gaussians under addition (Fact 1).

All bounds are implemented with explicit constants so the analytic error
bounds exposed by :mod:`repro.core.error_bounds` match the noise actually
injected by the mechanisms.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "sample_laplace",
    "sample_gaussian",
    "laplace_tail_bound",
    "gaussian_tail_bound",
    "laplace_sum_tail_bound",
    "gaussian_sum_std",
]


def sample_laplace(
    scale: float, size: int | tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Draw independent ``Lap(scale)`` variables.

    ``scale = 0`` returns exact zeros, which is what the noiseless testing
    mechanism relies on.
    """
    if scale < 0:
        raise ValueError("the Laplace scale must be non-negative")
    if scale == 0:
        return np.zeros(size)
    return rng.laplace(loc=0.0, scale=scale, size=size)


def sample_gaussian(
    sigma: float, size: int | tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Draw independent ``N(0, sigma^2)`` variables."""
    if sigma < 0:
        raise ValueError("the Gaussian standard deviation must be non-negative")
    if sigma == 0:
        return np.zeros(size)
    return rng.normal(loc=0.0, scale=sigma, size=size)


def laplace_tail_bound(scale: float, beta: float) -> float:
    """Smallest ``t`` with ``Pr[|Lap(scale)| >= t] <= beta``.

    By Lemma 2, ``Pr[|Y| >= t * scale] = exp(-t)``, hence
    ``t = scale * ln(1 / beta)``.
    """
    _check_beta(beta)
    if scale == 0:
        return 0.0
    return scale * math.log(1.0 / beta)


def gaussian_tail_bound(sigma: float, beta: float) -> float:
    """``t`` with ``Pr[|N(0, sigma^2)| >= t] <= beta`` via the sub-Gaussian
    tail of Lemma 4: ``Pr[|Y| >= t] <= 2 exp(-t^2 / (2 sigma^2))``."""
    _check_beta(beta)
    if sigma == 0:
        return 0.0
    return sigma * math.sqrt(2.0 * math.log(2.0 / beta))


def laplace_sum_tail_bound(scale: float, count: int, beta: float) -> float:
    """High-probability bound on ``|Y_1 + ... + Y_count|`` for independent
    ``Lap(scale)`` variables (Lemma 12).

    ``Pr[|Y| > 2 * scale * sqrt(2 ln(2/beta)) * max(sqrt(count),
    sqrt(ln(2/beta)))] <= beta``.
    """
    _check_beta(beta)
    if scale == 0 or count == 0:
        return 0.0
    log_term = math.log(2.0 / beta)
    return 2.0 * scale * math.sqrt(2.0 * log_term) * max(
        math.sqrt(count), math.sqrt(log_term)
    )


def gaussian_sum_std(sigma: float, count: int) -> float:
    """Standard deviation of a sum of ``count`` independent ``N(0, sigma^2)``
    variables (Fact 1)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return sigma * math.sqrt(count)


def _check_beta(beta: float) -> None:
    if not 0 < beta < 1:
        raise ValueError("the failure probability beta must lie in (0, 1)")
