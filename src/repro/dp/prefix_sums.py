"""Differentially private prefix sums via the binary-tree mechanism.

This module implements the generalized binary-tree mechanism of Lemma 11
(pure DP) and Lemma 18 (approximate DP): given ``k`` sequences whose summed
L1 sensitivity is ``L`` (and, for the Gaussian variant, whose per-sequence
L1 sensitivity is at most ``Delta``), it releases *all prefix sums of all
sequences* with additive error

* ``O(epsilon^{-1} L log T log(Tk / beta))`` under pure DP, and
* ``O(epsilon^{-1} sqrt(L Delta) log T log(Tk / beta))`` under approximate DP,

where ``T`` is the maximum sequence length.  The paper applies it to the
difference sequences along the heavy paths of the candidate trie (Step 4 of
the construction and Corollaries 5/8) and to generic tree counting
(Theorems 8/9).

The mechanism decomposes ``[0, T)`` into dyadic intervals, releases one noisy
partial sum per interval per sequence, and reconstructs each prefix sum from
at most ``floor(log T) + 1`` noisy partial sums.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.dp.distributions import (
    gaussian_tail_bound,
    laplace_sum_tail_bound,
    sample_gaussian,
    sample_laplace,
)
from repro.dp.mechanisms import (
    CountingMechanism,
    GaussianMechanism,
    LaplaceMechanism,
    NoiselessMechanism,
)
from repro.exceptions import SensitivityError

__all__ = [
    "dyadic_intervals",
    "canonical_cover",
    "NoisyPrefixSums",
    "PrefixSumMechanism",
]


def dyadic_intervals(length: int) -> list[tuple[int, int]]:
    """All dyadic intervals of ``[0, length)``.

    Intervals are half-open ``[lo, hi)`` with ``hi - lo = 2^i`` for
    ``i = 0 .. floor(log2 length)``; the last interval of each level is
    clipped to ``length``.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    intervals: list[tuple[int, int]] = []
    if length == 0:
        return intervals
    max_level = int(math.floor(math.log2(length))) if length > 1 else 0
    for level in range(max_level + 1):
        width = 1 << level
        start = 0
        while start < length:
            intervals.append((start, min(start + width, length)))
            start += width
    return intervals


def canonical_cover(prefix_length: int, total_length: int) -> list[tuple[int, int]]:
    """Decompose ``[0, prefix_length)`` into at most ``floor(log2 T) + 1``
    disjoint dyadic intervals of ``[0, total_length)``.

    The greedy decomposition repeatedly takes the largest power-of-two block
    aligned at the current position that fits inside the remaining prefix.
    """
    if not 0 <= prefix_length <= total_length:
        raise ValueError("prefix_length must lie in [0, total_length]")
    cover: list[tuple[int, int]] = []
    position = 0
    remaining = prefix_length
    while remaining > 0:
        # Largest power of two that divides `position` (or everything when
        # position == 0) and does not exceed `remaining`.
        if position == 0:
            width = 1 << (remaining.bit_length() - 1)
        else:
            alignment = position & (-position)
            width = min(alignment, 1 << (remaining.bit_length() - 1))
        cover.append((position, position + width))
        position += width
        remaining -= width
    return cover


@dataclass
class NoisyPrefixSums:
    """Noisy prefix sums of one sequence.

    ``values[i]`` estimates ``a[0] + ... + a[i]`` (the ``(i+1)``-st prefix
    sum).  ``partial_sums`` maps each dyadic interval to its noisy partial
    sum, which callers may reuse (e.g. for suffix sums).
    """

    values: np.ndarray
    partial_sums: dict[tuple[int, int], float]

    def prefix(self, length: int) -> float:
        """Noisy estimate of the sum of the first ``length`` elements."""
        if length == 0:
            return 0.0
        return float(self.values[length - 1])


class PrefixSumMechanism:
    """Binary-tree mechanism for ``k`` sequences sharing one privacy budget.

    Parameters
    ----------
    mechanism:
        The noise mechanism carrying the ``(epsilon, delta)`` budget for the
        *whole* collection of prefix sums.  :class:`LaplaceMechanism` yields
        Lemma 11, :class:`GaussianMechanism` yields Lemma 18 and
        :class:`NoiselessMechanism` yields exact prefix sums (testing only).
    total_l1_sensitivity:
        ``L`` — bound on the summed L1 distance of all ``k`` sequences between
        neighboring databases.
    per_sequence_l1_sensitivity:
        ``Delta`` — bound on the L1 distance of any single sequence between
        neighboring databases.  Only used by the Gaussian variant (where it
        sharpens the L2 sensitivity via Hoelder / Lemma 14); defaults to
        ``L``.
    max_length:
        ``T`` — an upper bound on the length of every sequence.  The noise
        scale depends on ``floor(log2 T) + 1``, so the same bound must be
        used for privacy accounting and for error bounds.
    """

    def __init__(
        self,
        mechanism: CountingMechanism,
        *,
        total_l1_sensitivity: float,
        max_length: int,
        per_sequence_l1_sensitivity: float | None = None,
    ) -> None:
        if total_l1_sensitivity <= 0:
            raise SensitivityError("total_l1_sensitivity must be positive")
        if max_length < 1:
            raise ValueError("max_length must be at least 1")
        self.mechanism = mechanism
        self.total_l1_sensitivity = float(total_l1_sensitivity)
        self.per_sequence_l1_sensitivity = float(
            per_sequence_l1_sensitivity
            if per_sequence_l1_sensitivity is not None
            else total_l1_sensitivity
        )
        if self.per_sequence_l1_sensitivity > self.total_l1_sensitivity:
            self.per_sequence_l1_sensitivity = self.total_l1_sensitivity
        self.max_length = int(max_length)
        #: number of dyadic levels: floor(log2 T) + 1.
        self.levels = int(math.floor(math.log2(self.max_length))) + 1

    # ------------------------------------------------------------------
    # Noise calibration
    # ------------------------------------------------------------------
    def partial_sum_noise_scale(self) -> float:
        """Scale of the noise added to each individual partial sum.

        Any element contributes to at most ``levels`` partial sums, so the L1
        sensitivity of the full vector of partial sums is ``L * levels`` and
        its L2 sensitivity is ``sqrt(L * Delta * levels)`` (Lemma 14).
        """
        l1 = self.total_l1_sensitivity * self.levels
        l2 = math.sqrt(
            self.total_l1_sensitivity * self.per_sequence_l1_sensitivity * self.levels
        )
        return self.mechanism.noise_scale(l1, l2)

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------
    def release(
        self, sequence: Sequence[float] | np.ndarray, rng: np.random.Generator
    ) -> NoisyPrefixSums:
        """Release all prefix sums of one sequence.

        Call once per sequence; the noise scale already accounts for all
        ``k`` sequences through ``total_l1_sensitivity``.
        """
        array = np.asarray(sequence, dtype=np.float64)
        if len(array) > self.max_length:
            raise ValueError(
                f"sequence of length {len(array)} exceeds max_length={self.max_length}"
            )
        scale = self.partial_sum_noise_scale()
        intervals = dyadic_intervals(len(array))
        partial_sums: dict[tuple[int, int], float] = {}
        if intervals:
            exact = np.array([array[lo:hi].sum() for lo, hi in intervals])
            noise = self._sample(scale, len(intervals), rng)
            for (interval, value) in zip(intervals, exact + noise):
                partial_sums[interval] = float(value)
        prefix_values = np.zeros(len(array), dtype=np.float64)
        for m in range(1, len(array) + 1):
            cover = canonical_cover(m, max(len(array), 1))
            prefix_values[m - 1] = sum(partial_sums[interval] for interval in cover)
        return NoisyPrefixSums(values=prefix_values, partial_sums=partial_sums)

    def release_many(
        self, sequences: Sequence[Sequence[float]], rng: np.random.Generator
    ) -> list[NoisyPrefixSums]:
        """Release all prefix sums of all ``k`` sequences."""
        return [self.release(sequence, rng) for sequence in sequences]

    def _sample(
        self, scale: float, size: int, rng: np.random.Generator
    ) -> np.ndarray:
        if isinstance(self.mechanism, NoiselessMechanism) or scale == 0.0:
            return np.zeros(size)
        if isinstance(self.mechanism, LaplaceMechanism):
            return sample_laplace(scale, size, rng)
        if isinstance(self.mechanism, GaussianMechanism):
            return sample_gaussian(scale, size, rng)
        raise TypeError(f"unsupported mechanism type {type(self.mechanism)!r}")

    # ------------------------------------------------------------------
    # Error bounds
    # ------------------------------------------------------------------
    def sup_error_bound(self, num_sequences: int, beta: float) -> float:
        """High-probability bound on the error of *every* prefix sum of
        ``num_sequences`` sequences (Lemma 11 / Lemma 18 with the constants
        of this implementation)."""
        if not 0 < beta < 1:
            raise ValueError("beta must lie in (0, 1)")
        scale = self.partial_sum_noise_scale()
        if scale == 0.0:
            return 0.0
        total_prefixes = max(1, num_sequences * self.max_length)
        per_prefix_beta = beta / total_prefixes
        if isinstance(self.mechanism, LaplaceMechanism):
            # Each prefix sum adds at most `levels` independent Laplace
            # variables (Lemma 12).
            return laplace_sum_tail_bound(scale, self.levels, per_prefix_beta)
        if isinstance(self.mechanism, GaussianMechanism):
            # The sum of `levels` Gaussians is Gaussian with std
            # scale * sqrt(levels) (Fact 1).
            return gaussian_tail_bound(scale * math.sqrt(self.levels), per_prefix_beta)
        return 0.0
