"""Differentially private prefix sums via the binary-tree mechanism.

This module implements the generalized binary-tree mechanism of Lemma 11
(pure DP) and Lemma 18 (approximate DP): given ``k`` sequences whose summed
L1 sensitivity is ``L`` (and, for the Gaussian variant, whose per-sequence
L1 sensitivity is at most ``Delta``), it releases *all prefix sums of all
sequences* with additive error

* ``O(epsilon^{-1} L log T log(Tk / beta))`` under pure DP, and
* ``O(epsilon^{-1} sqrt(L Delta) log T log(Tk / beta))`` under approximate DP,

where ``T`` is the maximum sequence length.  The paper applies it to the
difference sequences along the heavy paths of the candidate trie (Step 4 of
the construction and Corollaries 5/8) and to generic tree counting
(Theorems 8/9).

The mechanism decomposes ``[0, T)`` into dyadic intervals, releases one noisy
partial sum per interval per sequence, and reconstructs each prefix sum from
at most ``floor(log T) + 1`` noisy partial sums.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.dp.distributions import (
    gaussian_tail_bound,
    laplace_sum_tail_bound,
    sample_gaussian,
    sample_laplace,
)
from repro.dp.mechanisms import (
    CountingMechanism,
    GaussianMechanism,
    LaplaceMechanism,
    NoiselessMechanism,
)
from repro.exceptions import SensitivityError

__all__ = [
    "dyadic_intervals",
    "canonical_cover",
    "NoisyPrefixSums",
    "PrefixSumMechanism",
]


def dyadic_intervals(length: int) -> list[tuple[int, int]]:
    """All dyadic intervals of ``[0, length)``.

    Intervals are half-open ``[lo, hi)`` with ``hi - lo = 2^i`` for
    ``i = 0 .. floor(log2 length)``; the last interval of each level is
    clipped to ``length``.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    intervals: list[tuple[int, int]] = []
    if length == 0:
        return intervals
    max_level = int(math.floor(math.log2(length))) if length > 1 else 0
    for level in range(max_level + 1):
        width = 1 << level
        start = 0
        while start < length:
            intervals.append((start, min(start + width, length)))
            start += width
    return intervals


def canonical_cover(prefix_length: int, total_length: int) -> list[tuple[int, int]]:
    """Decompose ``[0, prefix_length)`` into at most ``floor(log2 T) + 1``
    disjoint dyadic intervals of ``[0, total_length)``.

    The greedy decomposition repeatedly takes the largest power-of-two block
    aligned at the current position that fits inside the remaining prefix.
    """
    if not 0 <= prefix_length <= total_length:
        raise ValueError("prefix_length must lie in [0, total_length]")
    cover: list[tuple[int, int]] = []
    position = 0
    remaining = prefix_length
    while remaining > 0:
        # Largest power of two that divides `position` (or everything when
        # position == 0) and does not exceed `remaining`.
        if position == 0:
            width = 1 << (remaining.bit_length() - 1)
        else:
            alignment = position & (-position)
            width = min(alignment, 1 << (remaining.bit_length() - 1))
        cover.append((position, position + width))
        position += width
        remaining -= width
    return cover


@dataclass
class NoisyPrefixSums:
    """Noisy prefix sums of one sequence.

    ``values[i]`` estimates ``a[0] + ... + a[i]`` (the ``(i+1)``-st prefix
    sum).  ``partial_sums`` maps each dyadic interval to its noisy partial
    sum, which callers may reuse (e.g. for suffix sums).
    """

    values: np.ndarray
    partial_sums: dict[tuple[int, int], float]

    def prefix(self, length: int) -> float:
        """Noisy estimate of the sum of the first ``length`` elements."""
        if length == 0:
            return 0.0
        return float(self.values[length - 1])


class PrefixSumMechanism:
    """Binary-tree mechanism for ``k`` sequences sharing one privacy budget.

    Parameters
    ----------
    mechanism:
        The noise mechanism carrying the ``(epsilon, delta)`` budget for the
        *whole* collection of prefix sums.  :class:`LaplaceMechanism` yields
        Lemma 11, :class:`GaussianMechanism` yields Lemma 18 and
        :class:`NoiselessMechanism` yields exact prefix sums (testing only).
    total_l1_sensitivity:
        ``L`` — bound on the summed L1 distance of all ``k`` sequences between
        neighboring databases.
    per_sequence_l1_sensitivity:
        ``Delta`` — bound on the L1 distance of any single sequence between
        neighboring databases.  Only used by the Gaussian variant (where it
        sharpens the L2 sensitivity via Hoelder / Lemma 14); defaults to
        ``L``.
    max_length:
        ``T`` — an upper bound on the length of every sequence.  The noise
        scale depends on ``floor(log2 T) + 1``, so the same bound must be
        used for privacy accounting and for error bounds.
    """

    def __init__(
        self,
        mechanism: CountingMechanism,
        *,
        total_l1_sensitivity: float,
        max_length: int,
        per_sequence_l1_sensitivity: float | None = None,
    ) -> None:
        if total_l1_sensitivity <= 0:
            raise SensitivityError("total_l1_sensitivity must be positive")
        if max_length < 1:
            raise ValueError("max_length must be at least 1")
        self.mechanism = mechanism
        self.total_l1_sensitivity = float(total_l1_sensitivity)
        self.per_sequence_l1_sensitivity = float(
            per_sequence_l1_sensitivity
            if per_sequence_l1_sensitivity is not None
            else total_l1_sensitivity
        )
        if self.per_sequence_l1_sensitivity > self.total_l1_sensitivity:
            self.per_sequence_l1_sensitivity = self.total_l1_sensitivity
        self.max_length = int(max_length)
        #: number of dyadic levels: floor(log2 T) + 1.
        self.levels = int(math.floor(math.log2(self.max_length))) + 1

    # ------------------------------------------------------------------
    # Noise calibration
    # ------------------------------------------------------------------
    def partial_sum_noise_scale(self) -> float:
        """Scale of the noise added to each individual partial sum.

        Any element contributes to at most ``levels`` partial sums, so the L1
        sensitivity of the full vector of partial sums is ``L * levels`` and
        its L2 sensitivity is ``sqrt(L * Delta * levels)`` (Lemma 14).
        """
        l1 = self.total_l1_sensitivity * self.levels
        l2 = math.sqrt(
            self.total_l1_sensitivity * self.per_sequence_l1_sensitivity * self.levels
        )
        return self.mechanism.noise_scale(l1, l2)

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------
    def release(
        self, sequence: Sequence[float] | np.ndarray, rng: np.random.Generator
    ) -> NoisyPrefixSums:
        """Release all prefix sums of one sequence.

        Call once per sequence; the noise scale already accounts for all
        ``k`` sequences through ``total_l1_sensitivity``.
        """
        array = np.asarray(sequence, dtype=np.float64)
        if len(array) > self.max_length:
            raise ValueError(
                f"sequence of length {len(array)} exceeds max_length={self.max_length}"
            )
        scale = self.partial_sum_noise_scale()
        intervals = dyadic_intervals(len(array))
        partial_sums: dict[tuple[int, int], float] = {}
        if intervals:
            exact = np.array([array[lo:hi].sum() for lo, hi in intervals])
            noise = self._sample(scale, len(intervals), rng)
            for (interval, value) in zip(intervals, exact + noise):
                partial_sums[interval] = float(value)
        prefix_values = np.zeros(len(array), dtype=np.float64)
        for m in range(1, len(array) + 1):
            cover = canonical_cover(m, max(len(array), 1))
            prefix_values[m - 1] = sum(partial_sums[interval] for interval in cover)
        return NoisyPrefixSums(values=prefix_values, partial_sums=partial_sums)

    def release_many(
        self, sequences: Sequence[Sequence[float]], rng: np.random.Generator
    ) -> list[NoisyPrefixSums]:
        """Release all prefix sums of all ``k`` sequences."""
        return [self.release(sequence, rng) for sequence in sequences]

    def release_many_flat(
        self,
        flat: np.ndarray,
        offsets: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorized :meth:`release_many` over a flattened sequence batch.

        ``flat`` concatenates all ``k`` sequences; ``offsets`` (length
        ``k + 1``) marks their boundaries, so sequence ``p`` is
        ``flat[offsets[p]:offsets[p + 1]]``.  Returns the noisy prefix sums
        in the same flat layout: position ``offsets[p] + m - 1`` estimates
        the ``m``-th prefix sum of sequence ``p``.

        Bit-identical to :meth:`release_many` (``tests/dp`` asserts this):
        the noise for all sequences comes from one RNG call — numpy
        generators fill element by element, so the concatenated stream
        equals the per-sequence calls — the exact partial sums replicate
        ``array[lo:hi].sum()`` by grouping equal-width intervals into one
        row-wise ``np.sum`` (same pairwise reduction), and the canonical
        covers are accumulated left to right exactly like the per-interval
        Python sum.
        """
        flat = np.asarray(flat, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.int64)
        lengths = np.diff(offsets)
        if lengths.size and int(lengths.max()) > self.max_length:
            raise ValueError(
                f"sequence of length {int(lengths.max())} exceeds "
                f"max_length={self.max_length}"
            )
        values = np.zeros(flat.size, dtype=np.float64)
        if flat.size == 0:
            return values
        max_t = int(lengths.max())
        if max_t == 0:
            return values
        num_levels = int(math.floor(math.log2(max_t))) + 1

        # ------------------------------------------------------------------
        # Enumerate every dyadic interval of every sequence, in the exact
        # per-sequence order dyadic_intervals() produces (level-major,
        # ascending start) so the one-call noise vector lines up with the
        # per-sequence draws of release().
        # ------------------------------------------------------------------
        part_path: list[np.ndarray] = []
        part_level: list[np.ndarray] = []
        part_pos: list[np.ndarray] = []
        for level in range(num_levels):
            width = 1 << level
            # A sequence of length t has levels 0..floor(log2 t), i.e. the
            # level exists iff 2^level <= t, with ceil(t / width) intervals.
            counts = np.where(lengths >> level > 0, -(-lengths // width), 0)
            total = int(counts.sum())
            if total == 0:
                continue
            paths = np.repeat(np.arange(lengths.size), counts)
            starts_in_group = np.arange(total) - np.repeat(
                np.concatenate(([0], np.cumsum(counts)[:-1])), counts
            )
            part_path.append(paths)
            part_level.append(np.full(total, level, dtype=np.int64))
            part_pos.append(starts_in_group)
        interval_path = np.concatenate(part_path)
        interval_level = np.concatenate(part_level)
        interval_pos = np.concatenate(part_pos)
        # Reorder level-major-global -> path-major (level-major within path).
        order = np.lexsort((interval_pos, interval_level, interval_path))
        interval_path = interval_path[order]
        interval_level = interval_level[order]
        interval_pos = interval_pos[order]
        t_of_interval = lengths[interval_path]
        interval_lo = interval_pos << interval_level
        interval_len = np.minimum(
            interval_lo + (np.int64(1) << interval_level), t_of_interval
        ) - interval_lo
        flat_lo = offsets[interval_path] + interval_lo

        # Exact partial sums, grouped by interval width so each group is one
        # contiguous row-wise np.sum (bitwise equal to the per-slice sums).
        exact = np.empty(interval_path.size, dtype=np.float64)
        for width in np.unique(interval_len):
            group = np.flatnonzero(interval_len == width)
            rows = flat[flat_lo[group][:, None] + np.arange(int(width))[None, :]]
            exact[group] = np.sum(rows, axis=1)

        scale = self.partial_sum_noise_scale()
        noise = self._sample(scale, interval_path.size, rng)
        partials = exact + noise

        # ------------------------------------------------------------------
        # Reconstruct every prefix sum from its canonical cover, accumulating
        # cover blocks left to right (the same float-addition order as the
        # per-interval Python sum in release()).
        # ------------------------------------------------------------------
        # Index base of each sequence's interval block, and the per-(t,
        # level) offsets of the level-major interval layout.
        interval_counts = np.bincount(interval_path, minlength=lengths.size)
        interval_base = np.concatenate(([0], np.cumsum(interval_counts)[:-1]))
        level_offset = np.zeros((max_t + 1, num_levels + 1), dtype=np.int64)
        ts = np.arange(max_t + 1)
        for level in range(num_levels):
            per_level = np.where(ts >> level > 0, -(-ts // (1 << level)), 0)
            level_offset[:, level + 1] = level_offset[:, level] + per_level
        # Canonical covers by prefix length (independent of t).
        cover_lists = [canonical_cover(m, max_t) for m in range(max_t + 1)]
        max_cover = max(len(cover) for cover in cover_lists)
        cover_len = np.array([len(cover) for cover in cover_lists])
        cover_level = np.full((max_cover, max_t + 1), -1, dtype=np.int64)
        cover_pos = np.zeros((max_cover, max_t + 1), dtype=np.int64)
        for m, cover in enumerate(cover_lists):
            for slot, (lo, hi) in enumerate(cover):
                level = (hi - lo).bit_length() - 1
                cover_level[slot, m] = level
                cover_pos[slot, m] = lo >> level
        # release() keys partial sums by (lo, hi), so a clipped interval of a
        # higher level that also ends at t overwrites any lower-level
        # interval with the same bounds (e.g. t = 3: the clipped level-1
        # interval (2, 3) replaces the level-0 one).  Only the final cover
        # block of the full prefix m = t can hit such a collision; resolve
        # it to the highest colliding level, exactly like the dict does.
        final_level = np.zeros(max_t + 1, dtype=np.int64)
        final_pos = np.zeros(max_t + 1, dtype=np.int64)
        for t in range(1, max_t + 1):
            lo, hi = cover_lists[t][-1]
            level = (hi - lo).bit_length() - 1
            for candidate in range(t.bit_length() - 1, level - 1, -1):
                if ((t - 1) >> candidate) << candidate == lo:
                    level = candidate
                    break
            final_level[t] = level
            final_pos[t] = lo >> level
        element_path = np.repeat(np.arange(lengths.size), lengths)
        element_m = np.arange(flat.size) - offsets[element_path] + 1
        element_t = lengths[element_path]
        for slot in range(max_cover):
            active = cover_len[element_m] > slot
            if not active.any():
                break
            m_active = element_m[active]
            level = cover_level[slot, m_active]
            pos = cover_pos[slot, m_active]
            collides = (m_active == element_t[active]) & (
                cover_len[m_active] - 1 == slot
            )
            level = np.where(collides, final_level[m_active], level)
            pos = np.where(collides, final_pos[m_active], pos)
            idx = (
                interval_base[element_path[active]]
                + level_offset[element_t[active], level]
                + pos
            )
            values[active] += partials[idx]
        return values

    def _sample(
        self, scale: float, size: int, rng: np.random.Generator
    ) -> np.ndarray:
        if isinstance(self.mechanism, NoiselessMechanism) or scale == 0.0:
            return np.zeros(size)
        if isinstance(self.mechanism, LaplaceMechanism):
            return sample_laplace(scale, size, rng)
        if isinstance(self.mechanism, GaussianMechanism):
            return sample_gaussian(scale, size, rng)
        raise TypeError(f"unsupported mechanism type {type(self.mechanism)!r}")

    # ------------------------------------------------------------------
    # Error bounds
    # ------------------------------------------------------------------
    def sup_error_bound(self, num_sequences: int, beta: float) -> float:
        """High-probability bound on the error of *every* prefix sum of
        ``num_sequences`` sequences (Lemma 11 / Lemma 18 with the constants
        of this implementation)."""
        if not 0 < beta < 1:
            raise ValueError("beta must lie in (0, 1)")
        scale = self.partial_sum_noise_scale()
        if scale == 0.0:
            return 0.0
        total_prefixes = max(1, num_sequences * self.max_length)
        per_prefix_beta = beta / total_prefixes
        if isinstance(self.mechanism, LaplaceMechanism):
            # Each prefix sum adds at most `levels` independent Laplace
            # variables (Lemma 12).
            return laplace_sum_tail_bound(scale, self.levels, per_prefix_beta)
        if isinstance(self.mechanism, GaussianMechanism):
            # The sum of `levels` Gaussians is Gaussian with std
            # scale * sqrt(levels) (Fact 1).
            return gaussian_tail_bound(scale * math.sqrt(self.levels), per_prefix_beta)
        return 0.0
