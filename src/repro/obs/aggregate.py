"""Cross-process metrics aggregation for the sharded serving tier.

The cluster router exposes one ``/metrics`` for the whole tier: its own
registry plus every worker's, scraped as JSON snapshots
(:meth:`MetricsRegistry.snapshot`) and merged here.  The merge semantics
follow the Prometheus data model, metric kind by metric kind:

``counter``
    summed across sources per label set — request totals over the tier are
    the sum of the workers' totals.
``histogram``
    merged per label set when the bucket boundaries agree: cumulative
    bucket counts, ``count`` and ``sum`` all add, ``min``/``max`` combine,
    and percentiles are re-derived from the merged cumulative buckets (the
    same rank rule as :meth:`Histogram.percentile`).  Sources whose bucket
    boundaries disagree cannot be added meaningfully and fall back to
    per-source labelling.
``gauge``
    **never summed**.  A gauge is a point-in-time reading — summing
    ``dpsc_uptime_seconds`` or a cache-size gauge across workers produces a
    number that is wrong for every consumer — so every gauge series is
    reported per source, with the source name attached as an extra label
    (``dpsc_uptime_seconds{worker="w0"}``).

:func:`merge_snapshots` returns a snapshot-shaped dict (so ``/metrics?
format=json`` serves it directly) and :func:`render_snapshot` renders any
snapshot dict in text exposition format 0.0.4 — output that must pass
:func:`repro.obs.export.validate_exposition`, which the aggregation tests
assert.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.obs.export import _format_labels, _format_value

__all__ = ["merge_snapshots", "render_snapshot", "snapshot_percentile"]


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _bucket_signature(value: Mapping) -> tuple:
    """The histogram's finite bucket boundaries (merge compatibility key)."""
    return tuple(
        boundary for boundary, _ in value.get("buckets", ()) if boundary != "+Inf"
    )


def snapshot_percentile(buckets: Sequence[Sequence], count: int, q: float, maximum) -> float:
    """Rank-``q`` percentile from cumulative snapshot ``buckets``.

    The same rule as :meth:`Histogram.percentile`: the upper boundary of
    the bucket holding rank ``ceil(q/100 * count)``, the exact maximum for
    ranks landing in the ``+Inf`` overflow bucket, NaN when empty.
    """
    if count <= 0:
        return math.nan
    rank = max(1, math.ceil(q / 100.0 * count))
    for boundary, cumulative in buckets:
        if cumulative >= rank:
            if boundary == "+Inf":
                break
            return float(boundary)
    return float(maximum) if maximum is not None else math.nan


def _merge_histogram_values(values: Sequence[Mapping]) -> dict:
    """One histogram snapshot value from several with equal boundaries."""
    boundaries = _bucket_signature(values[0])
    cumulative = [0] * (len(boundaries) + 1)
    total = 0
    total_sum = 0.0
    minimum: float | None = None
    maximum: float | None = None
    for value in values:
        for index, (_, running) in enumerate(value.get("buckets", ())):
            cumulative[index] += int(running)
        total += int(value.get("count", 0))
        total_sum += float(value.get("sum", 0.0))
        for candidate in (value.get("min"),):
            if candidate is not None:
                minimum = candidate if minimum is None else min(minimum, candidate)
        for candidate in (value.get("max"),):
            if candidate is not None:
                maximum = candidate if maximum is None else max(maximum, candidate)
    buckets = [
        [boundary, running] for boundary, running in zip(boundaries, cumulative)
    ]
    buckets.append(["+Inf", cumulative[-1]])
    merged = {
        "count": total,
        "sum": total_sum,
        "min": minimum,
        "max": maximum,
        "buckets": buckets,
    }
    if total:
        merged.update(
            {
                f"p{q:g}": snapshot_percentile(buckets, total, q, maximum)
                for q in (50.0, 95.0, 99.0)
            }
        )
    return merged


def merge_snapshots(
    snapshots: Sequence[tuple[str, Mapping]], *, label: str = "worker"
) -> dict:
    """Merge ``(source_name, registry_snapshot)`` pairs into one snapshot.

    Counters sum per label set, histograms bucket-merge per label set (or
    fall back to per-source labelling on boundary mismatch), gauges are
    always per-source-labelled under ``label``.  A name registered with
    different kinds by different sources raises ``ValueError`` — one name,
    one meaning, same as within a single registry.
    """
    kinds: dict[str, str] = {}
    helps: dict[str, str] = {}
    # name -> label key -> accumulated series state
    counters: dict[str, dict[tuple, float]] = {}
    histograms: dict[str, dict[tuple, list[tuple[str, Mapping]]]] = {}
    labelled: dict[str, list[dict]] = {}
    for source, snapshot in snapshots:
        for name, family in snapshot.items():
            kind = family.get("kind", "gauge")
            if kinds.setdefault(name, kind) != kind:
                raise ValueError(
                    f"metric {name!r} is a {kinds[name]} in one source and a "
                    f"{kind} in another; refusing to merge"
                )
            if family.get("help") and not helps.get(name):
                helps[name] = family["help"]
            for series in family.get("series", ()):
                labels = dict(series.get("labels", {}))
                if kind == "counter":
                    slot = counters.setdefault(name, {})
                    key = _label_key(labels)
                    slot[key] = slot.get(key, 0.0) + float(series["value"])
                elif kind == "histogram":
                    histograms.setdefault(name, {}).setdefault(
                        _label_key(labels), []
                    ).append((source, series["value"]))
                else:
                    # Gauges (and any unknown kind) are point-in-time
                    # readings: per-source labels, no summation.
                    labelled.setdefault(name, []).append(
                        {"labels": {**labels, label: source}, "value": series["value"]}
                    )
    merged: dict[str, dict] = {}
    for name in sorted(kinds):
        kind = kinds[name]
        series: list[dict] = []
        if kind == "counter":
            for key, value in counters.get(name, {}).items():
                series.append({"labels": dict(key), "value": value})
        elif kind == "histogram":
            for key, sources in histograms.get(name, {}).items():
                signatures = {_bucket_signature(value) for _, value in sources}
                if len(signatures) == 1:
                    series.append(
                        {
                            "labels": dict(key),
                            "value": _merge_histogram_values(
                                [value for _, value in sources]
                            ),
                        }
                    )
                else:  # incompatible buckets: adding them would be a lie
                    for source, value in sources:
                        series.append(
                            {"labels": {**dict(key), label: source}, "value": value}
                        )
        else:
            series = labelled.get(name, [])
        merged[name] = {"kind": kind, "help": helps.get(name, ""), "series": series}
    return merged


def render_snapshot(snapshot: Mapping) -> str:
    """A snapshot dict in Prometheus text exposition format 0.0.4.

    The snapshot-shaped twin of :func:`repro.obs.export.render_prometheus`
    (which renders live registries); the router uses it to expose the
    merged tier snapshot.  Output validates under ``validate_exposition``.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family.get("kind", "gauge")
        if family.get("help"):
            escaped = family["help"].replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {name} {escaped}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family.get("series", ()):
            labels = dict(series.get("labels", {}))
            value = series["value"]
            if kind == "histogram":
                total = int(value.get("count", 0))
                for boundary, running in value.get("buckets", ()):
                    le = "+Inf" if boundary == "+Inf" else _format_value(float(boundary))
                    lines.append(
                        f"{name}_bucket{_format_labels(labels, (('le', le),))} "
                        f"{int(running)}"
                    )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(float(value.get('sum', 0.0)))}"
                )
                lines.append(f"{name}_count{_format_labels(labels)} {total}")
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} {_format_value(float(value))}"
                )
    return "\n".join(lines) + "\n"
