"""Prometheus text exposition rendering (and a validating parser).

:func:`render_prometheus` serializes a :class:`~repro.obs.MetricsRegistry`
into text exposition format 0.0.4 — the format a Prometheus server scrapes
from ``GET /metrics``.  Counters and gauges emit one sample per label set;
histograms expand into cumulative ``_bucket{le="..."}`` samples (always
ending in ``le="+Inf"``), ``_sum`` and ``_count``.

:func:`validate_exposition` is the matching strict parser.  It exists for
the CI smoke job: after a short load test we scrape ``/metrics`` and fail
the build if the output violates the grammar (unknown line shapes, samples
before their ``# TYPE``, non-cumulative buckets, ``+Inf`` bucket
disagreeing with ``_count``).  Keeping the validator next to the renderer
means a rendering bug can't slip through CI as "valid because we wrote it".
"""

from __future__ import annotations

import math
import re

from repro.obs.registry import Histogram, MetricsRegistry

__all__ = ["render_prometheus", "validate_exposition"]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _format_labels(labels: dict, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [(k, str(v)) for k, v in labels.items()] + list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return "{" + body + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for name, kind, help_text, children in registry.families():
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, metric in children:
            if kind == "histogram":
                assert isinstance(metric, Histogram)
                counts, total, total_sum, _, _ = metric._snapshot_locked()
                running = 0
                for boundary, bucket_count in zip(metric.boundaries, counts):
                    running += bucket_count
                    le = _format_value(boundary)
                    lines.append(
                        f"{name}_bucket{_format_labels(labels, (('le', le),))} {running}"
                    )
                lines.append(
                    f"{name}_bucket{_format_labels(labels, (('le', '+Inf'),))} {total}"
                )
                lines.append(f"{name}_sum{_format_labels(labels)} {_format_value(total_sum)}")
                lines.append(f"{name}_count{_format_labels(labels)} {total}")
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} {_format_value(metric.value)}"
                )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Validation (used by the CI observability smoke job)
# ----------------------------------------------------------------------

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?[0-9]+))?$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_sample_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    return float(raw)


def _base_name(sample_name: str, kind: str) -> str:
    if kind == "histogram":
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                return sample_name[: -len(suffix)]
    return sample_name


def validate_exposition(text: str) -> int:
    """Strictly check Prometheus text exposition; returns the sample count.

    Raises ``ValueError`` on the first violation: malformed lines, samples
    whose metric has no prior ``# TYPE``, histogram buckets that are not
    cumulative or missing ``le="+Inf"``, or an ``+Inf`` bucket that
    disagrees with the ``_count`` sample.
    """
    types: dict[str, str] = {}
    # (base name, labels-without-le) -> list of (le, cumulative count)
    buckets: dict[tuple[str, tuple], list[tuple[float, float]]] = {}
    counts: dict[tuple[str, tuple], float] = {}
    samples = 0

    for line_number, line in enumerate(text.split("\n"), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4 or not _METRIC_NAME_RE.match(parts[2]):
                raise ValueError(f"line {line_number}: malformed TYPE line: {line!r}")
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {line_number}: unknown metric type {kind!r}")
            if name in types:
                raise ValueError(f"line {line_number}: duplicate TYPE for {name!r}")
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _METRIC_NAME_RE.match(parts[2]):
                raise ValueError(f"line {line_number}: malformed HELP line: {line!r}")
            continue
        if line.startswith("#"):
            continue  # free-form comment

        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {line_number}: malformed sample line: {line!r}")
        sample_name = match.group("name")
        labels_raw = match.group("labels") or ""
        labels = dict(_LABEL_PAIR_RE.findall(labels_raw[1:-1])) if labels_raw else {}
        if labels_raw:
            # Re-render the matched pairs to catch junk between/around them.
            rebuilt = ",".join(f'{k}="{v}"' for k, v in _LABEL_PAIR_RE.findall(labels_raw[1:-1]))
            stripped = labels_raw[1:-1].rstrip(",")
            if rebuilt != stripped:
                raise ValueError(f"line {line_number}: malformed labels: {labels_raw!r}")
        try:
            value = _parse_sample_value(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {line_number}: malformed sample value: {line!r}"
            ) from None
        samples += 1

        # Resolve which declared family this sample belongs to.
        base = sample_name
        kind = types.get(sample_name)
        if kind is None:
            for candidate, candidate_kind in types.items():
                if candidate_kind == "histogram" and _base_name(
                    sample_name, "histogram"
                ) == candidate:
                    base, kind = candidate, candidate_kind
                    break
        if kind is None:
            raise ValueError(
                f"line {line_number}: sample {sample_name!r} has no preceding # TYPE"
            )

        if kind == "histogram":
            key_labels = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            if sample_name.endswith("_bucket"):
                if "le" not in labels:
                    raise ValueError(
                        f"line {line_number}: histogram bucket without le label"
                    )
                buckets.setdefault((base, key_labels), []).append(
                    (_parse_sample_value(labels["le"]), value)
                )
            elif sample_name.endswith("_count"):
                counts[(base, key_labels)] = value

    for (base, key_labels), series in buckets.items():
        les = [le for le, _ in series]
        if les != sorted(les):
            raise ValueError(f"{base}: bucket le values are not ascending")
        cumulative = [count for _, count in series]
        if any(b < a for a, b in zip(cumulative, cumulative[1:])):
            raise ValueError(f"{base}: bucket counts are not cumulative")
        if not les or not math.isinf(les[-1]):
            raise ValueError(f"{base}: histogram is missing the +Inf bucket")
        declared = counts.get((base, key_labels))
        if declared is not None and declared != cumulative[-1]:
            raise ValueError(
                f"{base}: +Inf bucket ({cumulative[-1]}) disagrees with _count ({declared})"
            )
    return samples
