"""Tracing spans: nested wall+CPU timings for the construction pipelines.

A *span* is one timed region with a name, free-form attributes and
children; a *trace* is a tree of spans.  The construction entry points open
a trace (``with obs.trace("construction", build_backend=...) as root``) and
every stage — candidates (per doubling level), counting, trie build, heavy
paths, noise, prune, materialize — opens a child ``span(...)``.  The tree
replaces the old flat ``stage_seconds`` dict: same totals, but nested, with
per-level detail, CPU time alongside wall time, and exportable to Chrome
trace-event JSON (``dpsc mine --trace-out trace.json``, loadable in
Perfetto or ``chrome://tracing``).

Nesting is implicit through a thread-local stack:

* :func:`trace` starts recording (a root span) — or, when a trace is
  already active on this thread, nests as an ordinary child span, so a
  structure built inside an instrumented caller attaches to the caller's
  tree instead of starting a second one.
* :func:`span` records **only while a trace is active**; otherwise it
  returns a shared no-op context whose entire cost is one thread-local
  attribute read.  Library code can therefore be instrumented
  unconditionally without taxing un-traced callers.
* Disabling telemetry (:func:`repro.obs.set_enabled`) stops :func:`trace`
  from recording at all.

Exceptions unwind cleanly: a span whose block raises is finalized with
``status="error"`` (and the exception type in its attributes), the stack is
restored, and the exception propagates.

:class:`BuildProfile` wraps a finished construction root span and derives
the legacy ``PrivateCountingTrie.timings`` dict (the deprecation shim), a
rendered text tree (``dpsc mine --profile``) and the Chrome trace export.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Iterator

from repro.obs.registry import enabled

__all__ = ["Span", "BuildProfile", "span", "trace", "current_span"]

_state = threading.local()


class Span:
    """One timed region: name, attributes, wall+CPU duration, children."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "status",
        "start_wall",
        "wall_seconds",
        "cpu_seconds",
        "_start_cpu",
    )

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.status = "ok"
        self.start_wall = 0.0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self._start_cpu = 0.0

    def find(self, name: str) -> "Iterator[Span]":
        """Every descendant span (pre-order) with the given name."""
        for child in self.children:
            if child.name == name:
                yield child
            yield from child.find(name)

    def to_dict(self) -> dict:
        """JSON-friendly recursive form (tests, snapshots)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "status": self.status,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "children": [child.to_dict() for child in self.children],
        }


class _NullSpan:
    """The not-recording fast path: a shared, stateless context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Pushes a recording span on enter, finalizes and attaches on exit."""

    __slots__ = ("_span", "_root")

    def __init__(self, name: str, attrs: dict, *, root: bool = False) -> None:
        self._span = Span(name, attrs)
        self._root = root

    def __enter__(self) -> Span:
        stack = _stack()
        recording = self._span
        recording.start_wall = time.perf_counter()
        recording._start_cpu = time.thread_time()
        stack.append(recording)
        return recording

    def __exit__(self, exc_type, exc_value, exc_tb) -> bool:
        recording = self._span
        recording.wall_seconds = time.perf_counter() - recording.start_wall
        recording.cpu_seconds = time.thread_time() - recording._start_cpu
        if exc_type is not None:
            recording.status = "error"
            recording.attrs.setdefault("error", exc_type.__name__)
        stack = _stack()
        # Unwind to this span even if an inner block leaked unbalanced
        # state (defensive: exceptions already pop inner spans first).
        while stack and stack[-1] is not recording:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(recording)
        return False


def _stack() -> list[Span]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = []
        _state.stack = stack
    return stack


def current_span() -> Span | None:
    """The innermost active span on this thread, or ``None``."""
    stack = getattr(_state, "stack", None)
    return stack[-1] if stack else None


def span(name: str, **attrs):
    """A child span — records only while a trace is active on this thread.

    Usage: ``with obs.span("noise", level=3): ...``.  The with-target is
    the live :class:`Span` (attach attributes via ``sp.attrs``) or ``None``
    on the no-op path.
    """
    if not getattr(_state, "stack", None):
        return _NULL_SPAN
    return _SpanContext(name, attrs)


def trace(name: str, **attrs):
    """Open a trace root (or nest, when a trace is already active).

    Yields the root :class:`Span`; after the block exits the span holds the
    finished tree.  When telemetry is disabled and no trace is active the
    block runs un-instrumented and the with-target is ``None``.
    """
    if not getattr(_state, "stack", None) and not enabled():
        return _NULL_SPAN
    return _SpanContext(name, attrs, root=True)


class BuildProfile:
    """A finished construction trace plus the derived legacy views."""

    def __init__(self, root: Span) -> None:
        self.root = root

    # ------------------------------------------------------------------
    # Legacy view (the PrivateCountingTrie.timings deprecation shim)
    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return self.root.wall_seconds

    @property
    def build_backend(self) -> str:
        return str(self.root.attrs.get("build_backend", ""))

    def stages(self) -> dict[str, float]:
        """Top-level stage durations, aggregated by name in first-seen
        order — the shape of the old ``timings["stages"]`` dict."""
        result: dict[str, float] = {}
        for child in self.root.children:
            result[child.name] = result.get(child.name, 0.0) + child.wall_seconds
        return result

    def legacy_timings(self) -> dict:
        """The exact dict ``PrivateCountingTrie.timings`` used to hold."""
        return {
            "build_backend": self.build_backend,
            "total_seconds": self.total_seconds,
            "stages": self.stages(),
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """An indented text tree (``dpsc mine --profile``)."""
        lines: list[str] = []
        total = self.total_seconds or 1.0

        def emit(node: Span, depth: int) -> None:
            label = node.name
            detail = " ".join(
                f"{key}={value}" for key, value in node.attrs.items() if key != "build_backend"
            )
            if detail:
                label = f"{label} [{detail}]"
            share = 100.0 * node.wall_seconds / total
            marker = "" if node.status == "ok" else "  !error"
            lines.append(
                f"{'  ' * depth}{label:<{max(2, 36 - 2 * depth)}s} "
                f"{node.wall_seconds:9.4f}s wall {node.cpu_seconds:9.4f}s cpu "
                f"{share:5.1f}%{marker}"
            )
            for child in node.children:
                emit(child, depth + 1)

        emit(self.root, 0)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Chrome trace-event export (Perfetto / chrome://tracing)
    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The span tree in Chrome trace-event JSON (complete ``"X"``
        events, microsecond timestamps relative to the root)."""
        events: list[dict] = []
        pid = os.getpid()
        origin = self.root.start_wall

        def emit(node: Span) -> None:
            args = {str(k): v for k, v in node.attrs.items()}
            args["cpu_seconds"] = node.cpu_seconds
            if node.status != "ok":
                args["status"] = node.status
            events.append(
                {
                    "name": node.name,
                    "cat": "construction",
                    "ph": "X",
                    "ts": (node.start_wall - origin) * 1e6,
                    "dur": node.wall_seconds * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "args": args,
                }
            )
            for child in node.children:
                emit(child)

        emit(self.root)
        return {"traceEvents": events, "displayTimeUnit": "ms"}
