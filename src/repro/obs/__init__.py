"""``repro.obs`` — dependency-free telemetry: metrics, spans, exporters.

The observability layer for the whole package.  It sits *below* every other
``repro`` module (it imports nothing from them) and provides:

* a thread-safe metrics registry (:class:`MetricsRegistry` of
  :class:`Counter` / :class:`Gauge` / :class:`Histogram`) with exact
  rank-based percentile extraction — see :mod:`repro.obs.registry`;
* tracing spans (:func:`trace` / :func:`span`) producing nested wall+CPU
  timing trees, wrapped by :class:`BuildProfile` for the construction
  pipelines — see :mod:`repro.obs.spans`;
* Prometheus text exposition rendering and validation
  (:func:`render_prometheus` / :func:`validate_exposition`) — see
  :mod:`repro.obs.export`;
* cross-process snapshot aggregation for the sharded serving tier
  (:func:`merge_snapshots` / :func:`render_snapshot`: counters sum,
  histograms bucket-merge, gauges stay per-worker) — see
  :mod:`repro.obs.aggregate`.

Telemetry is on by default; :func:`set_enabled` (False) reduces histogram
observations and span recording to single flag checks, which the
observability micro-benchmark asserts costs <5% on the serving hot path.
"""

from repro.obs.aggregate import merge_snapshots, render_snapshot, snapshot_percentile
from repro.obs.export import render_prometheus, validate_exposition
from repro.obs.registry import (
    DEFAULT_BUCKET_GROWTH,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enabled,
    log_buckets,
    set_enabled,
)
from repro.obs.spans import BuildProfile, Span, current_span, span, trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "DEFAULT_BUCKET_GROWTH",
    "DEFAULT_LATENCY_BUCKETS",
    "set_enabled",
    "enabled",
    "Span",
    "BuildProfile",
    "span",
    "trace",
    "current_span",
    "render_prometheus",
    "validate_exposition",
    "merge_snapshots",
    "render_snapshot",
    "snapshot_percentile",
]
