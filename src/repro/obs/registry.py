"""Thread-safe metrics: counters, gauges and log-bucketed histograms.

The registry is the single source of truth for every operational number the
system exposes — request counters, latency distributions, cache statistics —
replacing the ad-hoc per-object counters that used to live behind the query
server's stats lock.  Three metric kinds, mirroring the Prometheus data
model (the ``/metrics`` endpoint renders a registry in text exposition
format, see :mod:`repro.obs.export`):

:class:`Counter`
    A monotonically increasing float.  Increments are lock-protected, so
    eight threads hammering one counter lose no updates (the stress test in
    ``tests/obs/test_registry.py``).  Counters keep counting even when
    telemetry is disabled: they carry *semantic* state (``/healthz`` request
    accounting), not diagnostics.
:class:`Gauge`
    A value that goes up and down — either set explicitly or computed at
    read time from a callback (:meth:`Gauge.set_function`), which is how
    per-release cache hit/miss statistics are surfaced without double
    bookkeeping.
:class:`Histogram`
    A log-bucketed distribution with exact rank-based percentile
    extraction: :meth:`Histogram.percentile` returns the upper boundary of
    the bucket holding the requested rank, so the returned value ``r``
    brackets the true order statistic ``t`` as ``t <= r < t * growth``
    (``growth`` is the bucket ratio, 2**0.25 by default — under 19%
    relative resolution).  Observations are skipped entirely while
    telemetry is disabled (:func:`set_enabled`), keeping the serving hot
    path at a single flag check.

Everything is stdlib + the in-process lock discipline: one lock per metric
instance (updates never contend across metrics), one registry lock for
get-or-create.  ``repro.obs`` sits below every other layer and imports
nothing from the rest of the package.
"""

from __future__ import annotations

import math
import re
import threading
import time
from bisect import bisect_left
from typing import Callable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "DEFAULT_LATENCY_BUCKETS",
    "set_enabled",
    "enabled",
]

#: Process-wide telemetry switch.  Disabling turns histogram observations
#: and span recording into near-free no-ops; counters and gauges keep
#: working (they back ``/healthz``, which must stay correct either way).
_ENABLED = True
_ENABLED_LOCK = threading.Lock()


def set_enabled(flag: bool) -> bool:
    """Turn telemetry (histogram observations, tracing spans) on or off.

    Returns the previous value so callers can restore it.
    """
    global _ENABLED
    with _ENABLED_LOCK:
        previous = _ENABLED
        _ENABLED = bool(flag)
    return previous


def enabled() -> bool:
    """Whether telemetry is currently enabled (the default)."""
    return _ENABLED


def log_buckets(lower: float, upper: float, growth: float) -> tuple[float, ...]:
    """Geometric bucket boundaries ``lower * growth**i`` up to ``>= upper``.

    Every boundary is an exact float power product, so repeated calls with
    the same arguments produce identical boundaries (bucket identity is
    deterministic across runs).
    """
    if lower <= 0 or growth <= 1.0 or upper <= lower:
        raise ValueError("log_buckets needs 0 < lower < upper and growth > 1")
    count = int(math.ceil(math.log(upper / lower) / math.log(growth))) + 1
    return tuple(lower * growth**i for i in range(count))


#: Default latency boundaries: 1 microsecond to ~16 seconds at ratio
#: 2**0.25 (under 19% relative percentile resolution, 97 buckets).
DEFAULT_BUCKET_GROWTH = 2.0**0.25
DEFAULT_LATENCY_BUCKETS = log_buckets(1e-6, 16.0, DEFAULT_BUCKET_GROWTH)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """A monotonically increasing, lock-protected float counter."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) atomically."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A settable value, or a callback evaluated at read time."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._function: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._function = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def set_function(self, function: Callable[[], float]) -> None:
        """Read the gauge from ``function()`` at collection time (used for
        values that already have an exact owner, e.g. compiled-trie cache
        counters — a single source of truth instead of double bookkeeping)."""
        with self._lock:
            self._function = function

    @property
    def value(self) -> float:
        with self._lock:
            function = self._function
            if function is None:
                return self._value
        return float(function())


class _NullTimer:
    """The disabled-telemetry timer: two no-op calls, nothing else."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_TIMER = _NullTimer()


class _Timer:
    """Times a ``with`` block and observes the elapsed seconds."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._started, _force=True)


class Histogram:
    """A log-bucketed distribution with exact rank-based percentiles.

    ``boundaries`` are ascending upper bucket bounds (``le`` semantics, as
    in Prometheus: a value lands in the first bucket whose boundary is
    ``>= value``); values above the last boundary go to the implicit
    ``+Inf`` overflow bucket.  ``observe`` additionally tracks the exact
    sum, count, min and max.

    ``gated=True`` (the default) skips observations while telemetry is
    disabled; pass ``gated=False`` for histograms that *are* the
    measurement (the load-test harness), which must record regardless.
    """

    kind = "histogram"

    def __init__(
        self,
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        *,
        gated: bool = True,
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram boundaries must be non-empty and increasing")
        self.boundaries = bounds
        self.gated = gated
        self._lock = threading.Lock()
        # One slot per boundary plus the +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float, *, _force: bool = False) -> None:
        """Record one observation (skipped when gated and disabled)."""
        if self.gated and not _ENABLED and not _force:
            return
        value = float(value)
        index = bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def time(self):
        """Context manager observing the wall time of its block."""
        if self.gated and not _ENABLED:
            return _NULL_TIMER
        return _Timer(self)

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def _snapshot_locked(self) -> tuple[list[int], int, float, float, float]:
        with self._lock:
            return (list(self._counts), self._count, self._sum, self._min, self._max)

    def percentile(self, q: float) -> float:
        """The upper boundary of the bucket holding the rank-``q`` value.

        ``q`` is in percent (50, 95, 99).  The rank is ``ceil(q/100 * n)``
        (clamped to at least 1), the same order statistic
        ``sorted(values)[rank - 1]`` a rank-exact implementation would
        return; the result is that value's bucket upper bound, so it
        brackets the true order statistic within one bucket ratio.  Values
        in the overflow bucket report the exact observed maximum.  NaN when
        the histogram is empty.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        counts, total, _, _, maximum = self._snapshot_locked()
        if total == 0:
            return math.nan
        rank = max(1, math.ceil(q / 100.0 * total))
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index == len(self.boundaries):
                    return maximum
                return self.boundaries[index]
        return maximum  # pragma: no cover - cumulative always reaches total

    def percentiles(self, qs: Sequence[float] = (50.0, 95.0, 99.0)) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` in one pass."""
        return {f"p{q:g}": self.percentile(q) for q in qs}

    def snapshot(self) -> dict:
        """JSON-friendly state: count, sum, min/max, percentiles, buckets
        (cumulative, Prometheus-style ``le`` keys)."""
        counts, total, total_sum, minimum, maximum = self._snapshot_locked()
        cumulative: list[list] = []
        running = 0
        for boundary, bucket_count in zip(self.boundaries, counts):
            running += bucket_count
            cumulative.append([boundary, running])
        # "+Inf" as a string keeps the snapshot strict-JSON-parseable.
        cumulative.append(["+Inf", running + counts[-1]])
        return {
            "count": total,
            "sum": total_sum,
            "min": minimum if total else None,
            "max": maximum if total else None,
            **(self.percentiles() if total else {}),
            "buckets": cumulative,
        }


class _Family:
    """All children of one metric name (same kind/help, varying labels)."""

    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.children: dict[tuple[tuple[str, str], ...], object] = {}


def _label_key(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    for label in labels:
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid label name {label!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create registry of named, optionally labelled metrics.

    The same ``(name, labels)`` always returns the same metric object, so
    callers can either keep a reference (hot paths) or re-resolve by name
    (exporters, tests).  Asking for an existing name with a different
    metric kind raises — one name, one meaning.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # Get-or-create
    # ------------------------------------------------------------------
    def _metric(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Mapping[str, str] | None,
        factory: Callable[[], object],
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {family.kind}, "
                    f"cannot re-register as a {kind}"
                )
            if help_text and not family.help:
                family.help = help_text
            metric = family.children.get(key)
            if metric is None:
                metric = factory()
                family.children[key] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Counter:
        return self._metric(name, "counter", help, labels, Counter)

    def gauge(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Gauge:
        return self._metric(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        gated: bool = True,
    ) -> Histogram:
        return self._metric(
            name, "histogram", help, labels, lambda: Histogram(buckets, gated=gated)
        )

    def get(self, name: str, labels: Mapping[str, str] | None = None):
        """The existing metric, or ``None`` (never creates)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            return family.children.get(_label_key(labels))

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def families(self) -> list[tuple[str, str, str, list[tuple[dict, object]]]]:
        """``(name, kind, help, [(labels_dict, metric), ...])`` per family,
        names sorted, label sets in insertion order."""
        with self._lock:
            snapshot = [
                (
                    family.name,
                    family.kind,
                    family.help,
                    [(dict(key), metric) for key, metric in family.children.items()],
                )
                for family in self._families.values()
            ]
        snapshot.sort(key=lambda item: item[0])
        return snapshot

    def snapshot(self) -> dict:
        """One JSON-friendly dict of every metric's current state."""
        result: dict[str, dict] = {}
        for name, kind, help_text, children in self.families():
            entries = []
            for labels, metric in children:
                if kind == "histogram":
                    value = metric.snapshot()
                else:
                    value = metric.value
                entries.append({"labels": labels, "value": value})
            result[name] = {"kind": kind, "help": help_text, "series": entries}
        return result
