"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class.  Construction algorithms additionally use
:class:`ConstructionAborted` to signal the paper's explicit "fail" outcome
(when a noisy candidate set grows beyond ``n * ell``), which is part of the
algorithm's specification rather than a programming error.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidDocumentError(ReproError):
    """A document violates the data-universe contract (empty, too long,
    or containing characters outside the declared alphabet)."""


class InvalidPatternError(ReproError):
    """A query pattern is malformed (e.g. contains a sentinel character)."""


class PrivacyParameterError(ReproError):
    """Privacy parameters are out of range (``epsilon <= 0``,
    ``delta`` outside ``[0, 1)``, ``beta`` outside ``(0, 1)``, ...)."""


class SensitivityError(ReproError):
    """A mechanism was invoked with a non-positive or inconsistent
    sensitivity bound."""


class BudgetExceededError(ReproError):
    """A requested release would push the cumulative privacy expenditure on
    a database past the ledger's configured global ``(epsilon, delta)`` cap.

    Raised by :class:`repro.serving.BudgetLedger` *before* the construction
    runs, so a refused build touches the sensitive data zero times.
    """

    def __init__(
        self,
        message: str,
        *,
        requested: tuple[float, float] | None = None,
        spent: tuple[float, float] | None = None,
        cap: tuple[float, float] | None = None,
    ) -> None:
        super().__init__(message)
        self.requested = requested
        self.spent = spent
        self.cap = cap


class UnknownStructureKindError(ReproError):
    """A structure kind name is not registered in the
    :class:`repro.api.StructureRegistry` being consulted.

    The message lists the registered kinds; register new ones with
    :meth:`repro.api.StructureRegistry.register` (or the module-level
    :func:`repro.api.register_structure_kind`) before building them.
    """


class ReleaseNotFoundError(ReproError):
    """A release name (or a specific version of it) is absent from a
    :class:`repro.serving.ReleaseStore` or a running query server."""


class ReleaseFormatError(ReproError):
    """A binary release payload (``vNNNN.dpsb``) failed validation.

    Raised by :mod:`repro.serving.binfmt` when a blob is truncated, carries
    the wrong magic or an unsupported format version, or fails its buffer /
    trailer checksum (a bit flip after write).  The message names the file
    and the exact check that failed so a corrupted store is diagnosable
    from the error alone.
    """


class ConstructionAborted(ReproError):
    """The differentially private construction algorithm returned its
    explicit *fail* outcome.

    The paper's candidate-set construction (Lemma 6 / Lemma 15) aborts and
    returns a fail message whenever a noisy candidate set ``P_{2^k}`` exceeds
    ``n * ell`` elements.  Conditioned on the high-probability accuracy event
    this never happens; the exception carries the offending level so callers
    (and tests) can inspect it.
    """

    def __init__(self, message: str, level: int | None = None) -> None:
        super().__init__(message)
        self.level = level
