"""English-like text / protocol workload.

Next-word suggestion logs and text protocols are a motivating application in
the paper's introduction.  This generator produces short "messages" made of
words drawn from a small Zipf-distributed vocabulary (so common words and
word fragments become frequent substrings), over a lower-case alphabet plus a
space-like separator character.
"""

from __future__ import annotations

import numpy as np

from repro.core.database import StringDatabase
from repro.strings.alphabet import infer_alphabet

__all__ = ["DEFAULT_VOCABULARY", "text_messages"]

DEFAULT_VOCABULARY = (
    "the",
    "be",
    "to",
    "of",
    "and",
    "a",
    "in",
    "that",
    "have",
    "it",
    "for",
    "not",
    "on",
    "with",
    "he",
    "as",
    "you",
    "do",
    "at",
    "this",
)


def text_messages(
    n: int,
    max_length: int,
    rng: np.random.Generator,
    *,
    vocabulary: tuple[str, ...] = DEFAULT_VOCABULARY,
    separator: str = "_",
    zipf_exponent: float = 1.1,
) -> StringDatabase:
    """Generate ``n`` messages of length at most ``max_length``.

    Words are sampled with Zipfian frequencies and joined by ``separator``;
    the message is truncated to ``max_length`` characters (and never left
    empty).
    """
    if max_length < 1:
        raise ValueError("max_length must be at least 1")
    ranks = np.arange(1, len(vocabulary) + 1, dtype=np.float64)
    probabilities = ranks ** (-zipf_exponent)
    probabilities /= probabilities.sum()
    documents = []
    for _ in range(n):
        words = []
        while sum(len(w) for w in words) + len(words) < max_length:
            index = int(rng.choice(len(vocabulary), p=probabilities))
            words.append(vocabulary[index])
        message = separator.join(words)[:max_length]
        documents.append(message if message else vocabulary[0][:max_length])
    alphabet = infer_alphabet(
        documents, extra=set("".join(vocabulary)) | {separator}
    )
    return StringDatabase(documents, alphabet, max_length=max_length)
