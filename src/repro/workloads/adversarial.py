"""Adversarial workloads: the hard instances from the lower-bound proofs.

These thin wrappers re-export the lower-bound constructions of
:mod:`repro.core.lower_bounds` in workload form so that benchmarks and
examples can mix them with the synthetic workloads uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.core.database import StringDatabase
from repro.core.lower_bounds import (
    MarginalsReduction,
    PackingInstance,
    marginals_reduction,
    packing_database,
    packing_patterns,
    substring_lower_bound_pair,
)
from repro.strings.alphabet import Alphabet

__all__ = [
    "worst_case_substring_pair",
    "worst_case_packing",
    "random_marginals_instance",
]


def worst_case_substring_pair(
    ell: int, n: int
) -> tuple[StringDatabase, StringDatabase, str]:
    """The Theorem 6 neighboring pair (``a^ell`` replaced by ``b^ell``)."""
    return substring_lower_bound_pair(ell, n)


def worst_case_packing(
    ell: int,
    n: int,
    copies: int,
    rng: np.random.Generator,
    *,
    num_patterns: int = 2,
    pattern_length: int = 4,
    extra_symbols: tuple[str, ...] = ("c", "d", "e", "f"),
) -> PackingInstance:
    """A Theorem 5 packing instance with random secret patterns.

    The alphabet is ``{0, 1} ∪ extra_symbols`` (so ``|Sigma| >= 4`` as the
    theorem requires); the secret patterns use only the extra symbols.
    """
    secrets = packing_patterns(num_patterns, pattern_length, extra_symbols, rng)
    alphabet = Alphabet(tuple(sorted({"0", "1", *extra_symbols})))
    return packing_database(secrets, ell, n, copies, alphabet)


def random_marginals_instance(
    n: int, d: int, rng: np.random.Generator, *, density: float = 0.5
) -> tuple[np.ndarray, MarginalsReduction]:
    """A random Marginals(n, d) instance together with its Document Count
    encoding (Theorem 7's reduction)."""
    matrix = (rng.random((n, d)) < density).astype(np.int64)
    return matrix, marginals_reduction(matrix)
