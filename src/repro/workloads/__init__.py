"""Workload generators used by examples, tests and the benchmark harness."""

from repro.workloads.adversarial import (
    random_marginals_instance,
    worst_case_packing,
    worst_case_substring_pair,
)
from repro.workloads.genome import DNA_SYMBOLS, genome_reads, genome_with_motifs
from repro.workloads.synthetic import (
    markov_documents,
    periodic_documents,
    planted_motif_documents,
    uniform_documents,
    zipfian_documents,
)
from repro.workloads.text import DEFAULT_VOCABULARY, text_messages
from repro.workloads.transit import TransitNetwork, transit_trajectories

__all__ = [
    "random_marginals_instance",
    "worst_case_packing",
    "worst_case_substring_pair",
    "DNA_SYMBOLS",
    "genome_reads",
    "genome_with_motifs",
    "markov_documents",
    "periodic_documents",
    "planted_motif_documents",
    "uniform_documents",
    "zipfian_documents",
    "DEFAULT_VOCABULARY",
    "text_messages",
    "TransitNetwork",
    "transit_trajectories",
]
