"""Transit-trajectory workload.

Chen et al. [19] published differentially private sequential patterns mined
from the Montreal transit system.  That data set is not available offline, so
this module synthesizes trajectories over a station alphabet using a
small line-based transit network: each traveller follows a line for a few
stops, occasionally transfers, and popular line segments therefore become
frequent substrings across travellers — exactly the structure the mining
experiments need.
"""

from __future__ import annotations

import numpy as np

from repro.core.database import StringDatabase
from repro.strings.alphabet import Alphabet

__all__ = ["TransitNetwork", "transit_trajectories"]


class TransitNetwork:
    """A toy transit network of ``num_lines`` lines with ``stations_per_line``
    stations each.

    Stations are single characters (letters), assigned line by line; adjacent
    stations on a line are connected, and the first station of every line is
    a shared transfer hub.
    """

    def __init__(self, num_lines: int = 3, stations_per_line: int = 6) -> None:
        if num_lines < 1 or stations_per_line < 2:
            raise ValueError("need at least one line with two stations")
        total = num_lines * stations_per_line
        if total > 52:
            raise ValueError("at most 52 stations are supported (single letters)")
        letters = [chr(ord("a") + i) for i in range(26)] + [
            chr(ord("A") + i) for i in range(26)
        ]
        self.stations = letters[:total]
        self.lines = [
            self.stations[i * stations_per_line : (i + 1) * stations_per_line]
            for i in range(num_lines)
        ]
        self.hub = self.lines[0][0]

    @property
    def alphabet(self) -> Alphabet:
        return Alphabet(tuple(sorted(self.stations)))


def transit_trajectories(
    n: int,
    max_trip_length: int,
    rng: np.random.Generator,
    *,
    network: TransitNetwork | None = None,
    transfer_probability: float = 0.15,
) -> StringDatabase:
    """Generate ``n`` traveller trajectories of length at most
    ``max_trip_length``.

    A trajectory starts at a random station of a random line, rides the line
    in one direction, and occasionally transfers to another line (restarting
    from that line's first station), mimicking trips through a hub.
    """
    if network is None:
        network = TransitNetwork()
    documents = []
    for _ in range(n):
        line_index = int(rng.integers(0, len(network.lines)))
        line = network.lines[line_index]
        position = int(rng.integers(0, len(line) - 1))
        direction = 1 if rng.random() < 0.5 else -1
        length = int(rng.integers(2, max_trip_length + 1))
        stops = [line[position]]
        while len(stops) < length:
            if rng.random() < transfer_probability:
                line_index = int(rng.integers(0, len(network.lines)))
                line = network.lines[line_index]
                position = 0
                direction = 1
                stops.append(line[position])
                continue
            next_position = position + direction
            if not 0 <= next_position < len(line):
                direction = -direction
                next_position = position + direction
            position = next_position
            stops.append(line[position])
        documents.append("".join(stops))
    return StringDatabase(documents, network.alphabet, max_length=max_trip_length)
