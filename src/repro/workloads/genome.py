"""Genome-like workload.

Khatri et al. [50] applied differentially private suffix-tree counting to
genome data publishing.  Real genome panels are not shipped with this
repository (see DESIGN.md, "Substitutions"), so this module generates
DNA-like reads over the alphabet ``{A, C, G, T}`` with planted high-frequency
motifs, which exercises the same code paths: a small alphabet, documents of
uniform length, and a handful of patterns whose counts dominate.
"""

from __future__ import annotations

import numpy as np

from repro.core.database import StringDatabase
from repro.strings.alphabet import Alphabet

__all__ = ["DNA_SYMBOLS", "genome_reads", "genome_with_motifs"]

DNA_SYMBOLS = ("A", "C", "G", "T")


def genome_reads(
    n: int,
    read_length: int,
    rng: np.random.Generator,
    *,
    gc_content: float = 0.42,
) -> StringDatabase:
    """``n`` i.i.d. reads with the given GC content (fraction of G/C bases,
    which is ~0.42 for the human genome)."""
    if not 0 < gc_content < 1:
        raise ValueError("gc_content must lie in (0, 1)")
    probabilities = np.array(
        [
            (1 - gc_content) / 2,  # A
            gc_content / 2,  # C
            gc_content / 2,  # G
            (1 - gc_content) / 2,  # T
        ]
    )
    alphabet = Alphabet(DNA_SYMBOLS)
    documents = []
    for _ in range(n):
        codes = rng.choice(4, size=read_length, p=probabilities)
        documents.append("".join(DNA_SYMBOLS[int(c)] for c in codes))
    return StringDatabase(documents, alphabet, max_length=read_length)


def genome_with_motifs(
    n: int,
    read_length: int,
    rng: np.random.Generator,
    *,
    motifs: tuple[str, ...] = ("ACGTAC", "GGCC"),
    planting_probability: float = 0.6,
) -> StringDatabase:
    """Reads with known motifs planted in a fraction of them — the target of
    the q-gram extraction / frequent substring mining experiments."""
    base = genome_reads(n, read_length, rng)
    documents = []
    for document in base.documents:
        chars = list(document)
        if rng.random() < planting_probability:
            motif = motifs[int(rng.integers(0, len(motifs)))]
            if len(motif) <= read_length:
                start = int(rng.integers(0, read_length - len(motif) + 1))
                chars[start : start + len(motif)] = list(motif)
        documents.append("".join(chars))
    return StringDatabase(documents, Alphabet(DNA_SYMBOLS), max_length=read_length)
