"""Unified batched exact-counting layer (strings → counting → core).

One protocol, three interchangeable backends and an ``auto`` selector; see
:mod:`repro.counting.engines` and docs/ARCHITECTURE.md.
"""

from repro.counting.engines import (
    AUTO_BACKEND,
    BACKENDS,
    AhoCorasickEngine,
    CountingEngine,
    NaiveEngine,
    SuffixArrayEngine,
    auto_backend,
    make_engine,
    resolve_backend,
)

__all__ = [
    "AUTO_BACKEND",
    "BACKENDS",
    "AhoCorasickEngine",
    "CountingEngine",
    "NaiveEngine",
    "SuffixArrayEngine",
    "auto_backend",
    "make_engine",
    "resolve_backend",
]
