"""Batched exact counting engines.

Every stage of the private construction — candidate doubling (Lemmas 6/15),
the one-letter-extension ablation, the q-gram structures, and the error
metrics — needs the exact capped counts ``count_delta(P, D)`` of a *batch*
of patterns.  This module gives all of them one interface,
:class:`CountingEngine`, with three interchangeable backends:

* :class:`NaiveEngine` — the quadratic reference (wraps
  :mod:`repro.strings.naive`); ground truth for tests, never auto-selected.
* :class:`SuffixArrayEngine` — per-pattern ``O(|P| log N)`` queries against
  a :class:`~repro.strings.generalized_index.GeneralizedSuffixIndex`; best
  for small batches once the index is built.
* :class:`AhoCorasickEngine` — builds one Aho-Corasick automaton per batch
  (one per candidate level) and counts *all* patterns in a single pass over
  all documents, with the per-document capping done in vectorized numpy;
  best for the large concatenation batches of the doubling levels.

All three return bitwise-identical results; the property tests in
``tests/counting`` enforce the equivalence.  :func:`resolve_backend`
implements the ``auto`` policy that picks a backend from the batch size and
the corpus size (see docs/ARCHITECTURE.md for the heuristic).

This layer sits between :mod:`repro.strings` and :mod:`repro.core`
(strings → counting → core → analysis/serving) and depends only on the
string substrate, so both the construction algorithms and the serving build
path can share it without import cycles.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro import obs
from repro.strings import naive
from repro.strings.aho_corasick import AhoCorasick
from repro.strings.alphabet import Alphabet
from repro.strings.generalized_index import GeneralizedSuffixIndex

__all__ = [
    "AUTO_BACKEND",
    "BACKENDS",
    "AhoCorasickEngine",
    "CountingEngine",
    "NaiveEngine",
    "SuffixArrayEngine",
    "auto_backend",
    "make_engine",
    "resolve_backend",
]

#: Concrete backend names, in reference-first order.
BACKENDS = ("naive", "suffix-array", "aho-corasick")

#: The data-dependent selector (not itself a backend).
AUTO_BACKEND = "auto"

#: ``auto`` never builds an automaton for batches smaller than this: the
#: per-batch automaton construction cannot amortize.
AUTO_MIN_BATCH = 32


@runtime_checkable
class CountingEngine(Protocol):
    """Anything that answers batched exact capped counts.

    ``count_many(patterns, delta_cap)`` returns an int64 vector with
    ``count_delta(patterns[i], D)`` at position ``i``.  Duplicate patterns
    are allowed and each position is answered independently; the empty
    pattern counts every position of every document (capped per document),
    matching :meth:`GeneralizedSuffixIndex.count`.
    """

    #: backend name recorded in structure metadata (e.g. ``"suffix-array"``).
    name: str

    def count_many(
        self, patterns: Sequence[str], delta_cap: int
    ) -> np.ndarray:  # pragma: no cover - protocol
        ...


def _check_delta(delta_cap: int) -> None:
    if delta_cap < 1:
        raise ValueError("delta_cap must be at least 1")


class NaiveEngine:
    """Reference backend: quadratic scans via :mod:`repro.strings.naive`."""

    name = "naive"

    def __init__(self, documents: Sequence[str]) -> None:
        self.documents = list(documents)

    def count_many(self, patterns: Sequence[str], delta_cap: int) -> np.ndarray:
        _check_delta(delta_cap)
        with obs.span("count_many", backend=self.name, patterns=len(patterns)):
            return np.fromiter(
                (
                    naive.count_delta(pattern, self.documents, delta_cap)
                    for pattern in patterns
                ),
                dtype=np.int64,
                count=len(patterns),
            )


class SuffixArrayEngine:
    """Per-pattern backend over the generalized suffix index."""

    name = "suffix-array"

    def __init__(
        self,
        documents: Sequence[str],
        alphabet: Alphabet | None = None,
        *,
        index: GeneralizedSuffixIndex | None = None,
    ) -> None:
        self.index = (
            index
            if index is not None
            else GeneralizedSuffixIndex(list(documents), alphabet)
        )

    def count_many(self, patterns: Sequence[str], delta_cap: int) -> np.ndarray:
        _check_delta(delta_cap)
        with obs.span("count_many", backend=self.name, patterns=len(patterns)):
            return np.asarray(
                self.index.counts(patterns, delta_cap), dtype=np.int64
            )


class AhoCorasickEngine:
    """Single-pass backend: one automaton per batch, one corpus scan.

    The automaton is rebuilt for every ``count_many`` call — a candidate
    level counts a fresh batch of concatenations, so there is nothing to
    reuse — while the scan cost is shared by the whole batch.  Per-document
    capping is a vectorized numpy reduction over the emitted matches (see
    :meth:`AhoCorasick.capped_counts_over_documents`).
    """

    name = "aho-corasick"

    def __init__(self, documents: Sequence[str]) -> None:
        self.documents = list(documents)

    def count_many(self, patterns: Sequence[str], delta_cap: int) -> np.ndarray:
        _check_delta(delta_cap)
        patterns = list(patterns)
        if not patterns:
            return np.zeros(0, dtype=np.int64)
        with obs.span("count_many", backend=self.name, patterns=len(patterns)):
            automaton = AhoCorasick()
            # slots[i] is the automaton index answering patterns[i]; -1 marks
            # the empty pattern, which the automaton cannot hold.
            slots = np.empty(len(patterns), dtype=np.int64)
            for i, pattern in enumerate(patterns):
                slots[i] = automaton.add_pattern(pattern) if pattern else -1
            totals = automaton.capped_counts_over_documents(
                self.documents, delta_cap
            )
            result = np.empty(len(patterns), dtype=np.int64)
            occupied = slots >= 0
            result[occupied] = totals[slots[occupied]] if len(totals) else 0
            if not occupied.all():
                empty_total = sum(
                    min(len(document), delta_cap) for document in self.documents
                )
                result[~occupied] = empty_total
            return result


def auto_backend(num_patterns: int, corpus_length: int) -> str:
    """Pick a concrete backend from batch size × corpus size.

    Cost model (Python-level operations): a suffix-array query costs about
    ``log2(N)`` probes per pattern, each probe a small-array comparison, so a
    batch costs ``~ num_patterns * log2(N)`` probes; the automaton costs one
    scan of the corpus (``~ N`` dictionary steps) plus the per-batch build.
    The automaton therefore wins once the batch is large and the corpus scan
    amortizes over it; tiny batches against huge corpora stay on the index.
    """
    if num_patterns < AUTO_MIN_BATCH:
        return "suffix-array"
    probes = num_patterns * (math.log2(corpus_length + 2.0) + 1.0)
    if probes < corpus_length / 16.0:
        return "suffix-array"
    return "aho-corasick"


def resolve_backend(
    backend: str, num_patterns: int | None = None, corpus_length: int | None = None
) -> str:
    """Validate ``backend`` and resolve ``"auto"`` to a concrete name.

    Resolving ``"auto"`` requires the batch and corpus sizes; passing
    ``None`` for either resolves to ``"suffix-array"`` (the safe default for
    unknown batch shapes).
    """
    if backend == AUTO_BACKEND:
        if num_patterns is None or corpus_length is None:
            return "suffix-array"
        return auto_backend(num_patterns, corpus_length)
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown counting backend {backend!r}; "
            f"expected one of {(AUTO_BACKEND,) + BACKENDS}"
        )
    return backend


def make_engine(
    backend: str,
    documents: Sequence[str],
    *,
    alphabet: Alphabet | None = None,
    index: GeneralizedSuffixIndex | None = None,
) -> CountingEngine:
    """Instantiate a concrete backend by name.

    ``backend`` must be concrete (resolve ``"auto"`` first with
    :func:`resolve_backend`).  ``index`` lets callers that already own a
    :class:`GeneralizedSuffixIndex` (e.g. ``StringDatabase``) share it with
    the suffix-array engine instead of rebuilding it.
    """
    if backend == "naive":
        return NaiveEngine(documents)
    if backend == "suffix-array":
        return SuffixArrayEngine(documents, alphabet, index=index)
    if backend == "aho-corasick":
        return AhoCorasickEngine(documents)
    raise ValueError(
        f"unknown counting backend {backend!r}; expected one of {BACKENDS}"
    )
