"""Seeded, deterministic failpoints for chaos drills.

A *failpoint* is a named injection site registered at module level::

    from repro import faults

    _FP_WRITE = faults.failpoint("fsio.write", "Entry of every atomic write.")

    def atomic_write_text(path, text):
        _FP_WRITE.hit()          # no-op unless armed
        ...

Disabled cost is one module-flag check (the same discipline as
:func:`repro.obs.set_enabled`): production code keeps its failpoints
compiled in, and the chaos harness proves the disarmed overhead is ≤1% of
batch throughput (E29).

Armed behaviour is a **pure function of the seed**.  Every site keeps a
per-process hit counter; whether hit ``index`` fires is
``random.Random(f"{seed}|{scope}|{site}|{index}")`` (string seeding, so the
decision stream is independent of ``PYTHONHASHSEED`` and identical across
processes), optionally gated by ``after`` / ``every`` / ``times``.  Each
fire appends ``{"scope", "pid", "site", "index", "action"}`` to the
in-process injection log and, when a sink path is armed, to a shared JSONL
file (``O_APPEND`` single-write lines, multi-process safe).  Because the
decision stream is pure, :func:`verify_log` can *replay* any log — from any
process, in any interleaving — bit-identically from the seed alone; that
replay check is part of the E29 chaos-drill gate.

Actions (see :class:`FaultSpec`):

``raise``
    raise an exception at the site — ``exc`` picks :class:`FaultInjected`
    (surfaces as a JSON 500 from a worker), ``OSError`` (a failed disk or
    socket) or ``ConnectionResetError`` (a peer vanishing mid-request).
``delay``
    sleep ``delay_ms`` milliseconds — a slow disk or a GC-paused worker.
``drop``
    raise :class:`FaultDropConnection`, which HTTP handlers translate into
    closing the socket without a response.
``corrupt``
    deterministically flip one byte of the payload passed through
    :meth:`Failpoint.corrupt` (only sites that move bytes support it —
    ``binfmt.read`` feeds the flipped bytes to its checksum checks).

Worker processes are spawn-started, so they arm from inherited environment
variables (:func:`arm_from_env`; see :func:`env_for`).  This module is
stdlib-only and sits below every other layer, like ``repro.obs``.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

__all__ = [
    "FaultInjected",
    "FaultDropConnection",
    "FaultSpec",
    "Failpoint",
    "failpoint",
    "list_failpoints",
    "arm",
    "arm_from_env",
    "armed",
    "active",
    "disarm_all",
    "env_for",
    "injection_log",
    "clear_log",
    "read_log",
    "replay_decisions",
    "verify_log",
    "ENV_SPECS",
    "ENV_SEED",
    "ENV_SCOPE",
    "ENV_LOG",
]

ENV_SPECS = "DPSC_FAULTS"
ENV_SEED = "DPSC_FAULTS_SEED"
ENV_SCOPE = "DPSC_FAULTS_SCOPE"
ENV_LOG = "DPSC_FAULTS_LOG"

_ACTIONS = ("raise", "delay", "drop", "corrupt")
_EXC_KINDS = ("fault", "os", "connection")


class FaultInjected(Exception):
    """An injected application-level fault (HTTP handlers answer 500)."""


class FaultDropConnection(Exception):
    """An injected connection drop (HTTP handlers close without responding)."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed site's behaviour; everything needed to replay it.

    ``probability`` draws per hit from the seeded stream; ``every`` replaces
    the draw with a deterministic cycle (fire every Nth eligible hit);
    ``after`` skips the first N hits; ``times`` caps total fires.
    """

    site: str
    action: str
    probability: float = 1.0
    times: int | None = None
    after: int = 0
    every: int | None = None
    delay_ms: float = 10.0
    exc: str = "fault"

    def __post_init__(self) -> None:
        if not self.site or not isinstance(self.site, str):
            raise ValueError("a fault spec needs a non-empty 'site'")
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown action {self.action!r} (one of {_ACTIONS})"
            )
        if not 0.0 <= float(self.probability) <= 1.0:
            raise ValueError("'probability' must be within [0, 1]")
        if self.times is not None and int(self.times) < 0:
            raise ValueError("'times' must be >= 0")
        if int(self.after) < 0:
            raise ValueError("'after' must be >= 0")
        if self.every is not None and int(self.every) < 1:
            raise ValueError("'every' must be >= 1")
        if float(self.delay_ms) < 0:
            raise ValueError("'delay_ms' must be >= 0")
        if self.exc not in _EXC_KINDS:
            raise ValueError(f"unknown exc kind {self.exc!r} (one of {_EXC_KINDS})")

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultSpec":
        if not isinstance(payload, Mapping):
            raise ValueError(f"a fault spec must be a JSON object, got {payload!r}")
        known = {
            "site", "action", "probability", "times", "after", "every",
            "delay_ms", "exc",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown fault-spec field(s) {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        if "site" not in payload or "action" not in payload:
            raise ValueError("a fault spec needs 'site' and 'action'")
        return cls(**dict(payload))

    def to_dict(self) -> dict:
        payload: dict = {"site": self.site, "action": self.action}
        if self.probability != 1.0:
            payload["probability"] = self.probability
        if self.times is not None:
            payload["times"] = self.times
        if self.after:
            payload["after"] = self.after
        if self.every is not None:
            payload["every"] = self.every
        if self.action == "delay":
            payload["delay_ms"] = self.delay_ms
        if self.action == "raise" and self.exc != "fault":
            payload["exc"] = self.exc
        return payload


def _eligible(spec: FaultSpec, seed: object, scope: str, index: int) -> bool:
    """Whether hit ``index`` fires, ignoring the ``times`` cap — pure."""
    if index < spec.after:
        return False
    if spec.every is not None:
        return (index - spec.after) % spec.every == 0
    if spec.probability >= 1.0:
        return True
    draw = random.Random(f"{seed}|{scope}|{spec.site}|{index}").random()
    return draw < spec.probability


def _corrupt_offset(spec: FaultSpec, seed: object, scope: str, index: int, size: int) -> int:
    return random.Random(
        f"{seed}|{scope}|{spec.site}|{index}|offset"
    ).randrange(size)


def replay_decisions(
    spec: FaultSpec, *, seed: object, scope: str, count: int
) -> list[int]:
    """The hit indices that fire over ``count`` hits — pure recomputation.

    This is exactly the decision stream an armed site walks at runtime
    (same seeding, same ``times`` accounting), so comparing it against an
    observed injection log proves the log replays from the seed alone.
    """
    fired: list[int] = []
    for index in range(count):
        if spec.times is not None and len(fired) >= spec.times:
            break
        if _eligible(spec, seed, scope, index):
            fired.append(index)
    return fired


class _ArmedSite:
    """Runtime state of one armed failpoint (hit/fire counters + lock)."""

    __slots__ = ("spec", "seed", "scope", "hits", "fires", "_lock")

    def __init__(self, spec: FaultSpec, seed: object, scope: str) -> None:
        self.spec = spec
        self.seed = seed
        self.scope = scope
        self.hits = 0
        self.fires = 0
        self._lock = threading.Lock()

    def advance(self) -> tuple[bool, int]:
        """Consume one hit index; return ``(fires, index)``."""
        with self._lock:
            index = self.hits
            self.hits += 1
            if self.spec.times is not None and self.fires >= self.spec.times:
                return False, index
            fires = _eligible(self.spec, self.seed, self.scope, index)
            if fires:
                self.fires += 1
            return fires, index


class Failpoint:
    """One named injection site; a no-op until armed."""

    __slots__ = ("name", "description", "_armed")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._armed: _ArmedSite | None = None

    def hit(self) -> None:
        """Run this site's armed action, if any (raise / delay / drop)."""
        if not _ACTIVE:
            return
        site = self._armed
        if site is None or site.spec.action == "corrupt":
            return
        fires, index = site.advance()
        if not fires:
            return
        spec = site.spec
        _record(site, self.name, index, spec.action)
        if spec.action == "delay":
            time.sleep(spec.delay_ms / 1000.0)
            return
        if spec.action == "drop":
            raise FaultDropConnection(
                f"injected connection drop at {self.name} (hit {index})"
            )
        message = f"injected fault at {self.name} (hit {index})"
        if spec.exc == "os":
            raise OSError(message)
        if spec.exc == "connection":
            raise ConnectionResetError(message)
        raise FaultInjected(message)

    def corrupt(self, data: bytes) -> bytes:
        """``data`` with one deterministically chosen byte flipped when a
        ``corrupt`` action fires at this site; ``data`` unchanged otherwise."""
        if not _ACTIVE:
            return data
        site = self._armed
        if site is None or site.spec.action != "corrupt" or not data:
            return data
        fires, index = site.advance()
        if not fires:
            return data
        _record(site, self.name, index, "corrupt")
        offset = _corrupt_offset(site.spec, site.seed, site.scope, index, len(data))
        mutated = bytearray(data)
        mutated[offset] ^= 0xFF
        return bytes(mutated)

    @property
    def armed_spec(self) -> FaultSpec | None:
        site = self._armed
        return site.spec if site is not None else None

    def stats(self) -> dict:
        site = self._armed
        if site is None:
            return {"site": self.name, "armed": False, "hits": 0, "fires": 0}
        return {
            "site": self.name,
            "armed": True,
            "scope": site.scope,
            "hits": site.hits,
            "fires": site.fires,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "armed" if self._armed is not None else "disarmed"
        return f"Failpoint({self.name!r}, {state})"


# ----------------------------------------------------------------------
# Module state: the registry, the single active flag, the injection log
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Failpoint] = {}
_REGISTRY_LOCK = threading.Lock()
#: the single disabled-path flag — ``Failpoint.hit`` reads only this before
#: returning when no chaos schedule is armed.
_ACTIVE = False
_LOG: list[dict] = []
_LOG_LOCK = threading.Lock()
_LOG_PATH: str | None = None


def failpoint(name: str, description: str = "") -> Failpoint:
    """Get-or-create the failpoint called ``name`` (idempotent, so module
    registration and early env arming can happen in either order)."""
    with _REGISTRY_LOCK:
        point = _REGISTRY.get(name)
        if point is None:
            point = Failpoint(name, description)
            _REGISTRY[name] = point
        elif description and not point.description:
            point.description = description
        return point


def list_failpoints() -> list[Failpoint]:
    """Every registered failpoint, sorted by name."""
    with _REGISTRY_LOCK:
        return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def active() -> bool:
    """Whether any chaos schedule is currently armed in this process."""
    return _ACTIVE


def _record(site: _ArmedSite, name: str, index: int, action: str) -> None:
    entry = {
        "scope": site.scope,
        "pid": os.getpid(),
        "site": name,
        "index": index,
        "action": action,
    }
    with _LOG_LOCK:
        _LOG.append(entry)
        path = _LOG_PATH
    if path is not None:
        _append_line(path, entry)


def _append_line(path: str, entry: dict) -> None:
    """One ``O_APPEND`` write per entry: atomic between processes for lines
    this short, and independent of ``repro.serving._fsio`` (whose writers
    carry failpoints themselves — the sink must never recurse into one)."""
    line = json.dumps(entry, separators=(",", ":")) + "\n"
    try:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    except OSError:  # pragma: no cover - sink directory vanished
        return
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)


def arm(
    specs: Iterable[FaultSpec | Mapping],
    *,
    seed: object = 0,
    scope: str | None = None,
    log_path: str | os.PathLike | None = None,
) -> list[FaultSpec]:
    """Arm a chaos schedule in this process.

    ``specs`` may be :class:`FaultSpec` instances or plain dicts (the JSON
    spec format of ``dpsc faults arm``).  Sites not yet registered are
    created lazily — arming can precede the importing of the module that
    owns the site.  Returns the parsed specs.
    """
    global _ACTIVE, _LOG_PATH
    parsed = [
        spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
        for spec in specs
    ]
    resolved_scope = scope if scope else "main"
    for spec in parsed:
        point = failpoint(spec.site)
        point._armed = _ArmedSite(spec, seed, resolved_scope)
    with _LOG_LOCK:
        if log_path is not None:
            _LOG_PATH = str(log_path)
    _ACTIVE = True
    return parsed


def disarm_all() -> None:
    """Disarm every site and drop back to the single-flag disabled path.

    The in-process injection log survives (read it with
    :func:`injection_log`, reset it with :func:`clear_log`)."""
    global _ACTIVE, _LOG_PATH
    _ACTIVE = False
    with _REGISTRY_LOCK:
        for point in _REGISTRY.values():
            point._armed = None
    with _LOG_LOCK:
        _LOG_PATH = None


class armed:
    """Context manager: :func:`arm` on entry, :func:`disarm_all` on exit."""

    def __init__(self, specs, **kwargs) -> None:
        self._specs = specs
        self._kwargs = kwargs

    def __enter__(self) -> list[FaultSpec]:
        return arm(self._specs, **self._kwargs)

    def __exit__(self, *exc_info) -> None:
        disarm_all()


def injection_log() -> list[dict]:
    """This process's injection log (one entry per fire, in fire order)."""
    with _LOG_LOCK:
        return [dict(entry) for entry in _LOG]


def clear_log() -> None:
    with _LOG_LOCK:
        _LOG.clear()


def read_log(path: str | os.PathLike) -> list[dict]:
    """Every well-formed entry of a JSONL injection sink (missing -> [])."""
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            text = handle.read()
    except FileNotFoundError:
        return []
    entries = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if isinstance(entry, dict):
            entries.append(entry)
    return entries


def verify_log(
    entries: Sequence[Mapping],
    specs: Iterable[FaultSpec | Mapping],
    *,
    seed: object,
) -> list[str]:
    """Replay-check an injection log against its schedule; [] means clean.

    For every ``(scope, pid, site)`` decision stream in ``entries``, the
    fired indices are recomputed purely from ``seed`` via
    :func:`replay_decisions` and compared exactly: a log passes iff it is
    bit-identical to the replay (same sites, same indices, same actions,
    fires in index order).  Returns human-readable mismatch descriptions.
    """
    parsed = {
        spec.site: spec
        for spec in (
            s if isinstance(s, FaultSpec) else FaultSpec.from_dict(s)
            for s in specs
        )
    }
    streams: dict[tuple, list[Mapping]] = {}
    problems: list[str] = []
    for entry in entries:
        site = entry.get("site")
        if site not in parsed:
            problems.append(f"log entry for unarmed site {site!r}: {entry}")
            continue
        key = (entry.get("scope"), entry.get("pid"), site)
        streams.setdefault(key, []).append(entry)
    for (scope, pid, site), stream in sorted(
        streams.items(), key=lambda item: (str(item[0][0]), str(item[0][1]), item[0][2])
    ):
        spec = parsed[site]
        indices = [entry.get("index") for entry in stream]
        if indices != sorted(indices):
            problems.append(
                f"{scope}/pid{pid}/{site}: fires out of index order: {indices}"
            )
        expected_action = spec.action
        for entry in stream:
            if entry.get("action") != expected_action:
                problems.append(
                    f"{scope}/pid{pid}/{site}: logged action "
                    f"{entry.get('action')!r} != armed {expected_action!r}"
                )
        count = max(indices) + 1 if indices else 0
        expected = replay_decisions(spec, seed=seed, scope=str(scope), count=count)
        if sorted(indices) != expected:
            problems.append(
                f"{scope}/pid{pid}/{site}: logged fire indices "
                f"{sorted(indices)} != replayed {expected}"
            )
    return problems


# ----------------------------------------------------------------------
# Environment arming (spawn-started workers inherit os.environ)
# ----------------------------------------------------------------------
def env_for(
    specs: Iterable[FaultSpec | Mapping],
    *,
    seed: object = 0,
    scope: str | None = None,
    log_path: str | os.PathLike | None = None,
) -> dict[str, str]:
    """The environment variables that make a child process arm ``specs``
    via :func:`arm_from_env` (validates the specs on the way)."""
    parsed = [
        spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
        for spec in specs
    ]
    env = {
        ENV_SPECS: json.dumps([spec.to_dict() for spec in parsed]),
        ENV_SEED: str(seed),
    }
    if scope:
        env[ENV_SCOPE] = scope
    if log_path is not None:
        env[ENV_LOG] = str(log_path)
    return env


def arm_from_env(environ: Mapping[str, str] | None = None) -> bool:
    """Arm from ``DPSC_FAULTS`` / ``DPSC_FAULTS_SEED`` / ``DPSC_FAULTS_SCOPE``
    / ``DPSC_FAULTS_LOG``; returns whether a schedule was armed.

    Called by every spawned worker (and ``dpsc serve``) at startup; a
    malformed spec raises rather than silently running without chaos."""
    environ = os.environ if environ is None else environ
    raw = environ.get(ENV_SPECS)
    if not raw:
        return False
    specs = json.loads(raw)
    if not isinstance(specs, list):
        raise ValueError(f"{ENV_SPECS} must be a JSON list of fault specs")
    arm(
        specs,
        seed=environ.get(ENV_SEED, "0"),
        scope=environ.get(ENV_SCOPE),
        log_path=environ.get(ENV_LOG),
    )
    return True
