"""Deterministic, seeded fault injection (failpoints) for chaos drills.

See :mod:`repro.faults.registry` for the full model and
``docs/RESILIENCE.md`` for the failpoint catalogue, the arming formats and
the chaos-drill methodology (E29, ``dpsc faults list/arm``).
"""

from repro.faults.registry import (
    ENV_LOG,
    ENV_SCOPE,
    ENV_SEED,
    ENV_SPECS,
    Failpoint,
    FaultDropConnection,
    FaultInjected,
    FaultSpec,
    active,
    arm,
    arm_from_env,
    armed,
    clear_log,
    disarm_all,
    env_for,
    failpoint,
    injection_log,
    list_failpoints,
    read_log,
    replay_decisions,
    verify_log,
)

__all__ = [
    "ENV_LOG",
    "ENV_SCOPE",
    "ENV_SEED",
    "ENV_SPECS",
    "Failpoint",
    "FaultDropConnection",
    "FaultInjected",
    "FaultSpec",
    "active",
    "arm",
    "arm_from_env",
    "armed",
    "clear_log",
    "disarm_all",
    "env_for",
    "failpoint",
    "injection_log",
    "list_failpoints",
    "read_log",
    "replay_decisions",
    "verify_log",
]
