"""Query serving: compiled tries, release store, budget ledger, HTTP server.

The paper's structures are *release once, query forever*: construction spends
privacy budget, every query afterwards is free post-processing.  This package
is the production path from a built :class:`~repro.core.private_trie.
PrivateCountingTrie` to serving millions of pattern queries:

``compiled``
    :class:`CompiledTrie` — the structure flattened into contiguous numpy
    arrays with vectorized batch queries and an LRU result cache.
``store``
    :class:`ReleaseStore` — versioned, digest-checked on-disk persistence of
    releases (save / load / list / pin / migrate) in either payload format.
``binfmt``
    the ``vNNNN.dpsb`` binary columnar release format: the compiled trie's
    flat arrays as raw aligned buffers behind a self-describing header, so
    :meth:`ReleaseStore.load_compiled` can map a release read-only —
    O(header) cold start, one shared page-cache copy across N processes.
``ledger``
    :class:`BudgetLedger` and :func:`build_release` — cumulative privacy
    accounting across releases of the same database, refusing builds that
    would exceed a global ``(epsilon, delta)`` cap.
``schedule``
    :class:`EpochScheduler` — the continual-release loop: watch an
    append-only :class:`~repro.api.CorpusStream`, build every epoch's
    release under the ``O(log T)`` dyadic-tree budget schedule
    (:class:`~repro.dp.ContinualAccountant`), charge the ledger, publish
    the next store version and hot-reload the serving tier
    (``dpsc epochs run/status``; see ``docs/CONTINUAL.md``).
``server`` / ``client``
    A stdlib ``ThreadingHTTPServer`` JSON API (``/query``, ``/batch``,
    ``/mine``, ``/releases``, ``/healthz``) with request micro-batching and
    per-release routing, plus a ``urllib``-based client.
``loadtest``
    A deterministic concurrency harness: seeded mixed workloads replayed
    from barrier-started threads — or spawned client *processes*
    (``run_load_test_processes``) — checked bit-identical against a serial
    replay (``dpsc bench-load``, E23).
``cluster``
    The sharded multi-process serving tier: a hash-sharding router on the
    public port over N pre-forked workers mmap-sharing one release copy,
    with crash respawn, atomic hot reload and tier-wide metrics
    aggregation (``dpsc serve --workers N``, E27).
``resilience``
    The failure-handling primitives the tier composes end to end: seeded
    decorrelated-jitter :class:`BackoffPolicy`, per-worker
    :class:`CircuitBreaker`, propagated per-request :class:`Deadline`
    (:data:`DEADLINE_HEADER`), :class:`AdmissionGate` load shedding and
    :func:`call_with_retries` — exercised under seeded fault injection
    (:mod:`repro.faults`) by the chaos drill (E29; ``docs/RESILIENCE.md``).

Everything above is safe under the concurrency it advertises: compiled
tries are immutable snapshots with lock-protected caches, and the ledger
and store write their JSON state atomically under advisory file locks —
see the "Concurrency & durability" section of ``docs/SERVING.md`` and
``dpsc serve`` / ``dpsc query`` / ``dpsc releases`` / ``dpsc bench-load``
for the command-line entry points.
"""

from repro.serving.binfmt import read_binary, write_binary
from repro.serving.cluster import Cluster
from repro.serving.compiled import CacheInfo, CompiledTrie
from repro.serving.client import (
    DEFAULT_ENDPOINT_TIMEOUTS,
    ServingClient,
    ServingClientError,
)
from repro.serving.ledger import BudgetLedger, build_release
from repro.serving.resilience import (
    DEADLINE_HEADER,
    AdmissionGate,
    BackoffPolicy,
    CircuitBreaker,
    Deadline,
    call_with_retries,
)
from repro.serving.loadtest import (
    LoadTestError,
    LoadTestResult,
    Operation,
    execute_operation,
    generate_workload,
    run_load_test,
    run_load_test_processes,
)
from repro.serving.schedule import EpochRelease, EpochScheduler
from repro.serving.server import (
    MicroBatcher,
    QueryService,
    create_server,
    install_graceful_shutdown,
    serve_forever,
)
from repro.serving.store import ReleaseRecord, ReleaseStore

__all__ = [
    "Cluster",
    "CacheInfo",
    "CompiledTrie",
    "EpochRelease",
    "EpochScheduler",
    "ServingClient",
    "ServingClientError",
    "DEFAULT_ENDPOINT_TIMEOUTS",
    "DEADLINE_HEADER",
    "AdmissionGate",
    "BackoffPolicy",
    "CircuitBreaker",
    "Deadline",
    "call_with_retries",
    "BudgetLedger",
    "build_release",
    "LoadTestError",
    "LoadTestResult",
    "Operation",
    "execute_operation",
    "generate_workload",
    "run_load_test",
    "run_load_test_processes",
    "MicroBatcher",
    "QueryService",
    "create_server",
    "install_graceful_shutdown",
    "serve_forever",
    "ReleaseRecord",
    "ReleaseStore",
    "read_binary",
    "write_binary",
]
