"""A resilient stdlib HTTP client for the ``dpsc`` query server.

Analysts talk to a running server (``dpsc serve``) through this class or
plain ``curl``; the wire format is the JSON API documented in
:mod:`repro.serving.server`.  Only :mod:`urllib.request` is used, so the
client works anywhere the library does.

Resilience (docs/RESILIENCE.md):

* **Per-request deadline.**  ``timeout`` is the *total* budget for one API
  call, retries included — per-endpoint defaults
  (:data:`DEFAULT_ENDPOINT_TIMEOUTS`: ``/healthz`` short, ``/mine`` long)
  unless a flat ``timeout`` overrides them.  The deadline is stamped on the
  wire as ``X-DPSC-Deadline`` so routers and workers can refuse work nobody
  is waiting for, and each attempt's socket timeout is the time remaining.
* **Retries with seeded backoff.**  Connection-level failures and HTTP 5xx
  responses are retried (every endpoint is an idempotent read) up to
  ``retries`` times within the deadline, sleeping decorrelated-jitter
  delays from a seeded :class:`~repro.serving.resilience.BackoffPolicy` —
  deterministic per ``(seed, request sequence)``.  A ``Retry-After`` header
  on 503 (the router's load-shedding and no-live-worker answers) overrides
  the backoff delay.  HTTP 4xx is never retried.
* **Surfaced error payloads.**  :class:`ServingClientError` carries the
  server's JSON error payload, the endpoint, the HTTP status and the
  attempt count instead of swallowing the response body.
"""

from __future__ import annotations

import http.client
import itertools
import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Mapping, Sequence

from repro.exceptions import ReproError
from repro.obs import MetricsRegistry
from repro.serving.resilience import DEADLINE_HEADER, BackoffPolicy, Deadline

__all__ = [
    "ServingClient",
    "ServingClientError",
    "DEFAULT_ENDPOINT_TIMEOUTS",
    "DEFAULT_TIMEOUT",
]

#: total per-call budgets by endpoint: liveness probes must fail fast,
#: server-side mining walks the whole released structure.
DEFAULT_ENDPOINT_TIMEOUTS: Mapping[str, float] = {
    "/healthz": 5.0,
    "/metrics": 10.0,
    "/releases": 10.0,
    "/query": 30.0,
    "/batch": 60.0,
    "/mine": 120.0,
}

#: budget for endpoints not in :data:`DEFAULT_ENDPOINT_TIMEOUTS`.
DEFAULT_TIMEOUT = 30.0

#: HTTP statuses worth retrying: every 5xx is either an upstream failure
#: (502/503/504 from the router) or an injected/unexpected server error on
#: an idempotent read.  4xx means the request itself is wrong — never retry.
_RETRYABLE_STATUSES = range(500, 600)


def _parse_retry_after(value: str | None) -> float | None:
    """``Retry-After`` as delta-seconds (our servers send fractional
    seconds; the RFC's HTTP-date form is not used by this stack)."""
    if value is None:
        return None
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        return None
    return seconds if seconds >= 0 else None


class ServingClientError(ReproError):
    """The request failed; carries everything the server said.

    ``status`` is the HTTP status (0 for connection-level failures and
    exhausted deadlines), ``endpoint`` the API path, ``payload`` the
    server's parsed JSON error body (``None`` when unreachable), and
    ``attempts`` how many tries the client made before giving up.
    """

    def __init__(
        self,
        message: str,
        status: int = 0,
        *,
        endpoint: str | None = None,
        payload: dict | None = None,
        attempts: int = 1,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.endpoint = endpoint
        self.payload = payload
        self.attempts = attempts


class ServingClient:
    """Query, batch-query and mine against a running ``dpsc serve``.

    ``timeout`` is the flat total budget per call; ``None`` (the default)
    uses :data:`DEFAULT_ENDPOINT_TIMEOUTS` per endpoint.  ``retries`` caps
    re-attempts on connection failures and 5xx responses; ``seed`` makes
    the backoff delays replayable.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float | None = None,
        *,
        retries: int = 4,
        backoff: BackoffPolicy | None = None,
        seed: int = 0,
        endpoint_timeouts: Mapping[str, float] | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = backoff if backoff is not None else BackoffPolicy(cap=1.0)
        self.seed = seed
        self.endpoint_timeouts = dict(
            DEFAULT_ENDPOINT_TIMEOUTS if endpoint_timeouts is None else endpoint_timeouts
        )
        #: per-instance registry (``metrics`` stays the server-scrape method
        #: for backwards compatibility, so the client's own counters live
        #: under ``telemetry``).
        self.telemetry = MetricsRegistry()
        self._retries_total = self.telemetry.counter(
            "dpsc_client_retries_total",
            "Attempts retried after a connection failure or 5xx response.",
        )
        self._deadline_exceeded = self.telemetry.counter(
            "dpsc_client_deadline_exceeded_total",
            "API calls abandoned because their total deadline ran out.",
        )
        #: per-request sequence feeding the backoff seed, so concurrent
        #: requests draw independent (but replayable) delay schedules.
        self._sequence = itertools.count()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def timeout_for(self, endpoint: str) -> float:
        """The total budget for one call to ``endpoint``."""
        if self.timeout is not None:
            return self.timeout
        return self.endpoint_timeouts.get(endpoint, DEFAULT_TIMEOUT)

    @property
    def num_retries(self) -> int:
        return int(self._retries_total.value)

    def _request(
        self,
        path: str,
        payload: dict | None = None,
        *,
        timeout: float | None = None,
        decode: str = "json",
    ):
        endpoint = path.split("?", 1)[0]
        budget = timeout if timeout is not None else self.timeout_for(endpoint)
        deadline = Deadline.after(budget)
        url = f"{self.base_url}{path}"
        data = None
        headers = {
            "Accept": "application/json" if decode == "json" else "text/plain",
            DEADLINE_HEADER: deadline.header_value(),
        }
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        delays = self.backoff.iter_delays(f"{self.seed}:{next(self._sequence)}")
        attempts = 0
        last_failure = "no attempt was made"
        last_status = 0
        last_payload: dict | None = None
        while True:
            remaining = deadline.remaining()
            if remaining <= 0:
                self._deadline_exceeded.inc()
                raise ServingClientError(
                    f"deadline of {budget:g}s exceeded for {endpoint} after "
                    f"{attempts} attempt(s); last failure: {last_failure}",
                    last_status,
                    endpoint=endpoint,
                    payload=last_payload,
                    attempts=attempts,
                ) from None
            request = urllib.request.Request(url, data=data, headers=headers)
            attempts += 1
            retry_after = None
            try:
                with urllib.request.urlopen(request, timeout=remaining) as response:
                    body = response.read()
                if decode == "json":
                    return json.loads(body.decode("utf-8"))
                return body.decode("utf-8")
            except urllib.error.HTTPError as error:
                body = error.read()
                try:
                    parsed = json.loads(body.decode("utf-8"))
                    last_payload = parsed if isinstance(parsed, dict) else None
                except (ValueError, UnicodeDecodeError):
                    last_payload = None
                last_status = error.code
                message = (last_payload or {}).get("error") or (
                    f"server returned HTTP {error.code}"
                )
                if error.code not in _RETRYABLE_STATUSES:
                    raise ServingClientError(
                        message,
                        error.code,
                        endpoint=endpoint,
                        payload=last_payload,
                        attempts=attempts,
                    ) from None
                last_failure = f"HTTP {error.code}: {message}"
                retry_after = _parse_retry_after(error.headers.get("Retry-After"))
            except (urllib.error.URLError, OSError, http.client.HTTPException) as error:
                # URLError wraps the transport error in .reason; raw socket
                # timeouts/resets mid-read arrive as OSError/HTTPException.
                reason = getattr(error, "reason", error)
                last_status = 0
                last_payload = None
                last_failure = f"cannot reach {url}: {reason}"
            if attempts > self.retries:
                raise ServingClientError(
                    f"{endpoint} failed after {attempts} attempt(s); "
                    f"last failure: {last_failure}",
                    last_status,
                    endpoint=endpoint,
                    payload=last_payload,
                    attempts=attempts,
                ) from None
            self._retries_total.inc()
            delay = next(delays) if retry_after is None else retry_after
            time.sleep(max(0.0, min(delay, deadline.remaining())))

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def query(
        self, pattern: str, release: str | None = None, *, timeout: float | None = None
    ) -> float:
        """Noisy count of one pattern."""
        payload: dict = {"pattern": pattern}
        if release is not None:
            payload["release"] = release
        return float(self._request("/query", payload, timeout=timeout)["count"])

    def batch(
        self,
        patterns: Sequence[str],
        release: str | None = None,
        *,
        timeout: float | None = None,
    ) -> list[float]:
        """Noisy counts of many patterns in one round trip."""
        payload: dict = {"patterns": list(patterns)}
        if release is not None:
            payload["release"] = release
        return [
            float(c)
            for c in self._request("/batch", payload, timeout=timeout)["counts"]
        ]

    def mine(
        self,
        threshold: float,
        release: str | None = None,
        *,
        min_length: int = 1,
        max_length: int | None = None,
        exact_length: int | None = None,
        timeout: float | None = None,
    ) -> list[tuple[str, float]]:
        """Frequent stored patterns at ``threshold`` (server-side mining)."""
        payload: dict = {"threshold": threshold, "min_length": min_length}
        if release is not None:
            payload["release"] = release
        if max_length is not None:
            payload["max_length"] = max_length
        if exact_length is not None:
            payload["exact_length"] = exact_length
        return [
            (pattern, float(count))
            for pattern, count in self._request("/mine", payload, timeout=timeout)[
                "patterns"
            ]
        ]

    def releases(self) -> list[dict]:
        """Metadata of every served release."""
        return self._request("/releases")["releases"]

    def healthz(self) -> dict:
        """Liveness and serving statistics."""
        return self._request("/healthz")

    def metrics(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        return self._request("/metrics", decode="text")

    def metrics_snapshot(self) -> dict:
        """The server's raw metrics registry snapshot (``/metrics?format=json``)."""
        return self._request("/metrics?format=json")
