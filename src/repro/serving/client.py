"""A tiny stdlib HTTP client for the ``dpsc`` query server.

Analysts talk to a running server (``dpsc serve``) through this class or
plain ``curl``; the wire format is the JSON API documented in
:mod:`repro.serving.server`.  Only :mod:`urllib.request` is used, so the
client works anywhere the library does.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request
from typing import Sequence

from repro.exceptions import ReproError

__all__ = ["ServingClient", "ServingClientError"]


class ServingClientError(ReproError):
    """The server answered with an error status (the message is the
    server-side error string)."""

    def __init__(self, message: str, status: int) -> None:
        super().__init__(message)
        self.status = status


class ServingClient:
    """Query, batch-query and mine against a running ``dpsc serve``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, path: str, payload: dict | None = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read().decode("utf-8")).get("error", "")
            except (ValueError, UnicodeDecodeError):
                message = ""
            raise ServingClientError(
                message or f"server returned HTTP {error.code}", error.code
            ) from None
        except urllib.error.URLError as error:
            raise ServingClientError(
                f"cannot reach {url}: {error.reason}", status=0
            ) from None

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def query(self, pattern: str, release: str | None = None) -> float:
        """Noisy count of one pattern."""
        payload: dict = {"pattern": pattern}
        if release is not None:
            payload["release"] = release
        return float(self._request("/query", payload)["count"])

    def batch(self, patterns: Sequence[str], release: str | None = None) -> list[float]:
        """Noisy counts of many patterns in one round trip."""
        payload: dict = {"patterns": list(patterns)}
        if release is not None:
            payload["release"] = release
        return [float(c) for c in self._request("/batch", payload)["counts"]]

    def mine(
        self,
        threshold: float,
        release: str | None = None,
        *,
        min_length: int = 1,
        max_length: int | None = None,
        exact_length: int | None = None,
    ) -> list[tuple[str, float]]:
        """Frequent stored patterns at ``threshold`` (server-side mining)."""
        payload: dict = {"threshold": threshold, "min_length": min_length}
        if release is not None:
            payload["release"] = release
        if max_length is not None:
            payload["max_length"] = max_length
        if exact_length is not None:
            payload["exact_length"] = exact_length
        return [
            (pattern, float(count))
            for pattern, count in self._request("/mine", payload)["patterns"]
        ]

    def releases(self) -> list[dict]:
        """Metadata of every served release."""
        return self._request("/releases")["releases"]

    def healthz(self) -> dict:
        """Liveness and serving statistics."""
        return self._request("/healthz")

    def metrics(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        url = f"{self.base_url}/metrics"
        request = urllib.request.Request(url, headers={"Accept": "text/plain"})
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServingClientError(
                f"server returned HTTP {error.code}", error.code
            ) from None
        except urllib.error.URLError as error:
            raise ServingClientError(
                f"cannot reach {url}: {error.reason}", status=0
            ) from None

    def metrics_snapshot(self) -> dict:
        """The server's raw metrics registry snapshot (``/metrics?format=json``)."""
        return self._request("/metrics?format=json")
