"""A deterministic load-test harness for the query-serving stack.

The serving layer's concurrency claim — any number of handler threads may
hammer a released structure and every answer is still exact post-processing
— is only as good as the harness that can falsify it.  This module
generates a *seeded* mixed workload (``query`` / ``batch`` / ``mine`` /
``healthz`` operations), replays it once serially to fix the expected
answers, then replays it again from ``N`` barrier-started threads and
checks three properties:

1. **bit-identical results** — every concurrent answer equals the serial
   replay's, float-for-float (queries are deterministic post-processing,
   so any divergence is a concurrency bug, e.g. the pre-fix unlocked LRU);
2. **no errors** — no operation may raise (a corrupted ``OrderedDict``
   typically surfaces as ``KeyError``/``RuntimeError`` under load);
3. **consistent counters** — the service's ``/healthz`` counters advance by
   exactly the workload's operation totals (exact, not best-effort).

The harness drives either a :class:`~repro.serving.server.QueryService`
directly (in-process, what ``tests/serving/test_concurrency.py`` and E23
use) or a :class:`~repro.serving.client.ServingClient` pointed at a live
HTTP server (``dpsc bench-load --url``).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import ReproError
from repro.obs import Histogram

__all__ = [
    "Operation",
    "LoadTestError",
    "LoadTestResult",
    "generate_workload",
    "expected_counter_deltas",
    "execute_operation",
    "run_load_test",
    "run_load_test_processes",
]

#: client processes are spawned (same rationale as the serving workers: no
#: inherited locks, and identical behaviour across platforms).
_SPAWN = multiprocessing.get_context("spawn")

#: default traffic mix: (query, batch, mine, healthz) probabilities.
DEFAULT_MIX = (0.62, 0.25, 0.03, 0.10)


class LoadTestError(ReproError):
    """The concurrent replay diverged from the serial replay."""


@dataclass(frozen=True)
class Operation:
    """One operation of a load-test workload (hashable, replayable)."""

    kind: str  # "query" | "batch" | "mine" | "healthz"
    release: str | None = None
    pattern: str = ""
    patterns: tuple[str, ...] = ()
    threshold: float = 0.0
    min_length: int = 1


@dataclass
class LoadTestResult:
    """Outcome of one concurrent replay (see :func:`run_load_test`)."""

    threads: int
    operations: int
    seconds: float
    num_queries: int
    num_batches: int
    num_batch_patterns: int
    num_mines: int
    num_healthz: int
    mismatches: list[int] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    counters_consistent: bool = True
    #: client *processes* driving the replay (0 for the threaded harness).
    processes: int = 0
    #: per-operation-kind latency percentiles observed *during the
    #: concurrent replay*, e.g. ``{"query": {"p50": ..., "p95": ...,
    #: "p99": ...}}`` (seconds; kinds with no operations are absent).
    percentiles: dict = field(default_factory=dict)

    @property
    def ops_per_second(self) -> float:
        return self.operations / self.seconds if self.seconds else float("inf")

    @property
    def queries_per_second(self) -> float:
        """Throughput in *pattern lookups* (batch patterns each count)."""
        total = self.num_queries + self.num_batch_patterns
        return total / self.seconds if self.seconds else float("inf")

    @property
    def bit_identical(self) -> bool:
        return not self.mismatches and not self.errors

    def row(self) -> dict:
        """A flat JSON-friendly summary (experiment/benchmark rows)."""
        row = {
            "threads": self.threads,
            "processes": self.processes,
            "operations": self.operations,
            "seconds": self.seconds,
            "ops_per_second": self.ops_per_second,
            "queries_per_second": self.queries_per_second,
            "bit_identical": self.bit_identical,
            "counters_consistent": self.counters_consistent,
            "errors": len(self.errors),
        }
        for kind in sorted(self.percentiles):
            for quantile, value in self.percentiles[kind].items():
                row[f"{kind}_{quantile}_seconds"] = value
        return row


# ----------------------------------------------------------------------
# Workload generation
# ----------------------------------------------------------------------
def generate_workload(
    service,
    num_operations: int,
    *,
    seed: int = 0,
    mix: Sequence[float] = DEFAULT_MIX,
    max_batch: int = 64,
    releases: Sequence[str] | None = None,
) -> list[Operation]:
    """A seeded list of mixed operations against ``service``'s releases.

    Patterns are drawn from each release's stored patterns (the traffic
    analysts actually send), their prefixes/extensions, and misses, so both
    the LRU cache and the dead-state paths get exercised.  The same
    ``(service releases, num_operations, seed, mix)`` always produce the
    same workload — the determinism the bit-identical check rests on.
    """
    rng = np.random.default_rng(seed)
    names = sorted(releases) if releases else _release_names(service)
    pools: dict[str, list[str]] = {}
    for name in names:
        stored = _stored_patterns(service, name)
        pool = list(stored) or [""]
        pool += [p[:-1] for p in stored if len(p) > 1]
        pool += [p + p[0] for p in stored[:64]]
        pool += ["", "\x00", "zzz-miss", "…"]
        pools[name] = pool
    probabilities = np.asarray(mix, dtype=float)
    probabilities = probabilities / probabilities.sum()
    kinds = ("query", "batch", "mine", "healthz")
    operations: list[Operation] = []
    for _ in range(num_operations):
        kind = kinds[int(rng.choice(4, p=probabilities))]
        name = names[int(rng.integers(len(names)))]
        pool = pools[name]
        if kind == "query":
            operations.append(
                Operation(
                    kind="query",
                    release=name,
                    pattern=pool[int(rng.integers(len(pool)))],
                )
            )
        elif kind == "batch":
            size = int(rng.integers(1, max_batch + 1))
            patterns = tuple(
                pool[int(index)] for index in rng.integers(len(pool), size=size)
            )
            operations.append(Operation(kind="batch", release=name, patterns=patterns))
        elif kind == "mine":
            operations.append(
                Operation(
                    kind="mine",
                    release=name,
                    threshold=float(rng.uniform(0.0, 10.0)),
                    min_length=int(rng.integers(1, 4)),
                )
            )
        else:
            operations.append(Operation(kind="healthz"))
    return operations


def expected_counter_deltas(workload: Sequence[Operation]) -> dict[str, int]:
    """How much each ``/healthz`` counter must advance after one replay."""
    deltas = {"queries": 0, "batches": 0, "batch_patterns": 0, "mines": 0}
    for operation in workload:
        if operation.kind == "query":
            deltas["queries"] += 1
        elif operation.kind == "batch":
            deltas["batches"] += 1
            deltas["batch_patterns"] += len(operation.patterns)
        elif operation.kind == "mine":
            deltas["mines"] += 1
    return deltas


def _release_names(target) -> list[str]:
    # QueryService spells it releases_info(); ServingClient releases().
    info = getattr(target, "releases_info", None) or target.releases
    return sorted(entry["name"] for entry in info())


def _stored_patterns(target, name: str) -> list[str]:
    release = getattr(target, "release", None)
    if release is not None:  # in-process QueryService
        return sorted(pattern for pattern, _ in release(name).items())
    # Over HTTP: a bottomless mine threshold lists every stored pattern.
    return sorted(pattern for pattern, _ in target.mine(-1e18, name))


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _health(target) -> dict:
    # QueryService spells it health(); ServingClient spells it healthz().
    probe = getattr(target, "health", None)
    if probe is None:
        probe = target.healthz
    return probe()


def execute_operation(target, operation: Operation):
    """Run one operation; the return value is what gets compared."""
    if operation.kind == "query":
        return float(target.query(operation.pattern, operation.release))
    if operation.kind == "batch":
        return [float(c) for c in target.batch(list(operation.patterns), operation.release)]
    if operation.kind == "mine":
        return target.mine(
            operation.threshold,
            operation.release,
            min_length=operation.min_length,
        )
    if operation.kind == "healthz":
        # Counters move during the run; only liveness is comparable.
        return _health(target)["status"]
    raise ReproError(f"unknown load-test operation kind {operation.kind!r}")


def run_load_test(
    target,
    workload: Sequence[Operation],
    *,
    threads: int = 8,
    expected: Sequence[object] | None = None,
    check: bool = False,
    verify_counters: bool = True,
) -> LoadTestResult:
    """Replay ``workload`` from ``threads`` barrier-started threads and
    compare every answer against a serial replay.

    ``target`` is a :class:`QueryService` or a :class:`ServingClient`.
    ``expected`` lets the caller reuse one serial replay across several
    thread counts; otherwise it is computed here (serially, before any
    thread starts).  With ``check=True`` a divergence raises
    :class:`LoadTestError` instead of only being recorded in the result.
    ``verify_counters`` snapshots the target's health counters around the
    concurrent replay and requires them to advance by exactly the
    workload's totals (turn it off when other traffic shares the target).

    Thread ``t`` executes operations ``t, t + threads, t + 2*threads, ...``
    — a deterministic round-robin partition, so the same workload and
    thread count replay identically (modulo scheduling, which must not
    matter: that is the property under test).
    """
    workload = list(workload)
    if expected is None:
        expected = [execute_operation(target, operation) for operation in workload]
    expected = list(expected)
    if len(expected) != len(workload):
        raise ReproError("expected results and workload differ in length")

    results: list[object] = [None] * len(workload)
    errors: list[str] = []
    errors_lock = threading.Lock()
    barrier = threading.Barrier(threads + 1)
    # Per-thread latency samples (merged after the join — no shared-state
    # contention while the clock is running).
    samples: list[list[tuple[str, float]]] = [[] for _ in range(threads)]

    def worker(offset: int) -> None:
        mine = samples[offset]
        barrier.wait()
        for index in range(offset, len(workload), threads):
            operation = workload[index]
            began = time.perf_counter()
            try:
                results[index] = execute_operation(target, operation)
            except Exception as error:  # noqa: BLE001 - recorded, re-raised below
                with errors_lock:
                    errors.append(f"op {index} ({operation.kind}): {error!r}")
            else:
                mine.append((operation.kind, time.perf_counter() - began))

    pool = [
        threading.Thread(target=worker, args=(offset,), name=f"loadtest-{offset}")
        for offset in range(threads)
    ]
    before = _health(target) if verify_counters else None
    for thread in pool:
        thread.start()
    barrier.wait()  # every worker released at once
    started = time.perf_counter()
    for thread in pool:
        thread.join()
    seconds = time.perf_counter() - started
    after = _health(target) if verify_counters else None

    mismatches = [
        index
        for index in range(len(workload))
        if workload[index].kind != "healthz" and results[index] != expected[index]
    ]
    deltas = expected_counter_deltas(workload)
    counters_consistent = True
    if verify_counters:
        counters_consistent = all(
            after[key] - before[key] == deltas[key] for key in deltas
        )
    # ungated histograms: the load test *is* the measurement, so it records
    # regardless of the global telemetry switch.
    histograms: dict[str, Histogram] = {}
    for thread_samples in samples:
        for kind, latency in thread_samples:
            histogram = histograms.get(kind)
            if histogram is None:
                histogram = histograms[kind] = Histogram(gated=False)
            histogram.observe(latency)
    percentiles = {
        kind: histogram.percentiles() for kind, histogram in histograms.items()
    }
    result = LoadTestResult(
        threads=threads,
        operations=len(workload),
        seconds=seconds,
        num_queries=deltas["queries"],
        num_batches=deltas["batches"],
        num_batch_patterns=deltas["batch_patterns"],
        num_mines=deltas["mines"],
        num_healthz=sum(1 for op in workload if op.kind == "healthz"),
        mismatches=mismatches,
        errors=errors,
        counters_consistent=counters_consistent,
        percentiles=percentiles,
    )
    if check and not (result.bit_identical and result.counters_consistent):
        detail = "; ".join(errors[:3]) or (
            f"ops {mismatches[:10]} diverged"
            if mismatches
            else "health counters drifted from the workload totals"
        )
        raise LoadTestError(
            f"concurrent replay with {threads} threads diverged from the "
            f"serial replay ({len(mismatches)} mismatches, "
            f"{len(errors)} errors): {detail}"
        )
    return result


# ----------------------------------------------------------------------
# Multi-process clients
# ----------------------------------------------------------------------
def _client_process_main(base_url: str, tasks, go, conn) -> None:
    """One spawned client process: replay its slice against ``base_url``.

    ``tasks`` is a list of ``(index, Operation)`` pairs; results travel back
    over ``conn`` as ``(indices, results, samples, errors)``.  The process
    signals readiness, then blocks on the shared ``go`` event so every
    client starts hammering at once (the cross-process analogue of the
    thread barrier above).
    """
    from repro.serving.client import ServingClient

    client = ServingClient(base_url)
    conn.send("ready")
    go.wait()
    indices: list[int] = []
    results: list[object] = []
    samples: list[tuple[str, float]] = []
    errors: list[str] = []
    for index, operation in tasks:
        began = time.perf_counter()
        try:
            outcome = execute_operation(client, operation)
        except Exception as error:  # noqa: BLE001 - recorded and compared
            errors.append(f"op {index} ({operation.kind}): {error!r}")
        else:
            indices.append(index)
            results.append(outcome)
            samples.append((operation.kind, time.perf_counter() - began))
    conn.send((indices, results, samples, errors))
    conn.close()


def run_load_test_processes(
    base_url: str,
    workload: Sequence[Operation],
    *,
    processes: int = 2,
    expected: Sequence[object] | None = None,
    check: bool = False,
    verify_counters: bool = True,
    spawn_timeout: float = 120.0,
    run_timeout: float = 600.0,
) -> LoadTestResult:
    """Replay ``workload`` from ``processes`` spawned *client processes*.

    The multi-process twin of :func:`run_load_test` for HTTP targets: a
    single client process is itself GIL-bound, so it cannot saturate the
    sharded serving tier — here each client is a real OS process with its
    own interpreter, released simultaneously by a shared event.  Process
    ``p`` executes operations ``p, p + P, p + 2*P, ...`` (the same
    deterministic round-robin rule as the threaded harness), every answer
    is compared against a serial replay, and the target's ``/healthz``
    counters must advance by exactly the workload totals — seeded
    determinism and the exactness checks survive the extra process layer.
    """
    from repro.serving.client import ServingClient

    if processes < 1:
        raise ReproError("run_load_test_processes needs at least one process")
    workload = list(workload)
    client = ServingClient(base_url)
    if expected is None:
        expected = [execute_operation(client, operation) for operation in workload]
    expected = list(expected)
    if len(expected) != len(workload):
        raise ReproError("expected results and workload differ in length")

    go = _SPAWN.Event()
    members = []
    try:
        for offset in range(processes):
            tasks = [
                (index, workload[index])
                for index in range(offset, len(workload), processes)
            ]
            parent_conn, child_conn = _SPAWN.Pipe(duplex=False)
            process = _SPAWN.Process(
                target=_client_process_main,
                args=(base_url, tasks, go, child_conn),
                name=f"loadtest-client-{offset}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            members.append((process, parent_conn))
        for offset, (process, parent_conn) in enumerate(members):
            if not parent_conn.poll(spawn_timeout):
                raise LoadTestError(
                    f"client process {offset} not ready within {spawn_timeout:.0f}s"
                )
            parent_conn.recv()  # "ready"

        before = _health(client) if verify_counters else None
        go.set()
        started = time.perf_counter()
        results: list[object] = [None] * len(workload)
        errors: list[str] = []
        samples: list[tuple[str, float]] = []
        for offset, (process, parent_conn) in enumerate(members):
            if not parent_conn.poll(run_timeout):
                raise LoadTestError(
                    f"client process {offset} produced no results within "
                    f"{run_timeout:.0f}s"
                )
            indices, outcomes, member_samples, member_errors = parent_conn.recv()
            for index, outcome in zip(indices, outcomes):
                results[index] = outcome
            samples.extend(member_samples)
            errors.extend(member_errors)
        seconds = time.perf_counter() - started
        after = _health(client) if verify_counters else None
    finally:
        for process, parent_conn in members:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - hung client
                process.terminate()
                process.join(2.0)
            try:
                parent_conn.close()
            except OSError:  # pragma: no cover
                pass

    mismatches = [
        index
        for index in range(len(workload))
        if workload[index].kind != "healthz" and results[index] != expected[index]
    ]
    deltas = expected_counter_deltas(workload)
    counters_consistent = True
    if verify_counters:
        counters_consistent = all(
            after[key] - before[key] == deltas[key] for key in deltas
        )
    histograms: dict[str, Histogram] = {}
    for kind, latency in samples:
        histogram = histograms.get(kind)
        if histogram is None:
            histogram = histograms[kind] = Histogram(gated=False)
        histogram.observe(latency)
    result = LoadTestResult(
        threads=0,
        operations=len(workload),
        seconds=seconds,
        num_queries=deltas["queries"],
        num_batches=deltas["batches"],
        num_batch_patterns=deltas["batch_patterns"],
        num_mines=deltas["mines"],
        num_healthz=sum(1 for op in workload if op.kind == "healthz"),
        mismatches=mismatches,
        errors=errors,
        counters_consistent=counters_consistent,
        percentiles={
            kind: histogram.percentiles() for kind, histogram in histograms.items()
        },
        processes=processes,
    )
    if check and not (result.bit_identical and result.counters_consistent):
        detail = "; ".join(errors[:3]) or (
            f"ops {mismatches[:10]} diverged"
            if mismatches
            else "health counters drifted from the workload totals"
        )
        raise LoadTestError(
            f"multi-process replay with {processes} clients diverged from "
            f"the serial replay ({len(mismatches)} mismatches, "
            f"{len(errors)} errors): {detail}"
        )
    return result
