"""The versioned binary columnar release format (``vNNNN.dpsb``).

A released structure is, after compilation, nine flat numpy arrays plus a
small amount of metadata — and the JSON release payload forces every server
process to re-grow an object trie from pattern strings at startup and hold a
private copy of the result.  This module serializes the
:class:`repro.serving.CompiledTrie` columns directly::

    offset 0   magic b"DPSB" | u32 format version | u32 header length
    ...        header: JSON array table (name, dtype, shape, offset, nbytes),
               checksums, canonical content digest, node count
    align 64   data section: the nine arrays as raw little-endian buffers,
               each offset 64-byte aligned (offsets relative to the section
               start, so the table never depends on the header's own size)
    ...        trailer: JSON {vocab, metadata, report}

Design properties:

* **O(header) cold start** — :func:`read_binary` with ``mmap=True`` maps the
  file and builds :class:`CompiledTrie` as zero-copy read-only views over
  the mapped buffers.  Nothing touches a node page until the first query,
  and N server processes share one page-cache copy of the data section.
* **The digest is the JSON digest** — the header stores the structure's
  canonical :meth:`content_digest` (SHA-256 of the canonical JSON payload),
  so a binary release and the JSON release of the same structure are
  interchangeable under the store's digest checks, in both directions.
* **Corruption is detectable** — the exact file size is derivable from the
  header (truncation always fails fast), the trailer carries its own
  SHA-256 (always checked), and ``buffer_sha256`` covers the whole data
  section (checked by default on full reads; opt-in via ``verify=True``
  for mmap loads, where eagerly hashing would defeat the lazy mapping).

Every validation failure raises :class:`repro.exceptions.ReleaseFormatError`
naming the file and the check, so a corrupted store is diagnosable from the
error alone.  Writes go through :func:`repro.serving._fsio.atomic_write_bytes`
(tmp + fsync + rename), so a crash mid-write never damages a prior version.
"""

from __future__ import annotations

import hashlib
import json
import mmap as _mmap_module  # noqa: F401  (documented dependency of np.memmap)
from pathlib import Path

import numpy as np

from repro import faults
from repro.core.private_trie import StructureMetadata, payload_metadata
from repro.exceptions import ReleaseFormatError
from repro.serving._fsio import atomic_write_bytes

__all__ = [
    "BINARY_SUFFIX",
    "FORMAT_VERSION",
    "MAGIC",
    "read_binary",
    "read_header",
    "write_binary",
]

#: four bytes identifying a DP substring-counting binary release.
MAGIC = b"DPSB"
#: bumped on any layout change; readers reject versions they don't know.
FORMAT_VERSION = 1
#: payload file extension (``vNNNN.dpsb``), next to the JSON ``.json``.
BINARY_SUFFIX = ".dpsb"
#: every buffer offset (and the data-section start) is a multiple of this,
#: so mapped views are aligned for any dtype numpy serves.
ALIGN = 64
#: the canonical column order; must match ``CompiledTrie.arrays()``.
ARRAY_FIELDS = (
    "counts",
    "depths",
    "parents",
    "parent_codes",
    "child_start",
    "child_end",
    "edge_keys",
    "edge_labels",
    "edge_targets",
)

_PREAMBLE_NBYTES = 12  # magic + u32 version + u32 header length

#: chaos-drill injection site: ``raise``/``delay`` fire at the top of every
#: binary load, ``corrupt`` flips one trailer byte so the format's own
#: checksum rejection (``ReleaseFormatError``) is what surfaces.
_FP_READ = faults.failpoint(
    "binfmt.read", "Entry of every binary (.dpsb) release read."
)


def _aligned(offset: int) -> int:
    return (offset + ALIGN - 1) // ALIGN * ALIGN


def _format_error(path: Path, check: str) -> ReleaseFormatError:
    return ReleaseFormatError(f"binary release {path}: {check}")


def write_binary(path: str | Path, compiled, *, content_digest: str | None = None) -> dict:
    """Serialize ``compiled`` (a :class:`CompiledTrie`) to ``path`` atomically.

    ``content_digest`` is the canonical JSON digest recorded in the header
    (and by the store's index); when omitted it is computed from ``compiled``
    — callers that already hold the source structure pass its digest instead
    of paying the payload walk twice.  Returns the written header dict.
    """
    path = Path(path)
    if content_digest is None:
        content_digest = compiled.content_digest()

    columns = compiled.arrays()
    if tuple(columns) != ARRAY_FIELDS:  # pragma: no cover - schema drift guard
        raise ReleaseFormatError(
            f"binary release {path}: CompiledTrie.arrays() order "
            f"{tuple(columns)} != format column order {ARRAY_FIELDS}"
        )

    table = []
    buffers: list[bytes] = []
    offset = 0
    buffer_hash = hashlib.sha256()
    for name, array in columns.items():
        # Raw buffers are always little-endian and C-contiguous on disk.
        array = np.ascontiguousarray(array, dtype=array.dtype.newbyteorder("<"))
        raw = array.tobytes()
        aligned = _aligned(offset)
        if aligned != offset:
            pad = b"\x00" * (aligned - offset)
            buffers.append(pad)
            buffer_hash.update(pad)
        table.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": aligned,
                "nbytes": len(raw),
            }
        )
        buffers.append(raw)
        buffer_hash.update(raw)
        offset = aligned + len(raw)

    trailer = json.dumps(
        {
            "vocab": compiled._vocab,
            "metadata": payload_metadata(compiled.metadata),
            "report": compiled.report,
        },
        sort_keys=True,
    ).encode("utf-8")

    header = {
        "arrays": table,
        "data_nbytes": offset,
        "buffer_sha256": buffer_hash.hexdigest(),
        "trailer_nbytes": len(trailer),
        "trailer_sha256": hashlib.sha256(trailer).hexdigest(),
        "content_digest": content_digest,
        "num_nodes": int(columns["counts"].size),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    data_start = _aligned(_PREAMBLE_NBYTES + len(header_bytes))

    chunks = [
        MAGIC,
        FORMAT_VERSION.to_bytes(4, "little"),
        len(header_bytes).to_bytes(4, "little"),
        header_bytes,
        b"\x00" * (data_start - _PREAMBLE_NBYTES - len(header_bytes)),
        *buffers,
        trailer,
    ]
    atomic_write_bytes(path, chunks)
    return header


def _read_preamble(path: Path, handle) -> tuple[dict, int]:
    """Validate magic/version, parse the header, return it + data start."""
    preamble = handle.read(_PREAMBLE_NBYTES)
    if len(preamble) < _PREAMBLE_NBYTES:
        raise _format_error(path, "truncated before the 12-byte preamble")
    if preamble[:4] != MAGIC:
        raise _format_error(
            path, f"bad magic {preamble[:4]!r} (expected {MAGIC!r})"
        )
    version = int.from_bytes(preamble[4:8], "little")
    if version != FORMAT_VERSION:
        raise _format_error(
            path,
            f"unsupported format version {version} "
            f"(this reader understands {FORMAT_VERSION})",
        )
    header_nbytes = int.from_bytes(preamble[8:12], "little")
    header_bytes = handle.read(header_nbytes)
    if len(header_bytes) < header_nbytes:
        raise _format_error(path, "truncated inside the header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except ValueError as exc:
        raise _format_error(path, f"header is not valid JSON ({exc})") from exc
    for key in (
        "arrays",
        "data_nbytes",
        "buffer_sha256",
        "trailer_nbytes",
        "trailer_sha256",
        "content_digest",
        "num_nodes",
    ):
        if key not in header:
            raise _format_error(path, f"header is missing the {key!r} field")
    if not isinstance(header["arrays"], list):
        raise _format_error(path, "header 'arrays' field is not a table")
    for entry in header["arrays"]:
        if not isinstance(entry, dict) or not (
            {"name", "dtype", "shape", "offset", "nbytes"} <= entry.keys()
        ):
            raise _format_error(
                path, f"malformed array table entry {entry!r} (corrupted header)"
            )
    return header, _aligned(_PREAMBLE_NBYTES + header_nbytes)


def read_header(path: str | Path) -> dict:
    """The validated header of a binary release (O(header), no data read).

    Checks magic, version and — via the exact expected file size — that the
    blob is not truncated.  This is all a cold start has to pay before
    queries begin faulting pages in on demand.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        header, data_start = _read_preamble(path, handle)
        expected = data_start + header["data_nbytes"] + header["trailer_nbytes"]
        actual = path.stat().st_size
        if actual != expected:
            raise _format_error(
                path,
                f"size mismatch: {actual} bytes on disk, header implies "
                f"{expected} (truncated or trailing garbage)",
            )
    return header


def read_binary(
    path: str | Path,
    *,
    mmap: bool = True,
    verify: bool | None = None,
    cache_size: int = 4096,
    expected_digest: str | None = None,
):
    """Load a binary release as a :class:`CompiledTrie`.

    With ``mmap=True`` (the default) the arrays are read-only zero-copy
    views over an ``np.memmap`` of the file: cold start is O(header), pages
    fault in on first query, and concurrent processes share one page-cache
    copy.  With ``mmap=False`` the data section is read into memory once
    (a private copy, no page sharing — but also no page faults at query
    time on a cold cache).

    ``verify`` controls the data-section checksum: ``None`` means *checked*
    for full reads (the bytes are in hand anyway) and *skipped* for mmap
    (hashing would fault in every page, defeating the lazy load); pass
    ``True``/``False`` to override.  Truncation and trailer corruption are
    always detected regardless.  ``expected_digest`` (e.g. the store
    index's record) is compared against the header's canonical content
    digest in O(1).
    """
    from repro.serving.compiled import CompiledTrie

    _FP_READ.hit()
    path = Path(path)
    header = read_header(path)
    if expected_digest is not None and header["content_digest"] != expected_digest:
        raise _format_error(
            path,
            f"content digest mismatch: header records "
            f"{header['content_digest']}, index expects {expected_digest}",
        )

    with open(path, "rb") as handle:
        _, data_start = _read_preamble(path, handle)
        data_nbytes = header["data_nbytes"]
        trailer_start = data_start + data_nbytes
        handle.seek(trailer_start)
        # The corrupt-bytes failpoint flips one deterministic byte here, so
        # chaos drills exercise the real checksum rejection path below.
        trailer_bytes = _FP_READ.corrupt(handle.read(header["trailer_nbytes"]))
        if hashlib.sha256(trailer_bytes).hexdigest() != header["trailer_sha256"]:
            raise _format_error(path, "trailer checksum mismatch (corrupted bytes)")
        data: bytes | None = None
        if not mmap:
            handle.seek(data_start)
            data = handle.read(data_nbytes)

    if verify is None:
        verify = not mmap

    mapped: np.memmap | None = None
    if mmap:
        mapped = np.memmap(path, dtype=np.uint8, mode="r")
        section = mapped[data_start:trailer_start]
        if verify:
            digest = hashlib.sha256(section).hexdigest()
            if digest != header["buffer_sha256"]:
                raise _format_error(
                    path, "data-section checksum mismatch (corrupted bytes)"
                )
    else:
        assert data is not None
        if verify and hashlib.sha256(data).hexdigest() != header["buffer_sha256"]:
            raise _format_error(
                path, "data-section checksum mismatch (corrupted bytes)"
            )

    columns: dict[str, np.ndarray] = {}
    for entry in header["arrays"]:
        try:
            dtype = np.dtype(entry["dtype"])
            start, nbytes = int(entry["offset"]), int(entry["nbytes"])
            if start < 0 or start % ALIGN or start + nbytes > data_nbytes:
                raise _format_error(
                    path, f"array {entry['name']!r} has an out-of-bounds buffer"
                )
            if mapped is not None:
                view = mapped[data_start + start : data_start + start + nbytes]
                array = view.view(dtype).reshape(entry["shape"])
            else:
                array = np.frombuffer(
                    data, dtype=dtype, count=nbytes // dtype.itemsize, offset=start
                )
                array = array.reshape(entry["shape"])
        except (TypeError, ValueError) as exc:
            # A bit flip in the header JSON can corrupt a dtype string or a
            # shape value while the header still parses; numpy's complaint
            # becomes a format error naming the file.
            raise _format_error(
                path, f"malformed array table entry {entry!r} ({exc})"
            ) from exc
        columns[entry["name"]] = array
    missing = [name for name in ARRAY_FIELDS if name not in columns]
    if missing:
        raise _format_error(path, f"header is missing arrays {missing}")

    try:
        trailer = json.loads(trailer_bytes.decode("utf-8"))
        vocab = {str(char): int(code) for char, code in trailer["vocab"].items()}
        metadata = StructureMetadata(**trailer["metadata"])
        report = dict(trailer.get("report", {}))
    except (ValueError, KeyError, TypeError) as exc:
        raise _format_error(path, f"trailer is malformed ({exc})") from exc

    return CompiledTrie(
        counts=columns["counts"],
        depths=columns["depths"],
        parents=columns["parents"],
        parent_codes=columns["parent_codes"],
        child_start=columns["child_start"],
        child_end=columns["child_end"],
        edge_keys=columns["edge_keys"],
        edge_labels=columns["edge_labels"],
        edge_targets=columns["edge_targets"],
        vocab=vocab,
        metadata=metadata,
        report=report,
        cache_size=cache_size,
    )
