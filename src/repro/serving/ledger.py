"""Cumulative privacy accounting across multiple releases of one database.

A single :class:`~repro.core.private_trie.PrivateCountingTrie` can be queried
forever at no extra privacy cost, but every *new release built from the same
database* composes: by simple composition (Lemma 1, implemented in
:mod:`repro.dp.composition`), publishing structures with budgets
``(epsilon_i, delta_i)`` costs ``(sum epsilon_i, sum delta_i)`` in total.

:class:`BudgetLedger` enforces a global cap on that total, per database id.
:func:`build_release` is the guarded entry point the serving layer uses: it
*refuses before touching the data* when the requested budget would exceed
the cap, otherwise builds the structure and records the expenditure.  The
ledger optionally persists itself to JSON so the accounting survives curator
restarts.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.database import StringDatabase
from repro.core.params import ConstructionParams
from repro.core.private_trie import PrivateCountingTrie
from repro.dp.composition import CompositionRecord, PrivacyAccountant, PrivacyBudget
from repro.exceptions import BudgetExceededError, PrivacyParameterError
from repro.serving._fsio import (
    FileLock,
    append_jsonl,
    atomic_write_json,
    file_signature,
    read_jsonl,
)

__all__ = ["BudgetLedger", "build_release"]


class BudgetLedger:
    """Tracks privacy spent per database and refuses over-cap charges.

    Parameters
    ----------
    cap:
        The global ``(epsilon, delta)`` budget no database may exceed across
        all of its releases combined.  When a persisted ledger file records
        a *stricter* cap than the one passed here, the stricter value wins
        component-wise — re-opening a ledger can never silently relax a
        previously configured policy.
    path:
        Optional JSON file the ledger loads on construction and rewrites
        after every charge, so accounting is durable across curator runs.
    audit_path:
        Optional JSON-lines file receiving one append-only record per
        accounting *event* — every successful charge, every refusal, every
        published release version (:meth:`record_release`) — with
        timestamp, curator pid and the running totals at that moment.
        Defaults to ``<path stem>.audit.jsonl`` next to ``path`` when the
        ledger is persistent, and to no audit log for in-memory ledgers.
        The audit log is the *who-did-what-when* trail; ``path`` stays the
        authoritative record of the balances themselves.

    Durability and concurrency
    --------------------------
    The file is rewritten atomically (tmp file + fsync + ``os.replace``)
    after every charge, so a crash mid-write can never truncate or lose
    accounting: readers observe either the pre-charge or the post-charge
    ledger, both complete.  Charges from threads of one process serialize
    on an internal lock; charges from *different* curator processes
    serialize on an advisory ``<path>.lock`` file, and every charge first
    re-reads the file when its on-disk signature changed — so two curators
    sharing one ledger file can no longer both pass the affordability check
    and double-spend the cap.
    """

    def __init__(
        self,
        cap: PrivacyBudget,
        path: str | Path | None = None,
        *,
        audit_path: str | Path | None = None,
    ) -> None:
        self.cap = cap
        self._path = Path(path) if path is not None else None
        if audit_path is not None:
            self._audit_path: Path | None = Path(audit_path)
        elif self._path is not None:
            self._audit_path = self._path.with_name(self._path.stem + ".audit.jsonl")
        else:
            self._audit_path = None
        self._accountants: dict[str, PrivacyAccountant] = {}
        self._epochs: dict[str, list[dict]] = {}
        self._lock = threading.Lock()
        self._file_lock = (
            FileLock(self._path.with_name(self._path.name + ".lock"))
            if self._path is not None
            else None
        )
        self._signature: tuple[int, int] | None = None
        if self._path is not None and self._path.exists():
            with self._file_lock:
                self._load()
                # Persist the *effective* (component-wise min) cap right
                # away: a reopen that tightened the policy must be durable
                # even if this process never charges anything.
                if self._loaded_cap != (self.cap.epsilon, self.cap.delta):
                    self._save()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def spent(self, database_id: str) -> PrivacyBudget:
        """Composed budget of everything charged to ``database_id`` so far."""
        with self._lock:
            self._refresh_if_stale()
            return self._accountant(database_id).total()

    def remaining(self, database_id: str) -> tuple[float, float]:
        """``(epsilon, delta)`` still available under the cap (clamped at 0)."""
        with self._lock:
            self._refresh_if_stale()
            accountant = self._accountant(database_id)
            return (
                max(0.0, self.cap.epsilon - accountant.total_epsilon),
                max(0.0, self.cap.delta - accountant.total_delta),
            )

    def can_afford(self, database_id: str, budget: PrivacyBudget) -> bool:
        """Would charging ``budget`` stay within the cap?"""
        with self._lock:
            self._refresh_if_stale()
            return self._can_afford(database_id, budget)

    def _can_afford(self, database_id: str, budget: PrivacyBudget) -> bool:
        return self._can_afford_raw(database_id, budget.epsilon, budget.delta)

    def _can_afford_raw(self, database_id: str, epsilon: float, delta: float) -> bool:
        """Affordability over raw floats — epoch charges may be exactly zero
        (non-power-of-two epochs of the tree schedule), which
        :class:`PrivacyBudget` cannot represent."""
        accountant = self._accountant(database_id)
        tolerance = 1e-9
        return (
            accountant.total_epsilon + epsilon <= self.cap.epsilon + tolerance
            and accountant.total_delta + delta <= self.cap.delta + tolerance
        )

    def charge(
        self, database_id: str, budget: PrivacyBudget, label: str = "release"
    ) -> None:
        """Record an expenditure, or raise :class:`BudgetExceededError`
        without recording anything when it would breach the cap.

        With a persistence path the charge runs as one atomic
        check-spend-save critical section: under the in-process lock *and*
        the advisory file lock, against freshly re-read accounting whenever
        another process changed the file since we last saw it.
        """
        with self._lock:
            if self._file_lock is None:
                self._charge_locked(database_id, budget, label)
                return
            with self._file_lock:
                self._refresh_if_stale()
                self._charge_locked(database_id, budget, label)

    def _charge_locked(
        self, database_id: str, budget: PrivacyBudget, label: str
    ) -> None:
        if not self._can_afford(database_id, budget):
            accountant = self._accountant(database_id)
            self._audit("refusal", database_id, label=label, budget=budget)
            raise BudgetExceededError(
                f"charging ({budget.epsilon:g}, {budget.delta:g}) to "
                f"{database_id!r} would exceed the global cap "
                f"({self.cap.epsilon:g}, {self.cap.delta:g}); already spent "
                f"({accountant.total_epsilon:g}, {accountant.total_delta:g})",
                requested=(budget.epsilon, budget.delta),
                spent=(accountant.total_epsilon, accountant.total_delta),
                cap=(self.cap.epsilon, self.cap.delta),
            )
        self._accountant(database_id).spend(label, budget.epsilon, budget.delta)
        # Audit before the balance save: if the curator dies between the
        # two, the trail shows a charge the ledger never booked (a visible,
        # privacy-safe over-report), never a booked charge with no trail.
        self._audit("charge", database_id, label=label, budget=budget)
        self._save()

    def entries(self, database_id: str | None = None) -> list[tuple[str, CompositionRecord]]:
        """``(database_id, record)`` pairs, optionally for one database."""
        with self._lock:
            self._refresh_if_stale()
            return self._entries(database_id)

    # ------------------------------------------------------------------
    # Epoch accounting (continual release)
    # ------------------------------------------------------------------
    def charge_epoch(
        self,
        database_id: str,
        epoch: int,
        epsilon: float,
        delta: float = 0.0,
        *,
        label: str = "epoch",
    ) -> None:
        """Record one epoch's *marginal* charge under a continual-release
        schedule (see :class:`repro.dp.ContinualAccountant`).

        Unlike :meth:`charge`, the amounts are raw floats because the tree
        schedule's marginal is exactly zero at non-power-of-two epochs —
        those epochs still get a durable ledger entry and an audit record,
        so the trail shows every release, not just the charged ones.
        Epochs must arrive in order (1, 2, 3, ...) per database; the charge
        runs under the same in-process + advisory-file locking and
        atomic-save discipline as :meth:`charge`, so a crash mid-epoch can
        never lose or double-book accounting.
        """
        with self._lock:
            if self._file_lock is None:
                self._charge_epoch_locked(database_id, epoch, epsilon, delta, label)
                return
            with self._file_lock:
                self._refresh_if_stale()
                self._charge_epoch_locked(database_id, epoch, epsilon, delta, label)

    def _charge_epoch_locked(
        self, database_id: str, epoch: int, epsilon: float, delta: float, label: str
    ) -> None:
        if epsilon < 0 or delta < 0:
            raise PrivacyParameterError("cannot charge a negative epoch budget")
        recorded = self._epochs.setdefault(database_id, [])
        expected = len(recorded) + 1
        if epoch != expected:
            raise PrivacyParameterError(
                f"epochs must be charged in order for {database_id!r}: "
                f"expected epoch {expected}, got {epoch}"
            )
        detail = {"epoch": epoch, "epsilon": epsilon, "delta": delta}
        if not self._can_afford_raw(database_id, epsilon, delta):
            accountant = self._accountant(database_id)
            self._audit("refusal", database_id, label=label, extra=detail)
            raise BudgetExceededError(
                f"charging epoch {epoch} ({epsilon:g}, {delta:g}) to "
                f"{database_id!r} would exceed the global cap "
                f"({self.cap.epsilon:g}, {self.cap.delta:g}); already spent "
                f"({accountant.total_epsilon:g}, {accountant.total_delta:g})",
                requested=(epsilon, delta),
                spent=(accountant.total_epsilon, accountant.total_delta),
                cap=(self.cap.epsilon, self.cap.delta),
            )
        self._accountant(database_id).spend(label, epsilon, delta)
        recorded.append({**detail, "label": label})
        # Same invariant as charge(): audit before the balance save, so a
        # crash in between over-reports (a charge with no booked balance)
        # instead of under-reporting.
        self._audit("charge_epoch", database_id, label=label, extra=detail)
        self._save()

    def epoch_entries(self, database_id: str | None = None) -> list[dict]:
        """The durable per-epoch records, in charge order.

        Each entry carries ``epoch``, ``epsilon``, ``delta`` and ``label``;
        with ``database_id=None`` every database's entries are returned with
        a ``database_id`` key added.
        """
        with self._lock:
            self._refresh_if_stale()
            if database_id is not None:
                return [dict(entry) for entry in self._epochs.get(database_id, [])]
            return [
                {"database_id": name, **entry}
                for name in sorted(self._epochs)
                for entry in self._epochs[name]
            ]

    def next_epoch(self, database_id: str) -> int:
        """The epoch number the next :meth:`charge_epoch` must carry —
        how a restarted scheduler resumes a persisted schedule."""
        with self._lock:
            self._refresh_if_stale()
            return len(self._epochs.get(database_id, ())) + 1

    def _entries(
        self, database_id: str | None = None
    ) -> list[tuple[str, CompositionRecord]]:
        names = [database_id] if database_id is not None else sorted(self._accountants)
        return [
            (name, record)
            for name in names
            for record in self._accountant(name).records
        ]

    # ------------------------------------------------------------------
    # Audit trail
    # ------------------------------------------------------------------
    @property
    def audit_path(self) -> Path | None:
        """Where the JSONL audit trail is written (``None`` = no trail)."""
        return self._audit_path

    def _audit(
        self,
        event: str,
        database_id: str,
        *,
        label: str | None = None,
        budget: PrivacyBudget | None = None,
        extra: dict | None = None,
    ) -> None:
        """Append one audit record; called with the ledger lock held."""
        if self._audit_path is None:
            return
        accountant = self._accountant(database_id)
        record: dict = {
            "ts": time.time(),
            "pid": os.getpid(),
            "event": event,
            "database_id": database_id,
            "spent_epsilon": accountant.total_epsilon,
            "spent_delta": accountant.total_delta,
            "cap_epsilon": self.cap.epsilon,
            "cap_delta": self.cap.delta,
        }
        if label is not None:
            record["label"] = label
        if budget is not None:
            record["epsilon"] = budget.epsilon
            record["delta"] = budget.delta
        if extra:
            record.update(extra)
        append_jsonl(self._audit_path, record)

    def record_release(
        self,
        database_id: str,
        *,
        version: int,
        digest: str,
        label: str = "release",
        format: str | None = None,
    ) -> None:
        """Audit that a built structure was actually *published*.

        A ``charge`` records budget leaving the cap; this records the
        artifact it paid for — the store version, content digest and (when
        known) payload format — so the trail links every expenditure to a
        verifiable release artifact.
        """
        extra: dict = {"version": version, "digest": digest}
        if format is not None:
            extra["format"] = format
        with self._lock:
            self._audit(
                "release",
                database_id,
                label=label,
                extra=extra,
            )

    def audit_entries(self, database_id: str | None = None) -> list[dict]:
        """The surviving audit records, oldest first (malformed lines are
        skipped — see :func:`repro.serving._fsio.read_jsonl`)."""
        if self._audit_path is None:
            return []
        records = read_jsonl(self._audit_path)
        if database_id is not None:
            records = [r for r in records if r.get("database_id") == database_id]
        return records

    def database_ids(self) -> list[str]:
        with self._lock:
            self._refresh_if_stale()
            return sorted(self._accountants)

    def summary(self) -> str:
        """Human-readable per-database accounting breakdown."""
        with self._lock:
            self._refresh_if_stale()
            lines = [f"cap: epsilon={self.cap.epsilon:g}, delta={self.cap.delta:g}"]
            for name in sorted(self._accountants):
                lines.append(f"database {name!r}:")
                lines.append(self._accountant(name).summary())
            return "\n".join(lines)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _accountant(self, database_id: str) -> PrivacyAccountant:
        return self._accountants.setdefault(database_id, PrivacyAccountant())

    def _refresh_if_stale(self) -> None:
        """Re-read the ledger file when another process replaced it.

        Every mutation goes through :meth:`_save`, so an *existing* file is
        always a superset of what this process wrote; dropping the
        in-memory state and reloading can only *add* other curators'
        charges.  A *vanished* file is the opposite case — memory is then
        the only copy of the accounting — so it is kept (and re-persisted
        by the next charge) rather than forgotten, which would let a
        curator double-spend against an empty ledger.
        """
        if self._path is None:
            return
        signature = file_signature(self._path)
        if signature == self._signature:
            return
        if signature is None:
            self._signature = None
            return
        self._accountants = {}
        self._epochs = {}
        self._load()

    def _save(self) -> None:
        if self._path is None:
            return
        cap = (self.cap.epsilon, self.cap.delta)
        payload = {
            "cap": {"epsilon": cap[0], "delta": cap[1]},
            "entries": [
                {
                    "database_id": name,
                    "label": record.label,
                    "epsilon": record.epsilon,
                    "delta": record.delta,
                }
                for name, record in self._entries()
            ],
        }
        if self._epochs:
            # Continual-release schedules persist their per-epoch records too
            # (absent for single-shot ledgers, so pre-epoch files keep their
            # exact shape).
            payload["epochs"] = {
                name: [dict(entry) for entry in entries]
                for name, entries in sorted(self._epochs.items())
                if entries
            }
        # Atomic + fsynced: a crash mid-save leaves the previous complete
        # ledger in place — privacy accounting is never lost or truncated.
        atomic_write_json(self._path, payload, indent=2)
        self._signature = file_signature(self._path)
        self._loaded_cap = cap

    def _load(self) -> None:
        signature = file_signature(self._path)
        payload = json.loads(self._path.read_text())
        stored_cap = payload.get("cap")
        self._loaded_cap = (
            (stored_cap["epsilon"], stored_cap["delta"])
            if stored_cap is not None
            else None
        )
        if stored_cap is not None:
            # Never let a default-capped reopen weaken the recorded policy.
            self.cap = PrivacyBudget(
                min(self.cap.epsilon, stored_cap["epsilon"]),
                min(self.cap.delta, stored_cap["delta"]),
            )
        for entry in payload.get("entries", []):
            self._accountant(entry["database_id"]).spend(
                entry["label"], entry["epsilon"], entry["delta"]
            )
        for name, entries in payload.get("epochs", {}).items():
            self._epochs[name] = [dict(entry) for entry in entries]
        self._signature = signature


def build_release(
    database: StringDatabase,
    params: ConstructionParams,
    *,
    ledger: BudgetLedger,
    database_id: str,
    label: str = "release",
    rng: np.random.Generator | None = None,
    kind: str = "heavy-path",
    registry=None,
    builder: Callable[..., PrivateCountingTrie] | None = None,
    store=None,
    release_name: str | None = None,
    release_format: str | None = None,
    **build_kwargs,
) -> PrivateCountingTrie:
    """Build a private structure only if the ledger authorizes its budget.

    The construction is dispatched through the :mod:`repro.api` structure
    registry: ``kind`` names any registered structure kind and
    ``build_kwargs`` are forwarded to its builder (e.g. ``q=4`` for the
    q-gram kinds), so every kind — including ones registered by downstream
    scenarios — gets ledger-guarded releases.  ``builder`` bypasses the
    registry with an explicit callable (kept for ablations and older
    callers).

    The affordability check runs *before* the construction, so a refused
    build never touches the sensitive database; the charge is recorded only
    after the construction succeeds (an aborted construction that released
    nothing costs nothing under the paper's fail semantics, whose abort
    decision is itself privately computed).

    When ``store`` (a :class:`repro.serving.ReleaseStore`) is given, the
    built structure is additionally saved as the next version of
    ``release_name`` (default: ``database_id``) in ``release_format``
    (``"json"`` / ``"binary"`` / ``None`` for the store default) and the
    publication — version, digest *and* payload format — is audited via
    :meth:`BudgetLedger.record_release`, so build + persist + audit is one
    atomic-enough step for CLI and api callers.
    """
    budget = params.budget
    if not ledger.can_afford(database_id, budget):
        # Re-raise through charge() for the detailed error message.
        ledger.charge(database_id, budget, label)
    if builder is not None:
        structure = builder(database, params, rng=rng, **build_kwargs)
    else:
        if registry is None:
            # Imported lazily: repro.api sits above serving in the layer
            # diagram, so the ledger only reaches for it at call time.
            from repro.api.registry import default_registry

            registry = default_registry()
        structure = registry.build(
            kind, database, params, rng=rng, **build_kwargs
        )
    ledger.charge(database_id, budget, label)
    if store is not None:
        record = store.save(
            release_name or database_id, structure, format=release_format
        )
        ledger.record_release(
            database_id,
            version=record.version,
            digest=record.digest,
            label=label,
            format=record.format,
        )
    return structure
