"""A concurrent JSON query server over compiled private structures.

Because every query against a released structure is post-processing, the
server can answer arbitrary traffic — any number of clients, any patterns,
any mining thresholds — with zero privacy accounting.  The implementation is
stdlib-only (:mod:`http.server` with :class:`ThreadingHTTPServer`):

* ``GET  /healthz``          liveness, uptime, request counters, cache stats
* ``GET  /metrics``          Prometheus text exposition (``?format=json`` for
  the raw registry snapshot) — see docs/OBSERVABILITY.md
* ``GET  /releases``         the served releases and their public metadata
* ``POST /query``            ``{"pattern": ..., "release": ...}`` -> count
* ``POST /batch``            ``{"patterns": [...]}`` -> vectorized counts
* ``POST /mine``             ``{"threshold": ..., ...}`` -> frequent patterns

Every operational number lives in the service's
:class:`repro.obs.MetricsRegistry` (request counters, per-endpoint latency
histograms, micro-batch flush sizes, per-release cache statistics);
``/healthz`` and ``/metrics`` are two views of that one registry.

Two serving tricks carry the throughput story (benchmarked in
``benchmarks/bench_serving.py``):

1. every release is compiled to a :class:`~repro.serving.compiled.CompiledTrie`
   at load time, so ``/batch`` requests hit the vectorized numpy path; and
2. concurrent single ``/query`` requests are *micro-batched*: a background
   worker eagerly drains the request queue into one vectorized
   ``batch_query`` call, so requests arriving during an in-flight flush
   coalesce into the next batch and heavy single-query traffic rides the
   batch fast path instead of contending on the GIL.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping, Sequence
from urllib.parse import parse_qs, urlparse

from repro import faults
from repro.core.private_trie import PrivateCountingTrie
from repro.exceptions import ReleaseNotFoundError, ReproError
from repro.obs import MetricsRegistry, log_buckets, render_prometheus
from repro.serving.compiled import CompiledTrie
from repro.serving.resilience import DEADLINE_HEADER, Deadline
from repro.serving.store import ReleaseStore

__all__ = [
    "QueryService",
    "MicroBatcher",
    "create_server",
    "serve_forever",
    "install_graceful_shutdown",
]

#: endpoints that carry request counters and latency histograms.
_ENDPOINTS = ("query", "batch", "mine", "healthz")

#: micro-batch flush sizes are small integers; powers of two up to the
#: default ``max_batch`` resolve them exactly enough.
_FLUSH_SIZE_BUCKETS = log_buckets(1.0, 512.0, 2.0)

#: chaos-drill injection site at the entry of every query-serving handler
#: (``/query``, ``/batch``, ``/mine`` — health probes and metric scrapes
#: stay clean so supervision and scraping remain deterministic under chaos).
_FP_HANDLE = faults.failpoint(
    "worker.handle", "Entry of every /query, /batch and /mine HTTP handler."
)


class _PendingQuery:
    """One single-pattern query waiting for a micro-batch flush."""

    __slots__ = ("pattern", "release", "event", "result", "error")

    def __init__(self, pattern: str, release: str) -> None:
        self.pattern = pattern
        self.release = release
        self.event = threading.Event()
        self.result: float = 0.0
        self.error: Exception | None = None


class MicroBatcher:
    """Coalesces concurrent single queries into vectorized batch calls.

    The worker flushes *eagerly*: a lone request is answered immediately
    (no artificial latency floor for sequential clients), while requests
    arriving during an in-flight flush pile up and are drained as one
    batch of up to ``max_batch`` on the next iteration — batching emerges
    from concurrency instead of from a fixed wait.  ``max_wait`` only
    bounds how long the idle worker sleeps between condition checks.
    Singleton flushes take the LRU-cached single-query path, so hot
    patterns under sequential traffic still hit the cache.
    """

    def __init__(
        self,
        service: "QueryService",
        *,
        max_batch: int = 256,
        max_wait: float = 0.002,
    ) -> None:
        self._service = service
        self._max_batch = max_batch
        self._max_wait = max_wait
        self._queue: list[_PendingQuery] = []
        self._condition = threading.Condition()
        self._closed = False
        metrics = service.metrics
        self._flushes = metrics.counter(
            "dpsc_microbatch_flushes_total", "Micro-batch flushes executed."
        )
        self._flushed_requests = metrics.counter(
            "dpsc_microbatch_requests_total",
            "Single queries answered through micro-batch flushes.",
        )
        self._flush_size = metrics.histogram(
            "dpsc_microbatch_flush_size",
            "Requests coalesced per micro-batch flush.",
            buckets=_FLUSH_SIZE_BUCKETS,
        )
        self._worker = threading.Thread(
            target=self._run, name="repro-microbatcher", daemon=True
        )
        self._worker.start()

    @property
    def batches_flushed(self) -> int:
        return int(self._flushes.value)

    @property
    def requests_batched(self) -> int:
        return int(self._flushed_requests.value)

    def submit(self, pattern: str, release: str) -> float:
        """Enqueue one query and block until its batch is answered."""
        pending = _PendingQuery(pattern, release)
        with self._condition:
            if self._closed:
                raise ReproError("micro-batcher is closed")
            self._queue.append(pending)
            self._condition.notify()
        pending.event.wait()
        if pending.error is not None:
            raise pending.error
        return pending.result

    def close(self) -> None:
        with self._condition:
            self._closed = True
            self._condition.notify_all()
        self._worker.join(timeout=1.0)

    def _run(self) -> None:
        while True:
            with self._condition:
                while not self._queue and not self._closed:
                    self._condition.wait(timeout=self._max_wait)
                if self._closed and not self._queue:
                    return
                batch = self._queue[: self._max_batch]
                del self._queue[: len(batch)]
            if batch:
                self._flush(batch)

    def _flush(self, batch: list[_PendingQuery]) -> None:
        self._flushes.inc()
        self._flushed_requests.inc(len(batch))
        self._flush_size.observe(float(len(batch)))
        by_release: dict[str, list[_PendingQuery]] = {}
        for pending in batch:
            by_release.setdefault(pending.release, []).append(pending)
        for release, group in by_release.items():
            try:
                if len(group) == 1:
                    # The cached array walk: sequential hot patterns keep
                    # benefiting from the LRU even with batching enabled.
                    group[0].result = float(
                        self._service.release(release).query(group[0].pattern)
                    )
                else:
                    # The *uncounted* batch path: these requests were
                    # already counted as single queries in num_queries, so
                    # routing the flush through the public batch() would
                    # misreport them as /batch traffic in /healthz.
                    counts = self._service.release(release).batch_query(
                        [pending.pattern for pending in group]
                    )
                    for pending, count in zip(group, counts):
                        pending.result = float(count)
            except Exception as error:  # propagate to every waiter
                for pending in group:
                    pending.error = error
            finally:
                for pending in group:
                    pending.event.set()


class QueryService:
    """Routes queries to named compiled releases; the HTTP layer and the CLI
    both delegate here, so the logic is testable without sockets."""

    def __init__(
        self,
        releases: Mapping[str, CompiledTrie | PrivateCountingTrie],
        *,
        default_release: str | None = None,
        micro_batch: bool = True,
        max_batch: int = 256,
        max_wait: float = 0.002,
    ) -> None:
        if not releases:
            raise ReproError("a query service needs at least one release")
        self._releases: dict[str, CompiledTrie] = {
            name: (
                release
                if isinstance(release, CompiledTrie)
                else CompiledTrie.from_structure(release)
            )
            for name, release in releases.items()
        }
        if default_release is None:
            default_release = sorted(self._releases)[0]
        if default_release not in self._releases:
            raise ReleaseNotFoundError(
                f"default release {default_release!r} is not served"
            )
        self.default_release = default_release
        self.started_at = time.time()
        #: single source of truth for every operational number; ``/healthz``
        #: and ``/metrics`` both read from here.  Counters and gauges update
        #: even when telemetry is globally disabled, so the health payload
        #: keeps its semantics either way.
        self.metrics = MetricsRegistry()
        self._requests = {
            endpoint: self.metrics.counter(
                "dpsc_requests_total",
                "Requests served, by endpoint.",
                {"endpoint": endpoint},
            )
            for endpoint in _ENDPOINTS
        }
        self._latency = {
            endpoint: self.metrics.histogram(
                "dpsc_request_seconds",
                "Request latency in seconds, by endpoint.",
                {"endpoint": endpoint},
            )
            for endpoint in _ENDPOINTS
        }
        self._batch_patterns = self.metrics.counter(
            "dpsc_batch_patterns_total",
            "Patterns answered across all /batch requests.",
        )
        self._deadline_exceeded = self.metrics.counter(
            "dpsc_deadline_exceeded_total",
            "Requests refused with 504 because their X-DPSC-Deadline had "
            "already expired on arrival.",
        )
        self.metrics.gauge(
            "dpsc_uptime_seconds", "Seconds since the service started."
        ).set_function(lambda: time.time() - self.started_at)
        for name, compiled in sorted(self._releases.items()):
            for field_name in ("hits", "misses", "size"):
                self.metrics.gauge(
                    "dpsc_compiled_cache_" + field_name,
                    f"CompiledTrie single-query LRU cache {field_name}.",
                    {"release": name},
                ).set_function(
                    lambda c=compiled, f=field_name: getattr(c.cache_info(), f)
                )
        self._batcher = (
            MicroBatcher(self, max_batch=max_batch, max_wait=max_wait)
            if micro_batch
            else None
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def release(self, name: str | None = None) -> CompiledTrie:
        resolved = name or self.default_release
        try:
            return self._releases[resolved]
        except KeyError:
            raise ReleaseNotFoundError(
                f"release {resolved!r} is not served "
                f"(serving: {sorted(self._releases)})"
            ) from None

    def query(self, pattern: str, release: str | None = None) -> float:
        """One pattern's noisy count, via the micro-batcher when enabled."""
        self._requests["query"].inc()
        with self._latency["query"].time():
            if self._batcher is not None:
                return self._batcher.submit(
                    pattern, release or self.default_release
                )
            return self.release(release).query(pattern)

    def batch(self, patterns: Sequence[str], release: str | None = None) -> list[float]:
        """Vectorized noisy counts for many patterns at once."""
        self._requests["batch"].inc()
        self._batch_patterns.inc(len(patterns))
        with self._latency["batch"].time():
            return [float(c) for c in self.release(release).batch_query(patterns)]

    def mine(
        self,
        threshold: float,
        release: str | None = None,
        *,
        min_length: int = 1,
        max_length: int | None = None,
        exact_length: int | None = None,
    ) -> list[tuple[str, float]]:
        self._requests["mine"].inc()
        with self._latency["mine"].time():
            return self.release(release).mine(
                threshold,
                min_length=min_length,
                max_length=max_length,
                exact_length=exact_length,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def releases_info(self) -> list[dict]:
        infos = []
        for name in sorted(self._releases):
            compiled = self._releases[name]
            metadata = compiled.metadata
            infos.append(
                {
                    "name": name,
                    "default": name == self.default_release,
                    "epsilon": metadata.epsilon,
                    "delta": metadata.delta,
                    "error_bound": metadata.error_bound,
                    "construction": metadata.construction,
                    "num_nodes": compiled.num_nodes,
                    "num_patterns": compiled.num_stored_patterns,
                    "compiled_bytes": compiled.nbytes,
                }
            )
        return infos

    # ------------------------------------------------------------------
    # Counter views (kept as attributes-in-spirit for tests and loadtest)
    # ------------------------------------------------------------------
    @property
    def num_queries(self) -> int:
        return int(self._requests["query"].value)

    @property
    def num_batches(self) -> int:
        return int(self._requests["batch"].value)

    @property
    def num_batch_patterns(self) -> int:
        return int(self._batch_patterns.value)

    @property
    def num_mines(self) -> int:
        return int(self._requests["mine"].value)

    @property
    def num_deadline_exceeded(self) -> int:
        return int(self._deadline_exceeded.value)

    def note_deadline_exceeded(self) -> None:
        self._deadline_exceeded.inc()

    def health(self) -> dict:
        self._requests["healthz"].inc()
        with self._latency["healthz"].time():
            cache = {
                name: compiled.cache_info().__dict__
                for name, compiled in self._releases.items()
            }
            # Each counter is individually exact (per-metric locks); the
            # payload is no longer one atomic cross-counter snapshot, which
            # is fine for the consumers we have — the load test checks the
            # deltas at quiescence, and monitoring tolerates a batch
            # observed a beat before its patterns.
            payload = {
                "status": "ok",
                "uptime_seconds": time.time() - self.started_at,
                "releases": sorted(self._releases),
                "default_release": self.default_release,
                "queries": self.num_queries,
                "batches": self.num_batches,
                "batch_patterns": self.num_batch_patterns,
                "mines": self.num_mines,
                "cache": cache,
            }
            if self._batcher is not None:
                payload["micro_batches_flushed"] = self._batcher.batches_flushed
                payload["micro_batched_requests"] = self._batcher.requests_batched
            return payload

    def close(self) -> None:
        if self._batcher is not None:
            self._batcher.close()
            self._batcher = None

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_store(
        cls,
        store: ReleaseStore,
        names: Sequence[str] | None = None,
        *,
        mmap: bool = True,
        versions: Mapping[str, int] | None = None,
        **kwargs,
    ) -> "QueryService":
        """Serve the pinned-or-latest version of each named release (all
        releases in the store when ``names`` is omitted).

        Loads go through :meth:`ReleaseStore.load_compiled`: binary
        (``.dpsb``) versions are mapped zero-copy — cold start is O(header)
        and concurrent server processes share one page-cache copy — while
        JSON versions are parsed and compiled as before.  ``mmap=False``
        forces private in-memory copies of binary payloads.  ``versions``
        pins an explicit version per name — how the cluster tier makes
        every worker of one generation serve the *same* snapshot even
        while a curator publishes new versions underneath.
        """
        selected = list(names) if names else sorted(versions) if versions else store.names()
        if not selected:
            raise ReleaseNotFoundError(f"store {store.root} holds no releases")
        releases = {
            name: store.load_compiled(
                name, versions.get(name) if versions else None, mmap=mmap
            )
            for name in selected
        }
        return cls(releases, **kwargs)


def _is_int(value: object) -> bool:
    """True for JSON integers only (bool is an int subclass in Python —
    ``true`` is not a length)."""
    return isinstance(value, int) and not isinstance(value, bool)


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON shim over the server's :class:`QueryService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-dpsc"
    #: headers and body go out as separate writes; on a keep-alive
    #: connection Nagle holds the second until the peer's delayed ACK
    #: (~40ms), which would dwarf every sub-ms query.
    disable_nagle_algorithm = True

    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - BaseHTTPRequestHandler API
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _respond(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, message: str, status: int) -> None:
        self._respond({"error": message}, status=status)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        if not length:
            return {}
        return json.loads(self.rfile.read(length).decode("utf-8"))

    def _refuse_or_inject(self) -> bool:
        """Deadline refusal + the ``worker.handle`` failpoint; ``True`` when
        the request was already answered (or the connection dropped).

        Called with the request body consumed, so an error response leaves
        the keep-alive connection in sync.  An expired ``X-DPSC-Deadline``
        means nobody is waiting for the answer anymore — refuse with 504
        instead of burning worker time (the client's retry, if any budget
        remains, carries a fresh deadline).
        """
        deadline = Deadline.from_header(self.headers.get(DEADLINE_HEADER))
        if deadline is not None and deadline.expired():
            self.service.note_deadline_exceeded()
            self._error("deadline expired before the server began handling", 504)
            return True
        try:
            _FP_HANDLE.hit()
        except faults.FaultDropConnection:
            # no response at all: the peer sees the socket close mid-request
            self.close_connection = True
            return True
        except faults.FaultInjected as fault:
            self._error(str(fault), 500)
            return True
        return False

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/healthz":
                self._respond(self.service.health())
            elif parsed.path == "/metrics":
                # Scrape traffic is not request traffic: /metrics reads the
                # registry without touching the request counters.
                query = parse_qs(parsed.query)
                if query.get("format", [""])[0] == "json":
                    self._respond(self.service.metrics.snapshot())
                else:
                    body = render_prometheus(self.service.metrics).encode("utf-8")
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                    )
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
            elif parsed.path == "/releases":
                self._respond({"releases": self.service.releases_info()})
            elif parsed.path == "/query":
                if self._refuse_or_inject():
                    return
                query = parse_qs(parsed.query)
                pattern = query.get("pattern", [""])[0]
                release = query.get("release", [None])[0]
                self._respond(
                    {
                        "pattern": pattern,
                        "release": release or self.service.default_release,
                        "count": self.service.query(pattern, release),
                    }
                )
            else:
                self._error(f"unknown path {parsed.path!r}", 404)
        except ReleaseNotFoundError as error:
            self._error(str(error), 404)
        except ReproError as error:
            self._error(str(error), 400)
        except Exception as error:  # noqa: BLE001 - JSON 500, not a raw traceback
            self._error(f"internal error: {error}", 500)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        try:
            payload = self._read_json()
        except (ValueError, UnicodeDecodeError):
            self._error("request body is not valid JSON", 400)
            return
        if not isinstance(payload, dict):
            # Valid JSON but not an object (e.g. a bare list or string)
            # must be a JSON 400 too, not an unhandled AttributeError.
            self._error("request body must be a JSON object", 400)
            return
        if self._refuse_or_inject():
            return
        release = payload.get("release")
        try:
            if self.path == "/query":
                pattern = payload.get("pattern")
                if not isinstance(pattern, str):
                    self._error("'pattern' must be a string", 400)
                    return
                self._respond(
                    {
                        "pattern": pattern,
                        "release": release or self.service.default_release,
                        "count": self.service.query(pattern, release),
                    }
                )
            elif self.path == "/batch":
                patterns = payload.get("patterns")
                if not isinstance(patterns, list) or not all(
                    isinstance(p, str) for p in patterns
                ):
                    self._error("'patterns' must be a list of strings", 400)
                    return
                self._respond(
                    {
                        "release": release or self.service.default_release,
                        "counts": self.service.batch(patterns, release),
                    }
                )
            elif self.path == "/mine":
                threshold = payload.get("threshold")
                if not isinstance(threshold, (int, float)) or isinstance(
                    threshold, bool
                ):
                    self._error("'threshold' must be a number", 400)
                    return
                min_length = payload.get("min_length", 1)
                if not _is_int(min_length):
                    self._error("'min_length' must be an integer", 400)
                    return
                max_length = payload.get("max_length")
                if max_length is not None and not _is_int(max_length):
                    self._error("'max_length' must be an integer or null", 400)
                    return
                exact_length = payload.get("exact_length")
                if exact_length is not None and not _is_int(exact_length):
                    self._error("'exact_length' must be an integer or null", 400)
                    return
                patterns = self.service.mine(
                    float(threshold),
                    release,
                    min_length=int(min_length),
                    max_length=None if max_length is None else int(max_length),
                    exact_length=None if exact_length is None else int(exact_length),
                )
                self._respond(
                    {
                        "release": release or self.service.default_release,
                        "threshold": float(threshold),
                        "patterns": [[p, c] for p, c in patterns],
                    }
                )
            else:
                self._error(f"unknown path {self.path!r}", 404)
        except ReleaseNotFoundError as error:
            self._error(str(error), 404)
        except ReproError as error:
            self._error(str(error), 400)
        except Exception as error:  # noqa: BLE001 - JSON 500, not a raw traceback
            self._error(f"internal error: {error}", 500)


def create_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-run threading HTTP server bound to ``host:port`` (port 0
    picks a free port; read it back from ``server.server_address``)."""
    server = ThreadingHTTPServer((host, port), _Handler)
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server


def install_graceful_shutdown(
    drain: Callable[[], None],
    signals: Sequence[int] = (signal.SIGTERM, signal.SIGINT),
) -> Callable[[], None]:
    """Install SIGTERM/SIGINT handlers that call ``drain`` exactly once.

    ``drain`` must be fast and signal-safe — the convention here is to hand
    the actual draining to a daemon thread (``server.shutdown()`` blocks
    until ``serve_forever`` exits, which must not happen inside the signal
    handler running on the serving thread).  Returns a restore function
    that reinstates the previous handlers; a no-op pair outside the main
    thread, where CPython refuses ``signal.signal`` (tests, embedded use).
    """
    if threading.current_thread() is not threading.main_thread():
        return lambda: None
    fired = threading.Event()

    def handler(signum, frame):  # noqa: ARG001 - signal API
        if not fired.is_set():  # repeated signals must not re-drain
            fired.set()
            threading.Thread(
                target=drain, name="repro-graceful-drain", daemon=True
            ).start()

    previous = [(number, signal.getsignal(number)) for number in signals]
    for number in signals:
        signal.signal(number, handler)

    def restore() -> None:
        for number, old in previous:
            signal.signal(number, old)

    return restore


def serve_forever(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    verbose: bool = True,
) -> None:  # pragma: no cover - blocking entry point exercised via the CLI
    """Serve until SIGTERM/SIGINT (or KeyboardInterrupt), then drain.

    The drain order is the graceful-shutdown contract the cluster tier
    reuses: stop accepting (``shutdown``), join the in-flight handler
    threads (``server_close`` — ``block_on_close`` holds them), then flush
    the micro-batcher (``service.close`` drains its queue before joining
    the worker).  In-flight requests complete; only new connections are
    refused.
    """
    server = create_server(service, host, port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"dpsc serving {sorted(service.releases_info(), key=lambda r: r['name'])}")
    print(f"listening on http://{bound_host}:{bound_port}")
    restore = install_graceful_shutdown(server.shutdown)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        restore()
        server.shutdown()
        server.server_close()
        service.close()
