"""Crash-safe, multi-process-safe file primitives for the serving layer.

The ledger and the release store both persist read-modify-write state
(privacy accounting, the version index) as whole JSON files.  Two failure
modes are unacceptable for a DP curator:

* a crash mid-write truncating ``ledger.json`` — *losing* privacy
  accounting is the one failure a curator must never have; and
* two curator processes interleaving read-modify-write cycles and silently
  clobbering each other's releases or double-spending budget.

This module provides the shared building blocks both use:

:func:`atomic_write_text`
    tmp file in the same directory + flush + ``os.fsync`` + ``os.replace``,
    so a reader (or a crash at any instant) observes either the complete old
    contents or the complete new contents, never a prefix.
:class:`FileLock`
    an advisory, blocking, inter-process lock on a sidecar ``*.lock`` file
    (``fcntl.flock`` where available; a no-op elsewhere — documented in
    ``docs/SERVING.md``).  Reentrant within a thread is *not* supported;
    callers hold it only across one read-modify-write cycle.
:func:`file_signature`
    a cheap ``(mtime_ns, size)`` fingerprint used for stale-state detection:
    a process re-reads its cached JSON state whenever the on-disk signature
    no longer matches the one recorded at the last load/save.
:func:`append_jsonl` / :func:`read_jsonl`
    an append-only JSON-lines log (the ledger's budget audit trail):
    ``O_APPEND`` writes are atomic between processes for these short
    records, each append is fsynced, a torn final line from a crash is
    repaired by starting the next record on a fresh line, and the reader
    skips any malformed line instead of failing the whole log.
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path

from repro import faults

try:  # POSIX advisory locking; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "atomic_write_text",
    "atomic_write_bytes",
    "file_signature",
    "FileLock",
    "atomic_write_json",
    "append_jsonl",
    "read_jsonl",
]

#: distinguishes concurrent in-process writers (pid alone would collide on
#: platforms where FileLock is a no-op); next() is atomic under the GIL.
_tmp_counter = itertools.count()

#: chaos-drill injection sites: both fire *before* any byte is written, so
#: an injected OSError exercises exactly the crash window the atomic
#: write/append discipline already defends (nothing partial ever lands).
_FP_WRITE = faults.failpoint(
    "fsio.write", "Entry of every atomic write (text, bytes or JSON)."
)
_FP_APPEND = faults.failpoint(
    "fsio.append", "Entry of every durable JSONL append (audit trails)."
)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically and durably.

    The bytes go to a temporary file in the same directory (same filesystem,
    so ``os.replace`` is atomic), are fsynced, and only then renamed over
    ``path``.  A crash at any point leaves either the previous complete file
    or the new complete file — never a truncated hybrid.  The directory is
    fsynced best-effort afterwards so the rename itself survives power loss.
    """
    _FP_WRITE.hit()
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}.{next(_tmp_counter)}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)


def atomic_write_bytes(path: str | Path, chunks: "bytes | list[bytes]") -> None:
    """Write raw bytes to ``path`` atomically and durably.

    The binary-payload counterpart of :func:`atomic_write_text` (same tmp
    file + fsync + ``os.replace`` discipline, same crash guarantee).
    ``chunks`` may be one ``bytes`` object or a list written in order, so a
    large columnar payload never has to be concatenated in memory first.
    """
    _FP_WRITE.hit()
    path = Path(path)
    if isinstance(chunks, (bytes, bytearray, memoryview)):
        chunks = [bytes(chunks)]
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}.{next(_tmp_counter)}")
    try:
        with open(tmp, "wb") as handle:
            for chunk in chunks:
                handle.write(chunk)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)


def atomic_write_json(path: str | Path, payload: object, **dumps_kwargs) -> None:
    """:func:`atomic_write_text` of ``json.dumps(payload, **dumps_kwargs)``."""
    atomic_write_text(path, json.dumps(payload, **dumps_kwargs))


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory (so renames within it are durable)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def append_jsonl(path: str | Path, payload: object) -> None:
    """Append one JSON record to ``path`` as a line, durably.

    The write goes through a single ``O_APPEND`` ``write`` call (atomic
    with respect to other appenders for records this small) followed by an
    ``fsync``.  If the file's last byte is not a newline — a previous
    appender crashed mid-write — the new record starts on a fresh line, so
    one torn record never corrupts its successors.
    """
    _FP_APPEND.hit()
    path = Path(path)
    line = json.dumps(payload, separators=(",", ":"))
    if "\n" in line:  # pragma: no cover - json.dumps never emits newlines
        raise ValueError("JSONL records must serialize to a single line")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        prefix = b""
        size = os.fstat(fd).st_size
        if size:
            with open(path, "rb") as handle:
                handle.seek(size - 1)
                if handle.read(1) != b"\n":
                    prefix = b"\n"
        os.write(fd, prefix + line.encode("utf-8") + b"\n")
        os.fsync(fd)
    finally:
        os.close(fd)


def read_jsonl(path: str | Path) -> list[dict]:
    """Every well-formed JSON-object line of ``path`` (missing file -> []).

    Malformed lines — a record torn by a crash, a partially flushed tail —
    are skipped rather than raised: the log is an audit trail, and the
    records that *did* survive must stay readable.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except FileNotFoundError:
        return []
    records = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def file_signature(path: str | Path) -> tuple[int, int] | None:
    """``(mtime_ns, size)`` of ``path``, or ``None`` when it does not exist.

    Two signatures comparing unequal means the file changed on disk since
    the signature was recorded (atomic replaces always bump ``mtime_ns`` of
    the new inode); callers treat that as "my cached state is stale".
    """
    try:
        stat = os.stat(path)
    except FileNotFoundError:
        return None
    return (stat.st_mtime_ns, stat.st_size)


class FileLock:
    """A blocking, advisory, inter-process file lock (context manager).

    Locks a dedicated sidecar file (never the data file itself, which is
    atomically *replaced* and would drop the lock with the old inode).  On
    platforms without ``fcntl`` the lock degrades to a no-op — single-process
    curators stay correct there via the in-process locks; see the
    "Concurrency & durability" section of ``docs/SERVING.md``.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fd: int | None = None

    def acquire(self) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
        except BaseException:  # pragma: no cover - interrupted acquire
            os.close(fd)
            raise
        self._fd = fd

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
