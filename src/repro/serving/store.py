"""Versioned on-disk persistence for released private structures.

A :class:`ReleaseStore` is a directory of named releases, each with a
monotonically increasing sequence of immutable versions::

    store_root/
      index.json             # names, versions, digests, formats, pins
      genome/
        v0001.json           # canonical JSON payload (compatibility format)
        v0002.dpsb           # binary columnar payload (serving format)
      transit/
        v0001.dpsb

Two payload formats coexist per store (``index.json`` records which one each
version uses):

``json``
    exactly what :meth:`PrivateCountingTrie.save` writes — released noisy
    counts plus public metadata, human-readable, rsyncable to untrusted
    analysts wholesale.  Every byte is re-parsed into an object trie on
    load, so cold start is O(nodes) per process.
``binary``
    the ``vNNNN.dpsb`` columnar format of :mod:`repro.serving.binfmt`: the
    compiled trie's flat arrays as raw aligned buffers.  :meth:`load_compiled`
    maps it read-only, so cold start is O(header) and N server processes
    share one page-cache copy of the node data.

Both formats carry the *same* canonical content digest (the SHA-256 of the
canonical JSON payload), recorded in the index and verified on load — a
structure saved in either format round-trips to the same digest, which is
what makes :meth:`migrate` safe to verify before it deletes anything.
``ReleaseStore(format=...)`` picks the default for new saves: ``"json"``,
``"binary"``, or ``"auto"`` (binary — the serving tier's format).

Durability and concurrency
--------------------------
Version payloads and ``index.json`` are written atomically (tmp file +
fsync + ``os.replace`` via :mod:`repro.serving._fsio`), so a crash mid-write
leaves the previous complete index in place instead of a truncated one.
Mutations (``save``/``pin``/``unpin``/``migrate``) serialize across threads
on an internal lock and across curator *processes* on an advisory
``.index.lock`` file, and every operation first re-reads ``index.json``
when its on-disk signature changed — two processes saving into the same
store interleave cleanly (distinct version numbers) instead of silently
clobbering each other's index entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.private_trie import PrivateCountingTrie
from repro.exceptions import ReleaseNotFoundError, ReproError
from repro.serving import binfmt
from repro.serving._fsio import FileLock, atomic_write_text, file_signature

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.compiled import CompiledTrie

__all__ = ["ReleaseStore", "ReleaseRecord"]

#: accepted values of ``ReleaseStore(format=...)`` / ``save(format=...)``.
FORMATS = ("json", "binary", "auto")

#: payload file extension per format (the collision scan checks both).
_SUFFIXES = {"json": ".json", "binary": binfmt.BINARY_SUFFIX}


@dataclass(frozen=True)
class ReleaseRecord:
    """Index entry describing one stored version of one release."""

    name: str
    version: int
    path: str
    digest: str
    epsilon: float
    delta: float
    construction: str
    num_patterns: int
    pinned: bool = False
    #: payload format of this version: ``"json"`` or ``"binary"``.
    format: str = "json"
    #: 1-based epoch of a continual-release stream (``None`` for single-shot
    #: releases, which are the trivial one-epoch case).
    epoch: int | None = None
    #: the store version this release supersedes (``None`` for the first).
    parent_version: int | None = None


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _check_format(value: str, *, allow_auto: bool = True) -> str:
    if value not in FORMATS or (value == "auto" and not allow_auto):
        raise ReproError(
            f"invalid release format {value!r} (expected one of {FORMATS})"
        )
    return value


class ReleaseStore:
    """Save, version, pin, reload and migrate released private structures."""

    INDEX_NAME = "index.json"
    LOCK_NAME = ".index.lock"

    def __init__(self, root: str | Path, *, format: str = "auto") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.format = _check_format(format)
        self._index_path = self.root / self.INDEX_NAME
        self._lock = threading.RLock()
        self._file_lock = FileLock(self.root / self.LOCK_NAME)
        self._signature: tuple[int, int] | None = None
        self._load_index()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(
        self,
        name: str,
        structure: "PrivateCountingTrie | CompiledTrie",
        *,
        format: str | None = None,
        epoch: int | None = None,
    ) -> ReleaseRecord:
        """Persist ``structure`` as the next version of release ``name``
        (any counter form with the shared payload surface: in-memory
        structures and compiled tries serialize identically).

        ``format`` overrides the store default for this save; ``"auto"``
        (and an unset store default) means binary.  The recorded digest is
        the canonical JSON content digest in either format, so the two are
        interchangeable under every digest check.

        ``epoch`` tags the version as the release of a continual stream's
        1-based epoch; the previous latest version is then recorded as its
        ``parent_version``, so the index carries the full re-release chain.
        Versions saved without ``epoch`` keep the exact pre-epoch index
        shape (the keys are simply absent).
        """
        if not name or "/" in name or name.startswith("."):
            raise ReproError(f"invalid release name {name!r}")
        fmt = _check_format(format if format is not None else self.format)
        if fmt == "auto":
            fmt = "binary"
        # Payload assembly happens outside the locks: compiling / canonical
        # serialization is pure CPU and must not extend the critical section.
        if fmt == "binary":
            compiled = (
                structure
                if hasattr(structure, "arrays")
                else structure.compiled(cache_size=0)
            )
            digest = structure.content_digest()
            payload = None
        else:
            payload = structure.to_json()
            digest = _digest(payload)
        with self._lock, self._file_lock:
            self._refresh_if_stale()
            entry = self._index["releases"].setdefault(
                name, {"pinned": None, "versions": {}}
            )
            version = 1 + max((int(v) for v in entry["versions"]), default=0)
            directory = self.root / name
            directory.mkdir(parents=True, exist_ok=True)
            # Never overwrite a payload file the index does not know about
            # (e.g. after a lost index): versions are immutable releases, so
            # skip past whatever already exists on disk — in *either*
            # payload format, so a binary vNNNN can never silently collide
            # with a JSON vNNNN.
            while any(
                (directory / f"v{version:04d}{suffix}").exists()
                for suffix in _SUFFIXES.values()
            ):
                version += 1
            path = directory / f"v{version:04d}{_SUFFIXES[fmt]}"
            # Payload first, index second: a crash in between leaves an
            # orphan version file the index never references (and the next
            # save of that name atomically overwrites it).
            if fmt == "binary":
                binfmt.write_binary(path, compiled, content_digest=digest)
            else:
                atomic_write_text(path, payload)
            info = {
                "digest": digest,
                "epsilon": structure.metadata.epsilon,
                "delta": structure.metadata.delta,
                "construction": structure.metadata.construction,
                "num_patterns": structure.num_stored_patterns,
                "format": fmt,
            }
            if epoch is not None:
                info["epoch"] = int(epoch)
                previous = [int(v) for v in entry["versions"]]
                if previous:
                    info["parent_version"] = max(previous)
            entry["versions"][str(version)] = info
            self._write_index()
            return self._record(name, version)

    def pin(self, name: str, version: int) -> None:
        """Make ``version`` the default served version of ``name``."""
        with self._lock, self._file_lock:
            self._refresh_if_stale()
            entry = self._entry(name)
            if str(version) not in entry["versions"]:
                raise ReleaseNotFoundError(
                    f"release {name!r} has no version {version}"
                )
            entry["pinned"] = int(version)
            self._write_index()

    def unpin(self, name: str) -> None:
        """Revert ``name`` to serving its latest version by default."""
        with self._lock, self._file_lock:
            self._refresh_if_stale()
            self._entry(name)["pinned"] = None
            self._write_index()

    def migrate(
        self, name: str | None = None, version: int | None = None
    ) -> list[ReleaseRecord]:
        """Convert stored JSON versions to the binary format, in place.

        For every JSON version of ``name`` (or of every release when
        ``name`` is ``None``; ``version`` narrows to one), the binary
        payload is written atomically next to the JSON one, read back and
        verified to reproduce the *exact* recorded content digest, the
        index entry is flipped under the file lock, and only then is the
        old JSON payload removed.  A crash at any point leaves the version
        loadable: before the index flip the JSON payload is still the one
        the index references; after it, the verified binary payload is.

        Returns the records that were migrated (empty when everything is
        already binary).
        """
        migrated: list[ReleaseRecord] = []
        with self._lock, self._file_lock:
            self._refresh_if_stale()
            names = [name] if name is not None else sorted(self._index["releases"])
            for release_name in names:
                entry = self._entry(release_name)
                versions = (
                    [version]
                    if version is not None
                    else sorted(int(v) for v in entry["versions"])
                )
                for v in versions:
                    record = self._record(release_name, v)
                    if record.format == "binary":
                        continue
                    json_path = Path(record.path)
                    payload = json_path.read_text()
                    if _digest(payload) != record.digest:
                        raise ReproError(
                            f"release {release_name!r} v{v} failed its digest "
                            "check; refusing to migrate a modified payload"
                        )
                    structure = PrivateCountingTrie.from_json(payload)
                    binary_path = json_path.with_suffix(binfmt.BINARY_SUFFIX)
                    binfmt.write_binary(
                        binary_path,
                        structure.compiled(cache_size=0),
                        content_digest=record.digest,
                    )
                    # Digest equality is *proved* before the JSON payload
                    # goes away: the binary blob is read back in full and
                    # its reconstructed canonical payload must hash to the
                    # recorded digest.
                    reloaded = binfmt.read_binary(
                        binary_path,
                        mmap=False,
                        verify=True,
                        expected_digest=record.digest,
                    )
                    if reloaded.content_digest() != record.digest:
                        binary_path.unlink()
                        raise ReproError(
                            f"release {release_name!r} v{v}: binary round-trip "
                            "digest mismatch; migration aborted"
                        )
                    entry["versions"][str(v)]["format"] = "binary"
                    self._write_index()
                    try:
                        os.unlink(json_path)
                    except OSError:  # pragma: no cover - best-effort cleanup
                        pass
                    migrated.append(self._record(release_name, v))
        return migrated

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self, name: str, version: int | None = None) -> PrivateCountingTrie:
        """Reload a stored structure (pinned-or-latest when no version is
        given), verifying its recorded digest.

        Binary versions are fully read (checksummed) and rebuilt as object
        tries, then re-digested: the returned structure's canonical digest
        is proven equal to the index record regardless of payload format.
        Serving paths that want the arrays, not the objects, use
        :meth:`load_compiled` instead.
        """
        with self._lock:
            self._refresh_if_stale()
            resolved = self.resolve_version(name, version)
            record = self._record(name, resolved)
        if record.format == "binary":
            compiled = binfmt.read_binary(
                record.path,
                mmap=False,
                verify=True,
                expected_digest=record.digest,
            )
            structure = PrivateCountingTrie.from_dict(compiled.to_payload())
            if structure.content_digest() != record.digest:
                raise ReproError(
                    f"release {name!r} v{resolved} failed its digest check; "
                    "the store file was modified after it was written"
                )
            return structure
        payload = Path(record.path).read_text()
        if _digest(payload) != record.digest:
            raise ReproError(
                f"release {name!r} v{resolved} failed its digest check; "
                "the store file was modified after it was written"
            )
        return PrivateCountingTrie.from_json(payload)

    def load_compiled(
        self,
        name: str,
        version: int | None = None,
        *,
        mmap: bool = True,
        verify: bool | None = None,
        cache_size: int = 4096,
    ) -> "CompiledTrie":
        """The serving-path load: a :class:`CompiledTrie` of the stored
        version, zero-copy over mapped buffers when the payload is binary.

        For binary versions with ``mmap=True`` (the default) cold start is
        O(header): magic/version/size are validated, the header's canonical
        digest is checked against the index record, and node pages fault in
        lazily on first query — N processes share one page-cache copy.
        ``verify=True`` additionally checksums the data section up front.
        JSON versions fall back to :meth:`load` + compile (their cold start
        is inherently O(nodes)).
        """
        with self._lock:
            self._refresh_if_stale()
            resolved = self.resolve_version(name, version)
            record = self._record(name, resolved)
        if record.format == "binary":
            return binfmt.read_binary(
                record.path,
                mmap=mmap,
                verify=verify,
                cache_size=cache_size,
                expected_digest=record.digest,
            )
        return self.load(name, resolved).compiled(cache_size=cache_size)

    def resolve_version(self, name: str, version: int | None = None) -> int:
        """The version ``load(name, version)`` would read."""
        with self._lock:
            self._refresh_if_stale()
            entry = self._entry(name)
            if version is not None:
                if str(version) not in entry["versions"]:
                    raise ReleaseNotFoundError(
                        f"release {name!r} has no version {version}"
                    )
                return int(version)
            if entry["pinned"] is not None:
                return int(entry["pinned"])
            return max(int(v) for v in entry["versions"])

    def names(self) -> list[str]:
        with self._lock:
            self._refresh_if_stale()
            return sorted(self._index["releases"])

    def versions(self, name: str) -> list[int]:
        with self._lock:
            self._refresh_if_stale()
            return sorted(int(v) for v in self._entry(name)["versions"])

    def list_releases(self) -> list[ReleaseRecord]:
        """Every stored version of every release, in (name, version) order."""
        with self._lock:
            self._refresh_if_stale()
            return [
                self._record(name, version)
                for name in sorted(self._index["releases"])
                for version in sorted(
                    int(v) for v in self._entry(name)["versions"]
                )
            ]

    def describe(self) -> list[dict]:
        """JSON-friendly view of :meth:`list_releases` (for the server)."""
        return [asdict(record) for record in self.list_releases()]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _load_index(self) -> None:
        signature = file_signature(self._index_path)
        if signature is not None:
            self._index = json.loads(self._index_path.read_text())
        else:
            self._index = {"releases": {}}
        self._signature = signature

    def _refresh_if_stale(self) -> None:
        """Re-read ``index.json`` when another process replaced it (the
        atomic writes guarantee whatever we read is a complete index).  A
        *vanished* index is kept in memory instead — resetting to empty
        would restart version numbering at 1 and overwrite published
        payload files."""
        signature = file_signature(self._index_path)
        if signature == self._signature:
            return
        if signature is None:
            self._signature = None
            return
        self._load_index()

    def _entry(self, name: str) -> dict:
        try:
            return self._index["releases"][name]
        except KeyError:
            raise ReleaseNotFoundError(
                f"no release named {name!r} in store {self.root}"
            ) from None

    def _record(self, name: str, version: int) -> ReleaseRecord:
        entry = self._entry(name)
        info = entry["versions"][str(version)]
        pinned = entry["pinned"] is not None and int(entry["pinned"]) == version
        # Indexes written before the binary format carry no "format" key;
        # those versions are JSON by construction.
        fmt = info.get("format", "json")
        suffix = _SUFFIXES.get(fmt, ".json")
        return ReleaseRecord(
            name=name,
            version=version,
            path=str(self.root / name / f"v{version:04d}{suffix}"),
            digest=info["digest"],
            epsilon=info["epsilon"],
            delta=info["delta"],
            construction=info["construction"],
            num_patterns=info["num_patterns"],
            pinned=pinned,
            format=fmt,
            # Continual-release chain metadata; absent (None) on indexes
            # written by the single-shot path, old or new.
            epoch=info.get("epoch"),
            parent_version=info.get("parent_version"),
        )

    def _write_index(self) -> None:
        # Atomic + fsynced: a crash mid-write leaves the previous complete
        # index loadable instead of truncated JSON.
        atomic_write_text(
            self._index_path, json.dumps(self._index, indent=2, sort_keys=True)
        )
        self._signature = file_signature(self._index_path)
