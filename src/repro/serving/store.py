"""Versioned on-disk persistence for released private structures.

A :class:`ReleaseStore` is a directory of named releases, each with a
monotonically increasing sequence of immutable versions::

    store_root/
      index.json             # names, versions, digests, pins
      genome/
        v0001.json           # PrivateCountingTrie.to_json() payloads
        v0002.json
      transit/
        v0001.json

Every version file is exactly what :meth:`PrivateCountingTrie.save` writes —
released noisy counts plus public metadata — so a store can be rsynced to
untrusted analysts wholesale.  The index records a SHA-256 digest per version
(verified on load) and an optional *pin*: the version served by default when
a caller asks for a name without a version (otherwise the latest).

Durability and concurrency
--------------------------
Version payloads and ``index.json`` are written atomically (tmp file +
fsync + ``os.replace`` via :mod:`repro.serving._fsio`), so a crash mid-write
leaves the previous complete index in place instead of a truncated one.
Mutations (``save``/``pin``/``unpin``) serialize across threads on an
internal lock and across curator *processes* on an advisory
``.index.lock`` file, and every operation first re-reads ``index.json``
when its on-disk signature changed — two processes saving into the same
store interleave cleanly (distinct version numbers) instead of silently
clobbering each other's index entries.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.private_trie import PrivateCountingTrie
from repro.exceptions import ReleaseNotFoundError, ReproError
from repro.serving._fsio import FileLock, atomic_write_text, file_signature

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.compiled import CompiledTrie

__all__ = ["ReleaseStore", "ReleaseRecord"]


@dataclass(frozen=True)
class ReleaseRecord:
    """Index entry describing one stored version of one release."""

    name: str
    version: int
    path: str
    digest: str
    epsilon: float
    delta: float
    construction: str
    num_patterns: int
    pinned: bool = False


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ReleaseStore:
    """Save, version, pin and reload released private structures."""

    INDEX_NAME = "index.json"
    LOCK_NAME = ".index.lock"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._index_path = self.root / self.INDEX_NAME
        self._lock = threading.RLock()
        self._file_lock = FileLock(self.root / self.LOCK_NAME)
        self._signature: tuple[int, int] | None = None
        self._load_index()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(
        self, name: str, structure: "PrivateCountingTrie | CompiledTrie"
    ) -> ReleaseRecord:
        """Persist ``structure`` as the next version of release ``name``
        (any counter form with the shared payload surface: in-memory
        structures and compiled tries serialize byte-identically)."""
        if not name or "/" in name or name.startswith("."):
            raise ReproError(f"invalid release name {name!r}")
        payload = structure.to_json()
        with self._lock, self._file_lock:
            self._refresh_if_stale()
            entry = self._index["releases"].setdefault(
                name, {"pinned": None, "versions": {}}
            )
            version = 1 + max((int(v) for v in entry["versions"]), default=0)
            directory = self.root / name
            directory.mkdir(parents=True, exist_ok=True)
            # Never overwrite a payload file the index does not know about
            # (e.g. after a lost index): versions are immutable releases,
            # so skip past whatever already exists on disk.
            while (directory / f"v{version:04d}.json").exists():
                version += 1
            path = directory / f"v{version:04d}.json"
            # Payload first, index second: a crash in between leaves an
            # orphan version file the index never references (and the next
            # save of that name atomically overwrites it).
            atomic_write_text(path, payload)
            entry["versions"][str(version)] = {
                "digest": _digest(payload),
                "epsilon": structure.metadata.epsilon,
                "delta": structure.metadata.delta,
                "construction": structure.metadata.construction,
                "num_patterns": structure.num_stored_patterns,
            }
            self._write_index()
            return self._record(name, version)

    def pin(self, name: str, version: int) -> None:
        """Make ``version`` the default served version of ``name``."""
        with self._lock, self._file_lock:
            self._refresh_if_stale()
            entry = self._entry(name)
            if str(version) not in entry["versions"]:
                raise ReleaseNotFoundError(
                    f"release {name!r} has no version {version}"
                )
            entry["pinned"] = int(version)
            self._write_index()

    def unpin(self, name: str) -> None:
        """Revert ``name`` to serving its latest version by default."""
        with self._lock, self._file_lock:
            self._refresh_if_stale()
            self._entry(name)["pinned"] = None
            self._write_index()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self, name: str, version: int | None = None) -> PrivateCountingTrie:
        """Reload a stored structure (pinned-or-latest when no version is
        given), verifying its recorded digest."""
        with self._lock:
            self._refresh_if_stale()
            resolved = self.resolve_version(name, version)
            record = self._record(name, resolved)
        payload = Path(record.path).read_text()
        if _digest(payload) != record.digest:
            raise ReproError(
                f"release {name!r} v{resolved} failed its digest check; "
                "the store file was modified after it was written"
            )
        return PrivateCountingTrie.from_json(payload)

    def resolve_version(self, name: str, version: int | None = None) -> int:
        """The version ``load(name, version)`` would read."""
        with self._lock:
            self._refresh_if_stale()
            entry = self._entry(name)
            if version is not None:
                if str(version) not in entry["versions"]:
                    raise ReleaseNotFoundError(
                        f"release {name!r} has no version {version}"
                    )
                return int(version)
            if entry["pinned"] is not None:
                return int(entry["pinned"])
            return max(int(v) for v in entry["versions"])

    def names(self) -> list[str]:
        with self._lock:
            self._refresh_if_stale()
            return sorted(self._index["releases"])

    def versions(self, name: str) -> list[int]:
        with self._lock:
            self._refresh_if_stale()
            return sorted(int(v) for v in self._entry(name)["versions"])

    def list_releases(self) -> list[ReleaseRecord]:
        """Every stored version of every release, in (name, version) order."""
        with self._lock:
            self._refresh_if_stale()
            return [
                self._record(name, version)
                for name in sorted(self._index["releases"])
                for version in sorted(
                    int(v) for v in self._entry(name)["versions"]
                )
            ]

    def describe(self) -> list[dict]:
        """JSON-friendly view of :meth:`list_releases` (for the server)."""
        return [asdict(record) for record in self.list_releases()]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _load_index(self) -> None:
        signature = file_signature(self._index_path)
        if signature is not None:
            self._index = json.loads(self._index_path.read_text())
        else:
            self._index = {"releases": {}}
        self._signature = signature

    def _refresh_if_stale(self) -> None:
        """Re-read ``index.json`` when another process replaced it (the
        atomic writes guarantee whatever we read is a complete index).  A
        *vanished* index is kept in memory instead — resetting to empty
        would restart version numbering at 1 and overwrite published
        payload files."""
        signature = file_signature(self._index_path)
        if signature == self._signature:
            return
        if signature is None:
            self._signature = None
            return
        self._load_index()

    def _entry(self, name: str) -> dict:
        try:
            return self._index["releases"][name]
        except KeyError:
            raise ReleaseNotFoundError(
                f"no release named {name!r} in store {self.root}"
            ) from None

    def _record(self, name: str, version: int) -> ReleaseRecord:
        entry = self._entry(name)
        info = entry["versions"][str(version)]
        pinned = entry["pinned"] is not None and int(entry["pinned"]) == version
        return ReleaseRecord(
            name=name,
            version=version,
            path=str(self.root / name / f"v{version:04d}.json"),
            digest=info["digest"],
            epsilon=info["epsilon"],
            delta=info["delta"],
            construction=info["construction"],
            num_patterns=info["num_patterns"],
            pinned=pinned,
        )

    def _write_index(self) -> None:
        # Atomic + fsynced: a crash mid-write leaves the previous complete
        # index loadable instead of truncated JSON.
        atomic_write_text(
            self._index_path, json.dumps(self._index, indent=2, sort_keys=True)
        )
        self._signature = file_signature(self._index_path)
