"""Versioned on-disk persistence for released private structures.

A :class:`ReleaseStore` is a directory of named releases, each with a
monotonically increasing sequence of immutable versions::

    store_root/
      index.json             # names, versions, digests, pins
      genome/
        v0001.json           # PrivateCountingTrie.to_json() payloads
        v0002.json
      transit/
        v0001.json

Every version file is exactly what :meth:`PrivateCountingTrie.save` writes —
released noisy counts plus public metadata — so a store can be rsynced to
untrusted analysts wholesale.  The index records a SHA-256 digest per version
(verified on load) and an optional *pin*: the version served by default when
a caller asks for a name without a version (otherwise the latest).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.private_trie import PrivateCountingTrie
from repro.exceptions import ReleaseNotFoundError, ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.compiled import CompiledTrie

__all__ = ["ReleaseStore", "ReleaseRecord"]


@dataclass(frozen=True)
class ReleaseRecord:
    """Index entry describing one stored version of one release."""

    name: str
    version: int
    path: str
    digest: str
    epsilon: float
    delta: float
    construction: str
    num_patterns: int
    pinned: bool = False


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ReleaseStore:
    """Save, version, pin and reload released private structures."""

    INDEX_NAME = "index.json"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._index_path = self.root / self.INDEX_NAME
        if self._index_path.exists():
            self._index = json.loads(self._index_path.read_text())
        else:
            self._index = {"releases": {}}

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(
        self, name: str, structure: "PrivateCountingTrie | CompiledTrie"
    ) -> ReleaseRecord:
        """Persist ``structure`` as the next version of release ``name``
        (any counter form with the shared payload surface: in-memory
        structures and compiled tries serialize byte-identically)."""
        if not name or "/" in name or name.startswith("."):
            raise ReproError(f"invalid release name {name!r}")
        entry = self._index["releases"].setdefault(
            name, {"pinned": None, "versions": {}}
        )
        version = 1 + max((int(v) for v in entry["versions"]), default=0)
        payload = structure.to_json()
        directory = self.root / name
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"v{version:04d}.json"
        path.write_text(payload)
        entry["versions"][str(version)] = {
            "digest": _digest(payload),
            "epsilon": structure.metadata.epsilon,
            "delta": structure.metadata.delta,
            "construction": structure.metadata.construction,
            "num_patterns": structure.num_stored_patterns,
        }
        self._write_index()
        return self._record(name, version)

    def pin(self, name: str, version: int) -> None:
        """Make ``version`` the default served version of ``name``."""
        entry = self._entry(name)
        if str(version) not in entry["versions"]:
            raise ReleaseNotFoundError(f"release {name!r} has no version {version}")
        entry["pinned"] = int(version)
        self._write_index()

    def unpin(self, name: str) -> None:
        """Revert ``name`` to serving its latest version by default."""
        self._entry(name)["pinned"] = None
        self._write_index()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self, name: str, version: int | None = None) -> PrivateCountingTrie:
        """Reload a stored structure (pinned-or-latest when no version is
        given), verifying its recorded digest."""
        resolved = self.resolve_version(name, version)
        record = self._record(name, resolved)
        payload = Path(record.path).read_text()
        if _digest(payload) != record.digest:
            raise ReproError(
                f"release {name!r} v{resolved} failed its digest check; "
                "the store file was modified after it was written"
            )
        return PrivateCountingTrie.from_json(payload)

    def resolve_version(self, name: str, version: int | None = None) -> int:
        """The version ``load(name, version)`` would read."""
        entry = self._entry(name)
        if version is not None:
            if str(version) not in entry["versions"]:
                raise ReleaseNotFoundError(
                    f"release {name!r} has no version {version}"
                )
            return int(version)
        if entry["pinned"] is not None:
            return int(entry["pinned"])
        return max(int(v) for v in entry["versions"])

    def names(self) -> list[str]:
        return sorted(self._index["releases"])

    def versions(self, name: str) -> list[int]:
        return sorted(int(v) for v in self._entry(name)["versions"])

    def list_releases(self) -> list[ReleaseRecord]:
        """Every stored version of every release, in (name, version) order."""
        return [
            self._record(name, version)
            for name in self.names()
            for version in self.versions(name)
        ]

    def describe(self) -> list[dict]:
        """JSON-friendly view of :meth:`list_releases` (for the server)."""
        return [asdict(record) for record in self.list_releases()]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _entry(self, name: str) -> dict:
        try:
            return self._index["releases"][name]
        except KeyError:
            raise ReleaseNotFoundError(
                f"no release named {name!r} in store {self.root}"
            ) from None

    def _record(self, name: str, version: int) -> ReleaseRecord:
        entry = self._entry(name)
        info = entry["versions"][str(version)]
        pinned = entry["pinned"] is not None and int(entry["pinned"]) == version
        return ReleaseRecord(
            name=name,
            version=version,
            path=str(self.root / name / f"v{version:04d}.json"),
            digest=info["digest"],
            epsilon=info["epsilon"],
            delta=info["delta"],
            construction=info["construction"],
            num_patterns=info["num_patterns"],
            pinned=pinned,
        )

    def _write_index(self) -> None:
        self._index_path.write_text(json.dumps(self._index, indent=2, sort_keys=True))
