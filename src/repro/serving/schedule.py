"""The epoch scheduler: stream -> build -> ledger -> store -> hot reload.

:class:`EpochScheduler` owns the serving side of the continual-release
pipeline.  It watches an append-only :class:`~repro.api.CorpusStream` and,
for every epoch the stream has grown past the last release:

1. pre-checks the epoch's *marginal* budget (the dyadic-tree schedule of
   :class:`~repro.dp.ContinualAccountant`: the full epoch budget at
   power-of-two epochs, zero otherwise) against the
   :class:`~repro.serving.BudgetLedger` cap — a refused epoch never touches
   the documents;
2. builds the epoch's combined release through the structure registry
   (``heavy-path-continual`` by default), reusing cached per-interval
   structures so only the one newly-completed interval is constructed;
3. charges the marginal via :meth:`BudgetLedger.charge_epoch` (durable,
   audited) and publishes the structure as the next store version, tagged
   with the epoch and its parent version;
4. triggers :meth:`Cluster.reload` — the atomic generation swap of the
   sharded tier, under which no request is dropped and no client observes a
   version mix — or hands single-process callers a fresh pinned
   :class:`~repro.serving.QueryService` via :meth:`current_service`.

Version pinning: every published version records its epoch, so
:meth:`version_for_epoch` lets an in-flight client keep querying its epoch's
snapshot (``QueryService.from_store(..., versions=...)``) while the tier
moves on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro import faults
from repro.core.params import ConstructionParams
from repro.dp.composition import ContinualAccountant, PrivacyBudget
from repro.exceptions import ReleaseNotFoundError, ReproError
from repro.obs import MetricsRegistry
from repro.serving.ledger import BudgetLedger
from repro.serving.resilience import BackoffPolicy, call_with_retries
from repro.serving.store import ReleaseStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.stream import CorpusStream
    from repro.serving.cluster import Cluster
    from repro.serving.server import QueryService

__all__ = ["EpochScheduler", "EpochRelease"]

#: default schedule horizon: ample for any realistic stream, and irrelevant
#: to the marginal charges (which depend only on the epoch number).
DEFAULT_HORIZON = 1 << 20

#: chaos-drill injection site: fires at the top of each epoch build attempt,
#: inside the scheduler's retry loop (transient build failures are retried
#: with backoff; the privacy ledger is only charged after a build succeeds).
_FP_EPOCH_BUILD = faults.failpoint(
    "schedule.epoch_build", "Entry of every epoch release build attempt."
)

#: exceptions worth a build retry: environmental/injected trouble.  Privacy
#: refusals (``BudgetExceededError``) and schedule misuse (``ReproError``)
#: must always propagate — a refused charge is not a transient fault.
_BUILD_TRANSIENT = (OSError, faults.FaultInjected)


@dataclass(frozen=True)
class EpochRelease:
    """What one scheduler step produced."""

    epoch: int
    version: int
    digest: str
    #: marginal budget this epoch charged (zero off the power-of-two grid).
    epsilon: float
    delta: float
    #: cumulative ledger spend after the charge.
    spent_epsilon: float
    spent_delta: float
    num_patterns: int
    #: whether a cluster generation swap was performed for this release.
    reloaded: bool


class EpochScheduler:
    """Builds, accounts and publishes one release per stream epoch.

    Parameters
    ----------
    stream / store / ledger:
        The corpus stream watched, the release store published into, and
        the budget ledger charged (cap enforcement + audit trail).
    params:
        Per-epoch construction parameters; ``params.budget`` is the *epoch
        budget* of the tree schedule, so a ledger cap of
        ``levels * epoch_budget`` funds the whole horizon.
    release_name / database_id:
        Store release name and ledger database id (default: the stream's
        name for both).
    seed:
        Base seed of the per-interval RNGs — replaying the same stream with
        the same seed reproduces every release digest exactly.
    kind:
        Registry kind built per epoch (default ``heavy-path-continual``).
    cluster:
        Optional :class:`~repro.serving.Cluster` to hot-reload after every
        publish.  Single-process servers instead swap in
        :meth:`current_service` output.
    horizon:
        Schedule horizon ``T`` (bounds the worst-case total budget at
        ``(floor(log2 T) + 1) * epoch_budget``).

    A restarted scheduler resumes where the *ledger* says the schedule
    stopped (:meth:`BudgetLedger.next_epoch`): epochs already charged are
    replayed into the in-memory accountant, never re-charged.
    """

    def __init__(
        self,
        stream: "CorpusStream",
        store: ReleaseStore,
        ledger: BudgetLedger,
        *,
        params: ConstructionParams,
        release_name: str | None = None,
        database_id: str | None = None,
        seed: int = 0,
        kind: str = "heavy-path-continual",
        label: str = "epoch",
        release_format: str | None = None,
        registry=None,
        cluster: "Cluster | None" = None,
        on_release: Callable[[EpochRelease], None] | None = None,
        horizon: int = DEFAULT_HORIZON,
        build_retries: int = 3,
        retry_backoff: BackoffPolicy | None = None,
        **build_kwargs,
    ) -> None:
        self.stream = stream
        self.store = store
        self.ledger = ledger
        self.params = params
        self.release_name = release_name or stream.name
        self.database_id = database_id or stream.name
        self.seed = int(seed)
        self.kind = kind
        self.label = label
        self.release_format = release_format
        if registry is None:
            from repro.api.registry import default_registry

            registry = default_registry()
        self.registry = registry
        self.cluster = cluster
        self.on_release = on_release
        self.build_retries = int(build_retries)
        self.retry_backoff = (
            retry_backoff
            if retry_backoff is not None
            else BackoffPolicy(base=0.02, cap=0.5)
        )
        self.build_kwargs = dict(build_kwargs)
        self.metrics = MetricsRegistry()
        self._build_retries_total = self.metrics.counter(
            "dpsc_scheduler_retries_total",
            "Epoch pipeline attempts retried after a transient failure, by stage.",
            {"stage": "build"},
        )
        self._reload_retries_total = self.metrics.counter(
            "dpsc_scheduler_retries_total",
            "Epoch pipeline attempts retried after a transient failure, by stage.",
            {"stage": "reload"},
        )
        self._reload_failures = self.metrics.counter(
            "dpsc_scheduler_reload_failures_total",
            "Hot reloads abandoned after retries (the release stays "
            "published; the next epoch's swap serves it).",
        )
        self.continual = ContinualAccountant(params.budget, horizon=horizon)
        #: per-interval structure cache: one fresh build per epoch.
        self._cache: dict[tuple[int, int], object] = {}
        self._lock = threading.Lock()
        self.releases: list[EpochRelease] = []
        # Resume a persisted schedule: epochs the ledger already booked are
        # replayed into the in-memory accountant (never re-charged).
        for epoch in range(1, self.ledger.next_epoch(self.database_id)):
            self.continual.charge_epoch(epoch)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def released_epochs(self) -> int:
        """Epochs released so far (schedule position, ledger-durable)."""
        return self.continual.current_epoch

    def pending_epochs(self) -> list[int]:
        """Stream epochs that arrived but have not been released yet."""
        return list(range(self.released_epochs + 1, self.stream.num_epochs + 1))

    def version_for_epoch(self, epoch: int) -> int:
        """The store version serving ``epoch``'s snapshot — what a pinned
        client passes to ``QueryService.from_store(versions=...)``."""
        for record in self.store.list_releases():
            if record.name == self.release_name and record.epoch == epoch:
                return record.version
        raise ReleaseNotFoundError(
            f"release {self.release_name!r} has no version for epoch {epoch}"
        )

    def status(self) -> dict:
        """JSON-friendly schedule state (``dpsc epochs status``)."""
        spent = (
            self.ledger.spent(self.database_id).epsilon
            if self.database_id in self.ledger.database_ids()
            else 0.0
        )
        epochs = self.ledger.epoch_entries(self.database_id)
        released = len(epochs)
        tree_epsilon, tree_delta = self.continual.spent_through(max(released, 1))
        return {
            "release": self.release_name,
            "database_id": self.database_id,
            "stream_epochs": self.stream.num_epochs,
            "released_epochs": released,
            "pending_epochs": self.pending_epochs(),
            "spent_epsilon": spent,
            "cap_epsilon": self.ledger.cap.epsilon,
            "cap_delta": self.ledger.cap.delta,
            "tree_bound_epsilon": tree_epsilon if released else 0.0,
            "tree_bound_delta": tree_delta if released else 0.0,
            "naive_epsilon": released * self.params.budget.epsilon,
            "epoch_budget_epsilon": self.params.budget.epsilon,
            "epoch_budget_delta": self.params.budget.delta,
            "epochs": epochs,
        }

    # ------------------------------------------------------------------
    # The step: one epoch end to end
    # ------------------------------------------------------------------
    def run_epoch(self, epoch: int | None = None) -> EpochRelease:
        """Release the next pending epoch (``epoch`` must match it when
        given) and return the publication record."""
        with self._lock:
            expected = self.released_epochs + 1
            if epoch is None:
                epoch = expected
            if epoch != expected:
                raise ReproError(
                    f"epochs release in order: expected {expected}, got {epoch}"
                )
            if epoch > self.stream.num_epochs:
                raise ReproError(
                    f"epoch {epoch} has not arrived in stream "
                    f"{self.stream.name!r} ({self.stream.num_epochs} epoch(s))"
                )
            # Refuse-before-build: when this epoch carries a real marginal
            # charge, an unaffordable schedule must not touch the documents.
            epsilon, delta = self.continual.marginal(epoch)
            if (epsilon > 0 or delta > 0) and not self.ledger.can_afford(
                self.database_id, PrivacyBudget(epsilon, delta)
            ):
                # charge_epoch raises the detailed BudgetExceededError and
                # audits the refusal; nothing is recorded.
                self.ledger.charge_epoch(
                    self.database_id, epoch, epsilon, delta, label=self.label
                )
            # The builder contract's database positional is unused by the
            # continual kind (the stream is the data source).  Transient
            # build failures (I/O trouble, injected faults) are retried with
            # seeded backoff — safe before any charge: a failed attempt has
            # touched no ledger state and published nothing.
            def _build():
                _FP_EPOCH_BUILD.hit()
                return self.registry.build(
                    self.kind,
                    None,
                    self.params,
                    stream=self.stream,
                    epoch=epoch,
                    seed=self.seed,
                    cache=self._cache,
                    **self.build_kwargs,
                )

            structure = call_with_retries(
                _build,
                retries=self.build_retries,
                transient=_BUILD_TRANSIENT,
                backoff=self.retry_backoff,
                seed=f"{self.seed}:build:{epoch}",
                on_retry=lambda _error: self._build_retries_total.inc(),
            )
            # Durable accounting first (audited, crash-safe), then the
            # artifact: a crash in between leaves a charge whose release
            # never published — visible in the trail, re-publishable free
            # of charge (combination is post-processing).
            self.continual.charge_epoch(epoch)
            try:
                self.ledger.charge_epoch(
                    self.database_id, epoch, epsilon, delta, label=self.label
                )
            except Exception:
                # Keep the in-memory schedule aligned with the ledger.
                self.continual.charges.pop()
                self.continual.accountant.records.pop()
                raise
            record = self.store.save(
                self.release_name,
                structure,
                format=self.release_format,
                epoch=epoch,
            )
            self.ledger.record_release(
                self.database_id,
                version=record.version,
                digest=record.digest,
                label=f"{self.label}-{epoch}",
                format=record.format,
            )
            reloaded = self._trigger_reload()
            release = EpochRelease(
                epoch=epoch,
                version=record.version,
                digest=record.digest,
                epsilon=epsilon,
                delta=delta,
                spent_epsilon=self.ledger.spent(self.database_id).epsilon,
                spent_delta=self.ledger.spent(self.database_id).delta,
                num_patterns=record.num_patterns,
                reloaded=reloaded,
            )
            self.releases.append(release)
        if self.on_release is not None:
            self.on_release(release)
        return release

    def run_pending(self) -> list[EpochRelease]:
        """Release every epoch the stream holds but the store does not."""
        return [self.run_epoch() for _ in list(self.pending_epochs())]

    def watch(
        self,
        *,
        poll_interval: float = 0.5,
        stop: threading.Event | None = None,
        max_epochs: int | None = None,
    ) -> list[EpochRelease]:
        """Poll the stream and release epochs as they arrive, until ``stop``
        is set (or ``max_epochs`` epochs have been released)."""
        stop = stop or threading.Event()
        released: list[EpochRelease] = []
        while not stop.is_set():
            for _ in list(self.pending_epochs()):
                released.append(self.run_epoch())
                if max_epochs is not None and len(released) >= max_epochs:
                    return released
            stop.wait(timeout=poll_interval)
        return released

    # ------------------------------------------------------------------
    # Serving integration
    # ------------------------------------------------------------------
    def _trigger_reload(self) -> bool:
        if self.cluster is None:
            return False
        try:
            summary = call_with_retries(
                self.cluster.reload,
                retries=self.build_retries,
                transient=(ReproError, OSError),
                backoff=self.retry_backoff,
                seed=f"{self.seed}:reload",
                on_retry=lambda _error: self._reload_retries_total.inc(),
            )
        except (ReproError, OSError):
            # The release is already published and accounted; a failed swap
            # only delays serving it — the next epoch's reload (or a manual
            # /admin/reload) picks it up.  Swallowing is safe, losing the
            # already-charged release would not be.
            self._reload_failures.inc()
            return False
        return bool(summary.get("reloaded"))

    def current_service(self, **kwargs) -> "QueryService":
        """A fresh single-process :class:`QueryService` pinned to the latest
        published version — the swap path for non-cluster servers (build the
        new service, exchange the handle, ``close()`` the old one)."""
        from repro.serving.server import QueryService

        version = self.store.resolve_version(self.release_name)
        return QueryService.from_store(
            self.store,
            [self.release_name],
            versions={self.release_name: version},
            **kwargs,
        )
