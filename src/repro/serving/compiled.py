"""Compiled, array-backed private counting tries for query serving.

A :class:`repro.core.private_trie.PrivateCountingTrie` is a linked structure
of Python objects — ideal for construction, slow to serve.  Since querying is
pure post-processing, we are free to *compile* the released structure into a
handful of contiguous numpy arrays without touching privacy at all:

* ``counts[v]`` — the stored noisy count of node ``v`` (``NaN`` when the node
  stores no count, e.g. internal candidate-trie nodes);
* ``child_start[v]:child_end[v]`` — the slice of ``edge_labels`` /
  ``edge_targets`` holding ``v``'s outgoing edges, sorted by label code;
* ``edge_keys[e] = source * |Sigma'| + label_code`` — a globally sorted key
  array that lets a *batch* of patterns advance one character per step with a
  single vectorized ``searchsorted``.

Single queries walk the arrays in ``O(|P| log sigma)``; batches of ``m``
patterns run in ``O(max|P|)`` vectorized rounds over all ``m`` patterns at
once, which is where the serving throughput comes from (see
``benchmarks/bench_serving.py``).  A small LRU cache short-circuits repeated
single-pattern queries, as real query traffic is heavily skewed.

Thread safety
-------------
A compiled trie is served concurrently by ``ThreadingHTTPServer`` handler
threads, so it guarantees an *immutable snapshot*: every shared numpy array
is marked read-only after construction (:meth:`CompiledTrie.assert_immutable`
verifies this), query paths only allocate thread-local scratch, and the
mutable members — the LRU result cache, the uniform-batch gather-index
cache and the lazily built query-acceleration views — are each guarded by
their own lock.  Any number of threads may call ``query`` / ``batch_query``
/ ``mine`` concurrently and observe exactly the serial results, with exact
hit/miss counters (``tests/serving/test_concurrency.py`` is the stress
suite).

Lazy views and mmap zero-copy loads
-----------------------------------
Construction keeps only the nine canonical arrays plus O(alphabet) tables:
the dense transition table and the NaN-folded count gathers are built on
the *first batch query*, and the plain-list mirrors the single-query walk
prefers are built on the *first single query* (both under a lock, published
read-only).  That makes ``__init__`` O(header) over the node count — which
is what lets :mod:`repro.serving.binfmt` construct a compiled trie straight
over ``mmap``-ed, page-cache-shared buffers of a binary release without
faulting in a single node page at load time.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.private_trie import (
    PrivateCountingTrie,
    StructureMetadata,
    payload_digest,
    payload_json,
    release_payload,
)

__all__ = ["CompiledTrie", "CacheInfo"]


#: "not built yet" marker for lazily constructed views (``None`` is a valid
#: built value: the dense transition table of an over-limit alphabet).
_UNSET = object()


class _LazyViews:
    """Query-acceleration structures derived from the canonical arrays.

    Built on first use so that loading an mmap'd release stays O(header):
    ``tables`` (the dense transition table + NaN-folded count gathers) on
    the first batch query, ``lists`` (the plain-list mirrors the stdlib
    ``bisect`` walk prefers) on the first single query.  Shared between
    :meth:`CompiledTrie.with_cache_size` twins — the views are pure
    functions of the shared frozen arrays, so building them once serves
    every twin.
    """

    __slots__ = ("lock", "transitions", "counts_ext", "counts_zero", "lists")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.transitions: object = _UNSET
        self.counts_ext: np.ndarray | None = None
        self.counts_zero: np.ndarray | None = None
        self.lists: tuple | None = None


@dataclass(frozen=True)
class CacheInfo:
    """Hit/miss statistics of a :class:`CompiledTrie`'s LRU result cache."""

    hits: int
    misses: int
    size: int
    max_size: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CompiledTrie:
    """A read-only, array-backed view of a :class:`PrivateCountingTrie`.

    Everything here is post-processing of the released noisy counts: the
    compiled form answers exactly the same queries as the source structure
    (see ``tests/serving/test_compiled.py`` for the parity property) with no
    additional privacy loss, only faster.
    """

    #: largest dense transition table (entries) built eagerly; ~256 MiB.
    DENSE_TRANSITION_LIMIT = 1 << 25

    def __init__(
        self,
        *,
        counts: np.ndarray,
        depths: np.ndarray,
        parents: np.ndarray,
        parent_codes: np.ndarray,
        child_start: np.ndarray,
        child_end: np.ndarray,
        edge_keys: np.ndarray,
        edge_labels: np.ndarray,
        edge_targets: np.ndarray,
        vocab: dict[str, int],
        metadata: StructureMetadata,
        report: dict | None = None,
        cache_size: int = 4096,
    ) -> None:
        self._counts = counts
        self._depths = depths
        self._parents = parents
        self._parent_codes = parent_codes
        self._child_start = child_start
        self._child_end = child_end
        self._edge_keys = edge_keys
        self._edge_labels = edge_labels
        self._edge_targets = edge_targets
        self._vocab = vocab
        self._chars = [""] * (len(vocab) + 1)
        for char, code in vocab.items():
            self._chars[code] = char
        self._vocab_size = len(vocab) + 1
        # Dense codepoint -> code table for vectorized pattern encoding.
        # Unknown characters (and the NUL separator) map to the reserved
        # code 0, whose transition column is entirely dead.  Covering the
        # whole BMP lets the common case skip bounds checks completely, and
        # the extra guard slot past every vocab character stays 0 so
        # ``take(..., mode="clip")`` maps astral-plane codepoints to
        # "unknown" without a per-batch bounds scan.
        max_point = max((ord(c) for c in vocab), default=0)
        table = np.zeros(max(0x10000, max_point + 2), dtype=np.int32)
        for char, code in vocab.items():
            table[ord(char)] = code
        self._code_table = table
        self._dead = int(counts.size)
        # Everything derived from the node/edge arrays — the dense
        # transition table, the NaN-folded count gathers, the plain-list
        # mirrors — is built lazily on first use (see _LazyViews), so
        # construction never touches a node page: an mmap'd release loads
        # in O(header) and N processes share one page-cache copy.
        self._lazy = _LazyViews()
        # (batch size, pattern length) -> code gather index; serving traffic
        # repeats batch shapes, so the uniform path's index arithmetic is
        # computed once per shape.  Guarded by _uniform_lock: concurrent
        # /batch handler threads share this dict.
        self._uniform_cache: dict[tuple[int, int], np.ndarray] = {}
        self._uniform_lock = threading.Lock()
        self.metadata = metadata
        self.report = dict(report or {})
        # The LRU cache (an OrderedDict whose move_to_end/popitem are not
        # atomic under concurrent callers) and its exact hit/miss counters
        # share one lock; the count lookup itself runs outside it.
        self._cache: OrderedDict[str, float] = OrderedDict()
        self._cache_max = max(0, int(cache_size))
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_lock = threading.Lock()
        # Immutable-snapshot guarantee: all shared arrays are frozen so a
        # rogue writer faults loudly instead of racing readers.
        for array in self._shared_arrays():
            array.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_structure(
        cls, structure: PrivateCountingTrie, *, cache_size: int = 4096
    ) -> "CompiledTrie":
        """Flatten ``structure`` into contiguous arrays (BFS node order)."""
        root = structure.trie.root
        order = [root]
        index = {id(root): 0}
        for node in order:
            for child in node.children.values():
                index[id(child)] = len(order)
                order.append(child)
        num_nodes = len(order)

        vocab: dict[str, int] = {}
        for node in order[1:]:
            if node.char not in vocab:
                # Code 0 is reserved so that key 0 is never a valid edge key.
                vocab[node.char] = len(vocab) + 1
        vocab_size = len(vocab) + 1

        counts = np.full(num_nodes, np.nan, dtype=np.float64)
        depths = np.zeros(num_nodes, dtype=np.int64)
        parents = np.full(num_nodes, -1, dtype=np.int64)
        parent_codes = np.zeros(num_nodes, dtype=np.int64)
        for position, node in enumerate(order):
            if node.noisy_count is not None:
                counts[position] = float(node.noisy_count)
            depths[position] = node.depth
            if node.parent is not None:
                parents[position] = index[id(node.parent)]
                parent_codes[position] = vocab[node.char]

        num_edges = num_nodes - 1
        edge_keys = np.zeros(num_edges, dtype=np.int64)
        edge_targets = np.zeros(num_edges, dtype=np.int64)
        child_start = np.zeros(num_nodes, dtype=np.int64)
        child_end = np.zeros(num_nodes, dtype=np.int64)
        cursor = 0
        for position, node in enumerate(order):
            child_start[position] = cursor
            for char in sorted(node.children, key=vocab.__getitem__):
                edge_keys[cursor] = position * vocab_size + vocab[char]
                edge_targets[cursor] = index[id(node.children[char])]
                cursor += 1
            child_end[position] = cursor
        # BFS order plus per-node sorted children makes edge_keys globally
        # sorted, which batch_query's searchsorted relies on.
        edge_labels = edge_keys % vocab_size if num_edges else edge_keys.copy()

        return cls(
            counts=counts,
            depths=depths,
            parents=parents,
            parent_codes=parent_codes,
            child_start=child_start,
            child_end=child_end,
            edge_keys=edge_keys,
            edge_labels=edge_labels,
            edge_targets=edge_targets,
            vocab=vocab,
            metadata=structure.metadata,
            report=structure.report,
            cache_size=cache_size,
        )

    def with_cache_size(self, cache_size: int) -> "CompiledTrie":
        """A zero-copy twin of this compiled trie with a fresh LRU cache.

        Every shared (frozen, read-only) array — counts, CSR edges, the code
        and transition tables — is reused as-is; only the mutable state (the
        LRU cache, its counters and locks, the uniform gather-index cache)
        is created fresh.  This is how the array construction pipeline hands
        its already-array-shaped build to
        :meth:`repro.core.private_trie.PrivateCountingTrie.compiled` without
        re-flattening anything.
        """
        twin = object.__new__(CompiledTrie)
        twin.__dict__.update(self.__dict__)
        twin._uniform_cache = {}
        twin._uniform_lock = threading.Lock()
        twin._cache = OrderedDict()
        twin._cache_max = max(0, int(cache_size))
        twin._cache_hits = 0
        twin._cache_misses = 0
        twin._cache_lock = threading.Lock()
        return twin

    # ------------------------------------------------------------------
    # Lazily built query-acceleration views
    # ------------------------------------------------------------------
    def _batch_tables(
        self,
    ) -> tuple[np.ndarray | None, np.ndarray, np.ndarray]:
        """``(transitions, counts_ext, counts_zero)``, built on first use.

        ``transitions`` is the dense, pre-scaled transition table (``None``
        when ``(nodes + 1) * vocab`` exceeds :attr:`DENSE_TRANSITION_LIMIT`
        — read at build time, so tests may monkeypatch it before the first
        batch); ``counts_ext`` appends a NaN sentinel so the dead state
        gathers to "no count"; ``counts_zero`` is the same array with NaN
        already folded to 0 for the uniform fast path.  Double-checked under
        the views lock; every view is frozen before publication.
        """
        lazy = self._lazy
        if lazy.transitions is not _UNSET:
            return lazy.transitions, lazy.counts_ext, lazy.counts_zero
        with lazy.lock:
            if lazy.transitions is not _UNSET:
                return lazy.transitions, lazy.counts_ext, lazy.counts_zero
            counts_ext = np.append(self._counts, np.nan)
            counts_zero = np.where(np.isnan(counts_ext), 0.0, counts_ext)
            counts_ext.setflags(write=False)
            counts_zero.setflags(write=False)
            num_nodes = self._dead
            entries = (num_nodes + 1) * self._vocab_size
            transitions: np.ndarray | None = None
            if entries <= self.DENSE_TRANSITION_LIMIT:
                transitions = np.full(entries, num_nodes, dtype=np.int32)
                transitions[self._edge_keys] = self._edge_targets
                # Pre-scaled by vocab_size: table values are *row offsets*,
                # so a batch round is one add and one gather.
                transitions *= self._vocab_size
                transitions.setflags(write=False)
            lazy.counts_ext = counts_ext
            lazy.counts_zero = counts_zero
            # Published last: the sentinel flipping is what tells lock-free
            # readers the other two views are already in place.
            lazy.transitions = transitions
            return transitions, counts_ext, counts_zero

    def _single_lists(self) -> tuple[list, list, list, list, list]:
        """Plain-list mirrors ``(edge_keys, edge_targets, child_start,
        child_end, counts)`` for the stdlib-``bisect`` single-query walk,
        built on the first single query (list indexing beats per-call numpy
        overhead by an order of magnitude)."""
        lazy = self._lazy
        lists = lazy.lists
        if lists is None:
            with lazy.lock:
                lists = lazy.lists
                if lists is None:
                    lists = (
                        self._edge_keys.tolist(),
                        self._edge_targets.tolist(),
                        self._child_start.tolist(),
                        self._child_end.tolist(),
                        self._counts.tolist(),
                    )
                    lazy.lists = lists
        return lists

    @property
    def _transitions(self) -> np.ndarray | None:
        """The dense transition table (building it if necessary) — kept as
        a property so existing callers and tests observe the same
        ``None``-when-sparse contract as the old eager attribute."""
        return self._batch_tables()[0]

    # ------------------------------------------------------------------
    # Single-pattern queries
    # ------------------------------------------------------------------
    def lookup_node(self, pattern: str) -> int:
        """Index of the node spelling ``pattern``, or ``-1`` when absent."""
        node = 0
        vocab = self._vocab
        vocab_size = self._vocab_size
        keys, targets, child_start, child_end, _ = self._single_lists()
        for char in pattern:
            code = vocab.get(char)
            if code is None:
                return -1
            key = node * vocab_size + code
            position = bisect_left(keys, key, child_start[node], child_end[node])
            if position >= child_end[node] or keys[position] != key:
                return -1
            node = targets[position]
        return node

    def query(self, pattern: str) -> float:
        """Noisy count of ``pattern`` (0 when absent), LRU-cached.

        Safe for any number of concurrent callers: the OrderedDict LRU is
        only touched under ``_cache_lock`` (``move_to_end``/``popitem`` are
        read-modify-write sequences that corrupt the dict when interleaved),
        while the array walk itself runs outside the lock.  Hit/miss
        counters are exact, not best-effort.
        """
        if self._cache_max:
            with self._cache_lock:
                cached = self._cache.get(pattern)
                if cached is not None:
                    self._cache_hits += 1
                    self._cache.move_to_end(pattern)
                    return cached
                self._cache_misses += 1
        result = self._query_uncached(pattern)
        if self._cache_max:
            with self._cache_lock:
                self._cache[pattern] = result
                while len(self._cache) > self._cache_max:
                    self._cache.popitem(last=False)
        return result

    def _query_uncached(self, pattern: str) -> float:
        node = self.lookup_node(pattern)
        if node < 0:
            return 0.0
        count = self._single_lists()[4][node]
        return 0.0 if math.isnan(count) else count

    def __contains__(self, pattern: str) -> bool:
        node = self.lookup_node(pattern)
        return node >= 0 and not math.isnan(self._single_lists()[4][node])

    # ------------------------------------------------------------------
    # Batch queries (vectorized)
    # ------------------------------------------------------------------
    #: separator used to split a joined batch in one vectorized pass; NUL is
    #: outside every data-universe alphabet (and guarded against anyway).
    _SEPARATOR = "\x00"

    def batch_query(self, patterns: Sequence[str]) -> np.ndarray:
        """Noisy counts for every pattern, advancing all of them through the
        trie one character per vectorized round.

        Patterns are joined with NUL separators so their codes and lengths
        come from one vectorized encode + separator scan (falling back to
        per-pattern ``len()`` when a pattern contains NUL itself; the guard
        slot of the code table absorbs astral-plane codepoints via a clipped
        gather).  Uniform-length batches take a dedicated fast path; mixed
        batches are sorted by length so each round operates on a contiguous
        suffix of still-running patterns — no per-round boolean compaction.
        A pattern that ends simply drops out of the next round's suffix with
        its node frozen; a pattern that mismatches moves to the dead state
        and stays there.  Total work is proportional to the number of
        characters consumed, in a few numpy kernels per round.
        """
        if not isinstance(patterns, list):
            patterns = list(patterns)
        m = len(patterns)
        if m == 0:
            return np.zeros(0, dtype=np.float64)
        joined = self._SEPARATOR.join(patterns)
        points = np.frombuffer(joined.encode("utf-32-le"), dtype=np.uint32)
        flat_codes = self._code_table.take(points, mode="clip")
        is_separator = points == 0
        transitions, counts_ext, counts_zero = self._batch_tables()
        if transitions is not None and m > 1:
            # Uniform-length fast path: q-gram releases serve fixed-length
            # traffic, where the length sort, per-step activity cuts and the
            # final unscramble are pure overhead.  Uniform lengths mean the
            # joined batch carries exactly m - 1 NULs, all at the expected
            # separator positions (which also rules out patterns containing
            # NUL themselves); then one (L, m) gather of the codes up front
            # and two kernels per round answer the batch.
            length = len(patterns[0])
            if points.size == m * (length + 1) - 1:
                at_separators = is_separator[length :: length + 1]
                if (
                    at_separators.size == m - 1
                    and bool(at_separators.all())
                    and int(np.count_nonzero(is_separator)) == m - 1
                ):
                    with self._uniform_lock:
                        gather_index = self._uniform_cache.get((m, length))
                    if gather_index is None:
                        gather_index = (
                            np.arange(m) * (length + 1)
                            + np.arange(length)[:, None]
                        )
                        # Frozen before publication: once in the dict the
                        # index is shared by every handler thread.
                        gather_index.setflags(write=False)
                        with self._uniform_lock:
                            if len(self._uniform_cache) >= 16:
                                self._uniform_cache.clear()
                            self._uniform_cache[(m, length)] = gather_index
                    return self._batch_query_uniform(
                        flat_codes, gather_index, length, m, transitions, counts_zero
                    )
        separators = np.flatnonzero(is_separator)
        if separators.size == m - 1:
            bounds = np.concatenate((separators, [points.size]))
            starts = np.concatenate(([0], separators + 1))
            lengths = bounds - starts
        else:  # some pattern contains NUL itself
            lengths = np.fromiter(map(len, patterns), dtype=np.int64, count=m)
            starts = np.concatenate(([0], np.cumsum(lengths + 1)))[:-1]
        # Grouping by length only needs buckets, not a stable order; uint16
        # keys keep the sort in numpy's radix path.
        if int(lengths.max()) < 0x10000:
            order = np.argsort(lengths.astype(np.uint16), kind="stable")
        else:  # patterns longer than 65535 characters
            order = np.argsort(lengths, kind="stable")
        sorted_lengths = lengths[order]
        positions = starts[order].astype(np.intp)
        max_len = int(sorted_lengths[-1])
        # First index whose pattern still has characters left at each step.
        cuts = np.searchsorted(
            sorted_lengths, np.arange(max_len + 1), side="right"
        ).tolist()
        nodes = np.zeros(m, dtype=np.int32)
        vocab_size = self._vocab_size
        for step in range(max_len):
            lo = cuts[step]
            active_positions = positions[lo:]
            codes = flat_codes.take(active_positions)
            if transitions is not None:
                # States are row offsets (node * vocab_size); unknown
                # characters carry code 0, whose transition column (like
                # the dead state's whole row) is entirely dead.
                nodes[lo:] = transitions.take(nodes[lo:] + codes)
            else:
                nodes[lo:] = self._advance_sparse(nodes[lo:], codes)
            active_positions += 1  # in place: ready for the next round
        if transitions is not None:
            nodes //= vocab_size  # row offsets back to node indices
        counts = counts_ext.take(nodes)
        results_sorted = np.where(np.isnan(counts), 0.0, counts)
        results = np.empty(m, dtype=np.float64)
        results[order] = results_sorted
        return results

    def _batch_query_uniform(
        self,
        flat_codes: np.ndarray,
        gather_index: np.ndarray,
        length: int,
        m: int,
        transitions: np.ndarray,
        counts_zero: np.ndarray,
    ) -> np.ndarray:
        """Dense-table batch walk for a batch whose patterns all have the
        same ``length`` — bit-for-bit the counts of the general path, minus
        its per-length bookkeeping.

        Pattern ``i`` starts at flat offset ``i * (length + 1)`` (one NUL
        separator apart); ``gather_index`` materializes the code matrix in
        one gather, in ``(length, m)`` layout so each round reads one
        contiguous row.  The two round kernels reuse preallocated buffers.
        """
        codes = flat_codes.take(gather_index)
        nodes = np.zeros(m, dtype=np.int32)
        scratch = np.empty(m, dtype=np.int32)
        for step in range(length):
            # Same row-offset arithmetic as the general path: table values
            # are pre-scaled node offsets, codes index columns.
            np.add(nodes, codes[step], out=scratch)
            transitions.take(scratch, out=nodes)
        if length:
            nodes //= self._vocab_size
        return counts_zero.take(nodes)

    def query_many(self, patterns: Sequence[str]) -> np.ndarray:
        """Alias of :meth:`batch_query` — the :class:`repro.api.PrivateCounter`
        spelling, so compiled and in-memory structures expose one batched
        query surface."""
        return self.batch_query(patterns)

    def _advance_sparse(self, nodes: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """One batch step by binary search on ``edge_keys`` — the fallback
        when the alphabet is too large for a dense transition table."""
        num_edges = self._edge_keys.size
        if num_edges == 0:
            return np.full(nodes.size, self._dead, dtype=np.int32)
        keys = nodes.astype(np.int64) * self._vocab_size + codes
        found_at = np.minimum(np.searchsorted(self._edge_keys, keys), num_edges - 1)
        # Code 0 (unknown character) never occurs among edge keys, and the
        # dead state's keys are past every real key, so misses stay dead.
        hit = self._edge_keys[found_at] == keys
        return np.where(hit, self._edge_targets[found_at], self._dead).astype(
            np.int32
        )

    # ------------------------------------------------------------------
    # Mining (post-processing, same contract as PrivateCountingTrie.mine)
    # ------------------------------------------------------------------
    def pattern_of(self, node: int) -> str:
        """The string spelled from the root to node ``node``."""
        chars: list[str] = []
        while node > 0:
            chars.append(self._chars[self._parent_codes[node]])
            node = int(self._parents[node])
        return "".join(reversed(chars))

    def mine(
        self,
        threshold: float,
        *,
        min_length: int = 1,
        max_length: int | None = None,
        exact_length: int | None = None,
    ) -> list[tuple[str, float]]:
        """All stored patterns whose noisy count reaches ``threshold``."""
        mask = ~np.isnan(self._counts)
        mask &= np.where(np.isnan(self._counts), -np.inf, self._counts) >= threshold
        mask &= self._depths >= max(1, min_length)
        if exact_length is not None:
            mask &= self._depths == exact_length
        if max_length is not None:
            mask &= self._depths <= max_length
        hits = np.flatnonzero(mask)
        results = [(self.pattern_of(int(v)), float(self._counts[v])) for v in hits]
        results.sort(key=lambda item: (-item[1], item[0]))
        return results

    def items(self) -> Iterator[tuple[str, float]]:
        """``(pattern, noisy count)`` pairs for every stored node."""
        for node in np.flatnonzero(~np.isnan(self._counts)):
            if node > 0:
                yield self.pattern_of(int(node)), float(self._counts[node])

    # ------------------------------------------------------------------
    # Payloads (repro.api.PrivateCounter)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """The same payload :meth:`PrivateCountingTrie.to_dict` produces for
        the source structure (both assemble it through
        :func:`repro.core.private_trie.release_payload`) — compiling is
        lossless for everything a release carries (stored counts, metadata,
        report), so a compiled trie can be persisted and shipped through the
        same stores."""
        root_count = float(self._counts[0])
        return release_payload(
            {pattern: count for pattern, count in self.items()},
            None if math.isnan(root_count) else root_count,
            self.metadata,
            self.report,
        )

    def to_json(self) -> str:
        """Canonical JSON of :meth:`to_payload` — byte-identical to the
        source structure's :meth:`PrivateCountingTrie.to_json`, which is what
        lets :meth:`repro.serving.ReleaseStore.save` accept compiled tries
        directly."""
        return payload_json(self.to_payload())

    def content_digest(self) -> str:
        """SHA-256 of :meth:`to_json` (equal to the source structure's)."""
        return payload_digest(self.to_json())

    def release(self, store, name: str = "release", *, format: str | None = None):
        """Persist this compiled trie as the next version of release
        ``name`` in ``store`` (same contract as
        :meth:`PrivateCountingTrie.release`; binary saves serialize the
        arrays directly, with no object-trie detour)."""
        if format is not None:
            return store.save(name, self, format=format)
        return store.save(name, self)

    @classmethod
    def from_payload(cls, payload: dict, *, cache_size: int = 4096) -> "CompiledTrie":
        """Compile a structure straight from a :meth:`to_payload` /
        ``PrivateCountingTrie.to_dict`` payload."""
        return cls.from_structure(
            PrivateCountingTrie.from_dict(payload), cache_size=cache_size
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self._counts.size)

    @property
    def num_stored_patterns(self) -> int:
        stored = ~np.isnan(self._counts)
        stored[0] = False
        return int(stored.sum())

    @property
    def error_bound(self) -> float:
        return self.metadata.error_bound

    def arrays(self) -> dict[str, np.ndarray]:
        """The nine canonical flat arrays by name, in the fixed column order
        the binary release format (:mod:`repro.serving.binfmt`) serializes
        them in.  These — plus vocab, metadata and report — fully determine
        the compiled trie; every other array is a derived view."""
        return {
            "counts": self._counts,
            "depths": self._depths,
            "parents": self._parents,
            "parent_codes": self._parent_codes,
            "child_start": self._child_start,
            "child_end": self._child_end,
            "edge_keys": self._edge_keys,
            "edge_labels": self._edge_labels,
            "edge_targets": self._edge_targets,
        }

    def _shared_arrays(self) -> tuple[np.ndarray, ...]:
        """Every numpy array reachable by more than one serving thread.

        Lazily built views are included only once built — checking a fresh
        (e.g. just-mmap'd) instance must not force their construction.
        """
        arrays = list(self.arrays().values())
        arrays.append(self._code_table)
        lazy = self._lazy
        if lazy.counts_ext is not None:
            arrays.append(lazy.counts_ext)
        if lazy.counts_zero is not None:
            arrays.append(lazy.counts_zero)
        if lazy.transitions is not _UNSET and lazy.transitions is not None:
            arrays.append(lazy.transitions)
        return tuple(arrays)

    def assert_immutable(self) -> None:
        """Raise :class:`AssertionError` unless every shared array (and
        every published uniform gather index) is read-only — the snapshot
        guarantee concurrent query paths rely on.  Raised explicitly (not
        via ``assert``) so the check survives ``python -O``."""
        for array in self._shared_arrays():
            if array.flags.writeable:
                raise AssertionError("shared compiled array is writable")
        with self._uniform_lock:
            cached = list(self._uniform_cache.values())
        for index in cached:
            if index.flags.writeable:
                raise AssertionError("published gather index is writable")

    @property
    def nbytes(self) -> int:
        """Total array storage of the compiled form."""
        total = sum(array.nbytes for array in self._shared_arrays())
        with self._uniform_lock:
            total += sum(index.nbytes for index in self._uniform_cache.values())
        return int(total)

    def cache_info(self) -> CacheInfo:
        with self._cache_lock:
            return CacheInfo(
                hits=self._cache_hits,
                misses=self._cache_misses,
                size=len(self._cache),
                max_size=self._cache_max,
            )

    def cache_clear(self) -> None:
        with self._cache_lock:
            self._cache.clear()
            self._cache_hits = 0
            self._cache_misses = 0
