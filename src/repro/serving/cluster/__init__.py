"""``repro.serving.cluster`` — the sharded multi-process serving tier.

A hierarchy-of-coordinators over the single-process server: a root
:class:`Router` on the public port delegates to per-shard worker processes,
each an ordinary :class:`~repro.serving.server.QueryService` over the same
mmap'd ``.dpsb`` release (~one resident copy regardless of worker count).

* :mod:`repro.serving.cluster.workers` — spawn-safe worker processes,
  readiness handshake, orphan prevention, the pool and the router's
  worker table;
* :mod:`repro.serving.cluster.router` — raw-passthrough proxying,
  stable-hash batch splitting, straggler micro-batching, retry-on-crash,
  tier-wide ``/metrics`` and ``/healthz``;
* :mod:`repro.serving.cluster.supervisor` — :class:`Cluster`: lifecycle,
  heartbeat monitoring, crash respawn, atomic hot reload, graceful drain.

Entry points: ``Cluster(store, workers=N).start()`` in-process, or
``dpsc serve --store ... --workers N`` from the command line.
"""

from repro.serving.cluster.router import (
    Router,
    RouterHTTPError,
    create_router_server,
    shard_of,
)
from repro.serving.cluster.supervisor import Cluster
from repro.serving.cluster.workers import (
    WorkerHandle,
    WorkerPool,
    WorkerTable,
    worker_main,
)

__all__ = [
    "Cluster",
    "Router",
    "RouterHTTPError",
    "WorkerHandle",
    "WorkerPool",
    "WorkerTable",
    "create_router_server",
    "shard_of",
    "worker_main",
]
