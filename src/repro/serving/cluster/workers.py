"""Pre-forked query workers: spawn, liveness, respawn, drain.

One worker is one OS process running the plain single-process server
(:func:`repro.serving.server.create_server` over a
:class:`~repro.serving.server.QueryService`) on an ephemeral localhost
port.  Every worker of a generation opens the *same* pinned release
versions with ``mmap=True``, so N workers cost ~one resident copy of the
release: the ``.dpsb`` pages live once in the page cache and every process
maps them read-only (PR 7's measurement, now multiplied by the pool).

Process discipline (all of it load-bearing for the cluster tests):

* **spawn, not fork** — workers start through the ``spawn`` start method,
  so they never inherit the supervisor's locks, sockets or numpy state
  mid-operation; everything a worker needs travels as a picklable config
  dict plus one duplex control pipe.
* **readiness handshake** — the child builds its service, binds port 0 and
  reports ``("ready", port)`` (or ``("error", message)``) before the
  supervisor counts it as a member; a worker that cannot load the release
  never receives traffic.
* **orphan prevention** — a daemon thread in the worker blocks on the
  control pipe.  If the supervisor dies — even ``kill -9``, where no
  cleanup runs — the OS closes the pipe, the read raises ``EOFError`` and
  the worker ``os._exit``\\ s.  Routers crash; workers must not linger.
* **graceful drain** — a ``"stop"`` control message (or SIGTERM directly
  to the worker) stops accepting, joins in-flight handler threads and
  flushes the micro-batcher before the process exits, the same drain
  order as the single-process path.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
import urllib.error
import urllib.request
from typing import Mapping

from repro.exceptions import ReproError

__all__ = ["WorkerHandle", "WorkerPool", "WorkerTable", "worker_main"]

#: Workers are spawned, never forked: a forked child would inherit the
#: supervisor's lock and socket state at an arbitrary instant.
SPAWN = multiprocessing.get_context("spawn")


def _watch_control(conn, server) -> None:
    """Worker-side control loop: drain on ``"stop"``, die with the parent.

    Runs on a daemon thread so a blocked ``recv`` never holds the worker
    open.  EOF/OSError means the supervisor process is gone (closed pipe —
    including ``kill -9``, where nothing else would tell us): exit
    immediately rather than serve as an orphan nobody routes to or reaps.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            os._exit(3)
        if message == "stop":
            # shutdown() blocks until serve_forever exits; the main thread
            # then finishes the drain (join handlers, flush micro-batches).
            server.shutdown()
            return


def worker_main(config: dict, conn) -> None:
    """Entry point of one spawned worker process.

    ``config`` is a plain picklable dict: ``store_root``, ``versions``
    (name -> pinned version), ``mmap``, ``micro_batch``, ``host``,
    ``cache_size``.  ``conn`` is the child end of the control pipe.
    """
    # Imports happen in the child (spawn re-imports the world anyway); kept
    # inside the function so importing this module stays cheap.
    from repro import faults
    from repro.serving.server import QueryService, create_server, install_graceful_shutdown
    from repro.serving.store import ReleaseStore

    try:
        # Chaos schedules travel by environment (spawn inherits os.environ):
        # DPSC_FAULTS / _SEED / _SCOPE / _LOG arm this worker's failpoints
        # before any release is loaded, so every site is in scope.
        faults.arm_from_env()
        store = ReleaseStore(config["store_root"])
        service = QueryService.from_store(
            store,
            versions={name: int(v) for name, v in config["versions"].items()},
            mmap=bool(config.get("mmap", True)),
            micro_batch=bool(config.get("micro_batch", False)),
        )
        server = create_server(service, config.get("host", "127.0.0.1"), 0)
    except Exception as error:  # noqa: BLE001 - reported to the supervisor
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except (OSError, ValueError):
            pass
        os._exit(1)
    watcher = threading.Thread(
        target=_watch_control, args=(conn, server), name="repro-worker-control",
        daemon=True,
    )
    watcher.start()
    restore = install_graceful_shutdown(server.shutdown)
    conn.send(("ready", int(server.server_address[1])))
    try:
        server.serve_forever()
    finally:
        restore()
        server.server_close()  # block_on_close joins in-flight handlers
        service.close()  # flushes queued micro-batches
        try:
            conn.send(("stopped",))
        except (OSError, ValueError):
            pass


class WorkerHandle:
    """Supervisor-side view of one worker process."""

    def __init__(
        self,
        worker_id: str,
        generation: int,
        process,
        conn,
        port: int,
    ) -> None:
        self.worker_id = worker_id
        self.generation = generation
        self.process = process
        self.conn = conn
        self.port = port
        self.started_at = time.time()
        #: consecutive failed heartbeats (reset on success); the monitor
        #: respawns a worker that misses several in a row even while its
        #: process object still reports alive (wedged, not dead).
        self.missed_heartbeats = 0

    @property
    def pid(self) -> int | None:
        return self.process.pid

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def heartbeat(self, timeout: float = 2.0) -> bool:
        """One HTTP liveness probe (``/healthz`` answers and parses)."""
        try:
            with urllib.request.urlopen(
                f"{self.base_url}/healthz", timeout=timeout
            ) as response:
                return json.loads(response.read().decode("utf-8")).get("status") == "ok"
        except (urllib.error.URLError, OSError, ValueError):
            return False

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful drain, escalating to terminate/kill on a deadline."""
        if self.process.is_alive():
            try:
                self.conn.send("stop")
            except (OSError, ValueError):
                pass
            self.process.join(timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(2.0)
            if self.process.is_alive():  # pragma: no cover - last resort
                self.process.kill()
                self.process.join(2.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def kill(self) -> None:
        """SIGKILL, no drain — the crash the respawn path exists for."""
        if self.process.is_alive():
            self.process.kill()
            self.process.join(2.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive() else "dead"
        return (
            f"WorkerHandle({self.worker_id}, gen={self.generation}, "
            f"port={self.port}, pid={self.pid}, {state})"
        )


class WorkerPool:
    """Spawns workers over one release store; owns no routing policy."""

    def __init__(
        self,
        store_root,
        *,
        host: str = "127.0.0.1",
        mmap: bool = True,
        worker_micro_batch: bool = False,
        cache_size: int = 4096,
        spawn_timeout: float = 60.0,
    ) -> None:
        self.store_root = str(store_root)
        self.host = host
        self.mmap = mmap
        self.worker_micro_batch = worker_micro_batch
        self.cache_size = cache_size
        self.spawn_timeout = spawn_timeout
        self._sequence = 0
        self._lock = threading.Lock()

    def _next_id(self) -> str:
        with self._lock:
            worker_id = f"w{self._sequence}"
            self._sequence += 1
            return worker_id

    def _config(self, versions: Mapping[str, int]) -> dict:
        return {
            "store_root": self.store_root,
            "versions": {name: int(v) for name, v in versions.items()},
            "mmap": self.mmap,
            "micro_batch": self.worker_micro_batch,
            "host": self.host,
            "cache_size": self.cache_size,
        }

    def spawn_worker(
        self, versions: Mapping[str, int], generation: int
    ) -> WorkerHandle:
        """One ready worker (readiness handshake completed), or raise."""
        return self.spawn_generation(versions, generation, 1)[0]

    def spawn_generation(
        self, versions: Mapping[str, int], generation: int, count: int
    ) -> list[WorkerHandle]:
        """``count`` ready workers serving the same pinned ``versions``.

        All processes start before any readiness is awaited, so a
        generation of N costs one interpreter cold-start, not N in series.
        On any failure every already-started member is torn down — a
        generation is all-ready or absent, never half-alive.
        """
        config = self._config(versions)
        started: list[tuple[str, object, object]] = []
        try:
            for _ in range(count):
                worker_id = self._next_id()
                parent_conn, child_conn = SPAWN.Pipe(duplex=True)
                process = SPAWN.Process(
                    target=worker_main,
                    args=(config, child_conn),
                    name=f"repro-cluster-{worker_id}",
                    daemon=True,
                )
                process.start()
                child_conn.close()  # parent copy; EOF detection needs it gone
                started.append((worker_id, process, parent_conn))
            handles = []
            deadline = time.monotonic() + self.spawn_timeout
            for worker_id, process, parent_conn in started:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not parent_conn.poll(remaining):
                    raise ReproError(
                        f"worker {worker_id} did not become ready within "
                        f"{self.spawn_timeout:.0f}s"
                    )
                message = parent_conn.recv()
                if message[0] != "ready":
                    raise ReproError(
                        f"worker {worker_id} failed to start: {message[1]}"
                    )
                handles.append(
                    WorkerHandle(
                        worker_id, generation, process, parent_conn, int(message[1])
                    )
                )
            return handles
        except BaseException:
            for _, process, parent_conn in started:
                if process.is_alive():
                    process.terminate()
                    process.join(2.0)
                try:
                    parent_conn.close()
                except OSError:  # pragma: no cover
                    pass
            raise


class WorkerTable:
    """The router's atomic view of the active worker generation.

    One lock, one list: ``swap`` replaces the whole generation (hot
    reload), ``replace`` swaps a single respawned member in.  The router
    only ever reads a snapshot (``live()``), so a swap mid-request simply
    means retries land on the new generation.  ``note_failure`` is the
    router -> supervisor fast path: a connection failure wakes the monitor
    immediately instead of waiting out the heartbeat interval.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._workers: list[WorkerHandle] = []
        self.generation = 0
        self.versions: dict[str, int] = {}
        #: supervisor wake-up callback, set by the cluster once the monitor
        #: exists (``None`` before start / after stop).
        self.on_failure = None

    def swap(
        self,
        workers: list[WorkerHandle],
        generation: int,
        versions: Mapping[str, int],
    ) -> list[WorkerHandle]:
        with self._lock:
            old = self._workers
            self._workers = list(workers)
            self.generation = generation
            self.versions = dict(versions)
            return old

    def replace(self, old: WorkerHandle, new: WorkerHandle) -> bool:
        with self._lock:
            try:
                index = self._workers.index(old)
            except ValueError:
                return False  # superseded by a generation swap meanwhile
            self._workers[index] = new
            return True

    def workers(self) -> list[WorkerHandle]:
        with self._lock:
            return list(self._workers)

    def live(self) -> list[WorkerHandle]:
        return [worker for worker in self.workers() if worker.is_alive()]

    def note_failure(self, worker: WorkerHandle) -> None:
        callback = self.on_failure
        if callback is not None:
            callback(worker)
