"""The cluster supervisor: one object that owns the whole serving tier.

:class:`Cluster` wires the pieces together — a :class:`WorkerPool` spawning
generations of workers, the :class:`WorkerTable` the router reads, the
:class:`Router` on the public port, and a monitor thread — and owns the
three lifecycle stories the tier promises:

**Crash recovery.**  The monitor wakes on a heartbeat interval *and*
immediately whenever the router hits a connection failure
(``WorkerTable.note_failure``), so a ``kill -9``'d worker is respawned
while the router's retry deadline is still running: the in-flight batch
retries onto a surviving (or freshly respawned) worker and the client sees
a complete, bit-identical response — just slower.  Liveness is checked two
ways: ``Process.is_alive`` (catches process death instantly) and a rate-
limited HTTP ``/healthz`` probe (catches a wedged-but-running worker after
``heartbeat_misses`` consecutive failures).

**Hot reload.**  ``reload()`` resolves the store's current versions; when
they differ from the served generation it spawns a *complete new
generation* (all-ready or the reload fails and the old generation keeps
serving), atomically swaps the router's table pointer, then gracefully
drains the old workers.  Requests in flight on old workers finish (worker
drain joins its handler threads); requests racing the swap retry onto the
new generation.  Nothing is dropped, and no moment exists where a client
can observe a mix of versions in one response.

**Graceful shutdown.**  ``stop()`` drains outside-in: stop accepting at the
router, join the router's in-flight handlers (which may still need
workers), close the router's batcher, *then* drain the workers.  SIGTERM on
``serve_forever`` triggers exactly this path via the same
:func:`~repro.serving.server.install_graceful_shutdown` hook as the
single-process server.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Sequence

from repro.exceptions import ReleaseNotFoundError, ReproError
from repro.serving.cluster.router import Router, create_router_server
from repro.serving.cluster.workers import WorkerHandle, WorkerPool, WorkerTable
from repro.serving.server import install_graceful_shutdown
from repro.serving.store import ReleaseStore

__all__ = ["Cluster"]


class Cluster:
    """A sharded serving tier: router + N workers over one release store."""

    def __init__(
        self,
        store: ReleaseStore | str | Path,
        names: Sequence[str] | None = None,
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        mmap: bool = True,
        micro_batch: bool = True,
        worker_micro_batch: bool = False,
        max_batch: int = 256,
        max_wait: float = 0.002,
        split_min_patterns: int = 512,
        heartbeat_interval: float = 0.25,
        http_heartbeat_interval: float = 2.0,
        heartbeat_misses: int = 3,
        heartbeat_timeout: float = 5.0,
        spawn_timeout: float = 60.0,
        retry_timeout: float = 15.0,
        max_inflight: int | None = 256,
        shed_retry_after: float = 0.25,
        breaker_threshold: int = 5,
        breaker_recovery: float = 1.0,
        verbose: bool = False,
    ) -> None:
        if workers < 1:
            raise ReproError("a cluster needs at least one worker")
        self.store = store if isinstance(store, ReleaseStore) else ReleaseStore(store)
        self.names = list(names) if names else None
        self.num_workers = workers
        self.host = host
        self.requested_port = port
        self.verbose = verbose
        self.heartbeat_interval = heartbeat_interval
        self.http_heartbeat_interval = http_heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self.heartbeat_timeout = heartbeat_timeout
        self._pool = WorkerPool(
            self.store.root,
            host="127.0.0.1",
            mmap=mmap,
            worker_micro_batch=worker_micro_batch,
            spawn_timeout=spawn_timeout,
        )
        self.table = WorkerTable()
        self.router = Router(
            self.table,
            micro_batch=micro_batch,
            max_batch=max_batch,
            max_wait=max_wait,
            split_min_patterns=split_min_patterns,
            retry_timeout=retry_timeout,
            max_inflight=max_inflight,
            shed_retry_after=shed_retry_after,
            breaker_threshold=breaker_threshold,
            breaker_recovery=breaker_recovery,
        )
        self._server = None
        self._serve_thread: threading.Thread | None = None
        self._monitor_thread: threading.Thread | None = None
        self._reload_lock = threading.Lock()
        self._stopping = threading.Event()
        self._stop_requested = threading.Event()
        self._wake = threading.Event()
        self._respawns = 0
        self._last_probe: dict[str, float] = {}
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _resolve_versions(self) -> dict[str, int]:
        names = self.names if self.names else self.store.names()
        if not names:
            raise ReleaseNotFoundError(
                f"store {self.store.root} holds no releases"
            )
        return {name: self.store.resolve_version(name) for name in names}

    def start(self) -> "Cluster":
        if self._started:
            return self
        versions = self._resolve_versions()
        handles = self._pool.spawn_generation(versions, 1, self.num_workers)
        self.table.swap(handles, 1, versions)
        self.router.reload_fn = self.reload
        self.router.respawns_fn = lambda: self._respawns
        self.table.on_failure = self._note_failure
        self._server = create_router_server(
            self.router, self.host, self.requested_port, verbose=self.verbose
        )
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-cluster-router",
            daemon=True,
        )
        self._serve_thread.start()
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="repro-cluster-monitor", daemon=True
        )
        self._monitor_thread.start()
        self._started = True
        return self

    @property
    def port(self) -> int:
        if self._server is None:
            raise ReproError("cluster is not started")
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def generation(self) -> int:
        return self.table.generation

    @property
    def respawns(self) -> int:
        return self._respawns

    def workers(self) -> list[WorkerHandle]:
        return self.table.workers()

    # ------------------------------------------------------------------
    # Monitoring / crash recovery
    # ------------------------------------------------------------------
    def _note_failure(self, worker: WorkerHandle) -> None:  # noqa: ARG002
        self._wake.set()

    def _monitor(self) -> None:
        while not self._stopping.is_set():
            self._wake.wait(timeout=self.heartbeat_interval)
            self._wake.clear()
            if self._stopping.is_set():
                return
            try:
                self._check_workers()
            except Exception:  # noqa: BLE001 - the monitor must survive
                if self.verbose:  # pragma: no cover
                    import traceback

                    traceback.print_exc()

    def _check_workers(self) -> None:
        now = time.monotonic()
        for worker in self.table.workers():
            if worker.generation != self.table.generation:
                continue  # an old generation draining; not ours to police
            if not worker.is_alive():
                self._respawn(worker)
                continue
            last = self._last_probe.get(worker.worker_id, 0.0)
            if now - last < self.http_heartbeat_interval:
                continue
            self._last_probe[worker.worker_id] = now
            if worker.heartbeat(timeout=self.heartbeat_timeout):
                worker.missed_heartbeats = 0
            else:
                worker.missed_heartbeats += 1
                if worker.missed_heartbeats >= self.heartbeat_misses:
                    # alive but wedged: reclaim the slot the hard way
                    worker.kill()
                    self._respawn(worker)

    def _respawn(self, dead: WorkerHandle) -> None:
        versions = dict(self.table.versions)
        generation = self.table.generation
        try:
            replacement = self._pool.spawn_worker(versions, generation)
        except ReproError:
            # store vanished or resources exhausted; the next monitor pass
            # retries, and the router keeps retrying surviving workers.
            return
        if self.table.replace(dead, replacement):
            self._respawns += 1
            self._last_probe.pop(dead.worker_id, None)
        else:  # a generation swap won the race; the newcomer is surplus
            replacement.stop(timeout=5.0)
        try:
            dead.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        dead.process.join(timeout=0)

    # ------------------------------------------------------------------
    # Hot reload
    # ------------------------------------------------------------------
    def reload(self) -> dict:
        """Serve the store's *current* versions, atomically and losslessly.

        Returns a summary dict (also the ``/admin/reload`` response body).
        No-op when the resolved versions already match the active
        generation.
        """
        with self._reload_lock:
            versions = self._resolve_versions()
            if versions == self.table.versions:
                return {
                    "reloaded": False,
                    "generation": self.table.generation,
                    "versions": versions,
                }
            generation = self.table.generation + 1
            handles = self._pool.spawn_generation(
                versions, generation, self.num_workers
            )
            old = self.table.swap(handles, generation, versions)
            self._drain_workers(old)
            return {
                "reloaded": True,
                "generation": generation,
                "versions": versions,
            }

    @staticmethod
    def _drain_workers(workers: list[WorkerHandle], timeout: float = 30.0) -> None:
        threads = [
            threading.Thread(target=worker.stop, kwargs={"timeout": timeout})
            for worker in workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout + 5.0)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Graceful outside-in drain; idempotent."""
        if self._stopped or not self._started:
            self._stopped = True
            return
        self._stopped = True
        self._stopping.set()
        self._wake.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=10.0)
        # Stop accepting, then join in-flight router handlers — they may
        # still need workers, so workers drain last.
        self._server.shutdown()
        self._server.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
        self.router.close()
        self.table.on_failure = None
        self._drain_workers(self.table.swap([], self.table.generation, {}))

    def _request_stop(self) -> None:
        self._stop_requested.set()

    def serve_forever(self) -> None:  # pragma: no cover - CLI entry point
        """Block until SIGTERM/SIGINT (or KeyboardInterrupt), then drain."""
        if not self._started:
            self.start()
        restore = install_graceful_shutdown(self._request_stop)
        try:
            while not self._stop_requested.wait(timeout=0.5):
                pass
        except KeyboardInterrupt:
            pass
        finally:
            restore()
            self.stop()

    # ------------------------------------------------------------------
    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
