"""The public-port router of the sharded serving tier.

One ``ThreadingHTTPServer`` that owns no release data at all: every count
comes from a worker.  Three request paths, ordered by how much the router
has to understand the bytes flowing through it:

* **passthrough** — ``/mine``, ``/releases`` and non-split ``/batch``
  requests are forwarded as the original raw bytes to one worker and the
  worker's response bytes are relayed verbatim.  Workers run the exact
  single-process handler code, so passthrough replies are bit-identical to
  the single-process server by construction.
* **split** — a uniform-length ``/batch`` of at least ``split_min_patterns``
  patterns is sharded across the live workers by a *stable hash of the
  pattern index* (:func:`shard_of` — deterministic across runs and
  processes, unlike ``hash()`` under ``PYTHONHASHSEED``), the sub-batches
  run concurrently, and the counts are scattered back into request order.
  Counts are deterministic post-processing of the released structure and
  JSON floats round-trip exactly through ``repr``, so the reassembled body
  is byte-identical to the single-process answer for the same request.
* **micro-batch** — concurrent single ``/query`` requests coalesce in a
  router-side batcher (same eager-flush design as the in-process
  :class:`~repro.serving.server.MicroBatcher`) and ride one worker
  ``/batch`` call instead of N worker round-trips.

Failure policy: every endpoint is an idempotent read (queries are
post-processing; the only server-side state is counters), so a connection
failure mid-request is retried on another live worker until
``retry_timeout`` — a ``kill -9`` mid-batch costs latency, never a lost or
wrong answer.  Failures also wake the supervisor immediately
(:meth:`WorkerTable.note_failure`) so the respawn races the retry deadline.

Observability: the router keeps its own registry under ``dpsc_router_*``
names (so tier-wide merges never double-count worker ``dpsc_*`` series) and
``/metrics`` scrapes every live worker's JSON snapshot, merging via
:func:`repro.obs.merge_snapshots` — counters sum, histograms bucket-merge,
gauges stay per-worker.  ``/healthz`` reports router-edge traffic counters
under the same keys as the single-process server, which keeps the load
test's exact counter-delta checks meaningful for the whole tier.
"""

from __future__ import annotations

import contextlib
import http.client
import itertools
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import faults
from repro.obs import MetricsRegistry, log_buckets, merge_snapshots, render_snapshot
from repro.serving.cluster.workers import WorkerHandle, WorkerTable
from repro.serving.resilience import (
    DEADLINE_HEADER,
    AdmissionGate,
    CircuitBreaker,
    Deadline,
)

__all__ = ["Router", "RouterHTTPError", "create_router_server", "shard_of"]

_ENDPOINTS = ("query", "batch", "mine", "healthz")
_FLUSH_SIZE_BUCKETS = log_buckets(1.0, 512.0, 2.0)
#: connection-level failures worth retrying on another worker; an HTTP
#: *error response* is not among them — that is the worker answering.
_RETRYABLE = (OSError, http.client.HTTPException)

#: what :meth:`Router.forward_any` retries: the connection-level failures
#: plus injected faults from the ``router.relay`` failpoint (whatever their
#: configured exception kind, they model a failed relay, not a bad request).
_RELAY_RETRYABLE = (*_RETRYABLE, faults.FaultInjected, faults.FaultDropConnection)

#: Knuth's multiplicative constant (2^32 / phi); see :func:`shard_of`.
_HASH_MULTIPLIER = 2654435761

#: chaos-drill injection site: fires before each router -> worker HTTP
#: round-trip, so injected connection errors exercise the exact retry /
#: circuit-breaker path a crashed worker would.
_FP_RELAY = faults.failpoint(
    "router.relay", "Entry of every router -> worker HTTP round-trip."
)


def shard_of(index: int, shards: int) -> int:
    """Stable shard for a pattern index.

    A multiplicative hash rather than ``index % shards`` so shard loads stay
    balanced under any access pattern, and rather than ``hash()`` so the
    assignment is identical across processes and runs (``PYTHONHASHSEED``
    randomizes ``str`` hashes, and determinism here is part of the replay
    story).
    """
    return ((index * _HASH_MULTIPLIER) & 0xFFFFFFFF) % shards


def _error_message(body: bytes, status: int) -> str:
    """The worker's JSON error text, or a fallback for unparseable bodies."""
    try:
        message = json.loads(body.decode("utf-8")).get("error")
    except (ValueError, UnicodeDecodeError, AttributeError):
        message = None
    return message if isinstance(message, str) else f"upstream error (HTTP {status})"


class RouterHTTPError(Exception):
    """An error to relay to the client as a JSON ``{"error": ...}`` body.

    ``retry_after`` (fractional seconds) becomes a ``Retry-After`` response
    header — the router's hint to a resilient client about when a shed
    request is worth re-sending.
    """

    def __init__(
        self, status: int, message: str, *, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


class _PendingRouted:
    """One single-pattern query waiting for a router micro-batch flush."""

    __slots__ = ("pattern", "release", "event", "result", "error")

    def __init__(self, pattern: str, release: str | None) -> None:
        self.pattern = pattern
        self.release = release
        self.event = threading.Event()
        self.result: float = 0.0
        self.error: Exception | None = None


class RouterBatcher:
    """Micro-batches straggler ``/query`` traffic into worker ``/batch`` calls.

    The in-process :class:`~repro.serving.server.MicroBatcher` design with
    the flush retargeted at the tier: eager flushing (a lone request pays no
    artificial wait), coalescing under concurrency, grouped by release.  One
    flush is one worker round-trip regardless of how many clients piled up.
    """

    def __init__(
        self,
        router: "Router",
        *,
        max_batch: int = 256,
        max_wait: float = 0.002,
    ) -> None:
        self._router = router
        self._max_batch = max_batch
        self._max_wait = max_wait
        self._queue: list[_PendingRouted] = []
        self._condition = threading.Condition()
        self._closed = False
        metrics = router.metrics
        self._flushes = metrics.counter(
            "dpsc_router_microbatch_flushes_total",
            "Router micro-batch flushes executed.",
        )
        self._flushed_requests = metrics.counter(
            "dpsc_router_microbatch_requests_total",
            "Single queries answered through router micro-batch flushes.",
        )
        self._flush_size = metrics.histogram(
            "dpsc_router_microbatch_flush_size",
            "Requests coalesced per router micro-batch flush.",
            buckets=_FLUSH_SIZE_BUCKETS,
        )
        self._worker = threading.Thread(
            target=self._run, name="repro-router-microbatcher", daemon=True
        )
        self._worker.start()

    @property
    def batches_flushed(self) -> int:
        return int(self._flushes.value)

    @property
    def requests_batched(self) -> int:
        return int(self._flushed_requests.value)

    def submit(self, pattern: str, release: str | None) -> float:
        pending = _PendingRouted(pattern, release)
        with self._condition:
            if self._closed:
                raise RouterHTTPError(503, "router is shutting down")
            self._queue.append(pending)
            self._condition.notify()
        pending.event.wait()
        if pending.error is not None:
            raise pending.error
        return pending.result

    def close(self) -> None:
        with self._condition:
            self._closed = True
            self._condition.notify_all()
        self._worker.join(timeout=5.0)

    def _run(self) -> None:
        while True:
            with self._condition:
                while not self._queue and not self._closed:
                    self._condition.wait(timeout=self._max_wait)
                if self._closed and not self._queue:
                    return
                batch = self._queue[: self._max_batch]
                del self._queue[: len(batch)]
            if batch:
                self._flush(batch)

    def _flush(self, batch: list[_PendingRouted]) -> None:
        self._flushes.inc()
        self._flushed_requests.inc(len(batch))
        self._flush_size.observe(float(len(batch)))
        by_release: dict[str | None, list[_PendingRouted]] = {}
        for pending in batch:
            by_release.setdefault(pending.release, []).append(pending)
        for release, group in by_release.items():
            payload: dict = {"patterns": [pending.pattern for pending in group]}
            if release is not None:
                payload["release"] = release
            try:
                status, body = self._router.forward_any(
                    "POST", "/batch", json.dumps(payload).encode("utf-8")
                )
                if status != 200:
                    raise RouterHTTPError(status, _error_message(body, status))
                counts = json.loads(body.decode("utf-8"))["counts"]
                for pending, count in zip(group, counts):
                    pending.result = float(count)
            except Exception as error:  # propagate to every waiter
                for pending in group:
                    pending.error = error
            finally:
                for pending in group:
                    pending.event.set()


class Router:
    """Shards tier traffic over a :class:`WorkerTable`; owns no releases."""

    def __init__(
        self,
        table: WorkerTable,
        *,
        micro_batch: bool = True,
        max_batch: int = 256,
        max_wait: float = 0.002,
        split_min_patterns: int = 512,
        worker_timeout: float = 60.0,
        retry_timeout: float = 15.0,
        retry_wait: float = 0.05,
        scrape_timeout: float = 5.0,
        split_threads: int = 16,
        max_inflight: int | None = 256,
        shed_retry_after: float = 0.25,
        breaker_threshold: int = 5,
        breaker_recovery: float = 1.0,
        breaker_probes: int = 1,
    ) -> None:
        self.table = table
        self.split_min_patterns = split_min_patterns
        self.worker_timeout = worker_timeout
        self.retry_timeout = retry_timeout
        self.retry_wait = retry_wait
        self.scrape_timeout = scrape_timeout
        self.shed_retry_after = shed_retry_after
        self.breaker_threshold = breaker_threshold
        self.breaker_recovery = breaker_recovery
        self.breaker_probes = breaker_probes
        self.started_at = time.time()
        #: set by the supervisor once it exists; ``/admin/reload`` is a 503
        #: until then (a bare router has nothing to reload).
        self.reload_fn = None
        self.respawns_fn = lambda: 0
        self.metrics = MetricsRegistry()
        self._requests = {
            endpoint: self.metrics.counter(
                "dpsc_router_requests_total",
                "Requests accepted at the router, by endpoint.",
                {"endpoint": endpoint},
            )
            for endpoint in _ENDPOINTS
        }
        self._latency = {
            endpoint: self.metrics.histogram(
                "dpsc_router_request_seconds",
                "Router end-to-end request latency in seconds, by endpoint.",
                {"endpoint": endpoint},
            )
            for endpoint in _ENDPOINTS
        }
        self._batch_patterns = self.metrics.counter(
            "dpsc_router_batch_patterns_total",
            "Patterns accepted across all router /batch requests.",
        )
        self._split_batches = self.metrics.counter(
            "dpsc_router_split_batches_total",
            "Batches sharded across workers by pattern-index hash.",
        )
        self._split_subrequests = self.metrics.counter(
            "dpsc_router_split_subrequests_total",
            "Worker sub-requests issued by the batch splitter.",
        )
        self._retries = self.metrics.counter(
            "dpsc_router_retries_total",
            "Forward attempts that failed at the connection level and were retried.",
        )
        self._scrape_failures = self.metrics.counter(
            "dpsc_router_scrape_failures_total",
            "Worker /metrics scrapes that failed during aggregation.",
        )
        self._shed = self.metrics.counter(
            "dpsc_router_shed_total",
            "Requests refused with 503 + Retry-After by admission control.",
        )
        self._deadline_exceeded = self.metrics.counter(
            "dpsc_router_deadline_exceeded_total",
            "Requests refused or abandoned because their deadline expired.",
        )
        self._breaker_transitions = {
            state: self.metrics.counter(
                "dpsc_router_breaker_transitions_total",
                "Per-worker circuit-breaker state transitions, by new state.",
                {"to": state},
            )
            for state in (
                CircuitBreaker.CLOSED,
                CircuitBreaker.OPEN,
                CircuitBreaker.HALF_OPEN,
            )
        }
        #: one breaker per worker *port* (ports are unique per spawn, so a
        #: respawned worker always starts with a fresh closed breaker).
        self._breakers: dict[int, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._gate = AdmissionGate(max_inflight) if max_inflight else None
        if self._gate is not None:
            gate = self._gate
            self.metrics.gauge(
                "dpsc_router_inflight",
                "Requests currently admitted and in flight at the router.",
            ).set_function(lambda: float(gate.inflight))
        self.metrics.gauge(
            "dpsc_router_uptime_seconds", "Seconds since the router started."
        ).set_function(lambda: time.time() - self.started_at)
        self.metrics.gauge(
            "dpsc_router_workers_alive", "Live workers in the active generation."
        ).set_function(lambda: float(len(self.table.live())))
        self.metrics.gauge(
            "dpsc_router_generation", "Active worker generation number."
        ).set_function(lambda: float(self.table.generation))
        self.metrics.gauge(
            "dpsc_router_worker_respawns", "Workers respawned after crashes."
        ).set_function(lambda: float(self.respawns_fn()))
        self._rr = itertools.count()
        self._local = threading.local()
        self._executor = ThreadPoolExecutor(
            max_workers=split_threads, thread_name_prefix="repro-router-shard"
        )
        self._batcher = (
            RouterBatcher(self, max_batch=max_batch, max_wait=max_wait)
            if micro_batch
            else None
        )

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    @property
    def default_release(self) -> str | None:
        versions = self.table.versions
        return sorted(versions)[0] if versions else None

    @staticmethod
    def _new_connection(port: int, timeout: float) -> http.client.HTTPConnection:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
        conn.connect()
        # Nagle + the peer's delayed ACK costs ~40ms per request on a
        # reused keep-alive connection; queries are sub-millisecond.
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def _connection(self, port: int) -> http.client.HTTPConnection:
        pool = self._local.__dict__.setdefault("connections", {})
        conn = pool.get(port)
        if conn is None:
            conn = self._new_connection(port, self.worker_timeout)
            pool[port] = conn
        return conn

    def _drop_connection(self, port: int) -> None:
        pool = self._local.__dict__.setdefault("connections", {})
        conn = pool.pop(port, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - best effort
                pass

    def forward(
        self,
        worker: WorkerHandle,
        method: str,
        path: str,
        body: bytes | None = None,
        *,
        pooled: bool = True,
        timeout: float | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes]:
        """One HTTP round-trip to one worker; raises on connection failure.

        Pooled connections are keep-alive (workers speak HTTP/1.1) and
        thread-local, so handler threads and shard-executor threads never
        contend on a socket.  Unpooled mode is for scrapes, which want a
        short timeout instead of the batch-sized one.  ``headers`` rides on
        top of the defaults (deadline propagation uses it).
        """
        _FP_RELAY.hit()
        if pooled:
            conn = self._connection(worker.port)
        else:
            conn = self._new_connection(
                worker.port, timeout or self.scrape_timeout
            )
        try:
            send_headers = (
                {"Content-Type": "application/json"} if body is not None else {}
            )
            if headers:
                send_headers.update(headers)
            conn.request(method, path, body=body, headers=send_headers)
            response = conn.getresponse()
            data = response.read()
            status = response.status
        except BaseException:
            if pooled:
                self._drop_connection(worker.port)
            else:
                conn.close()
            raise
        if not pooled:
            conn.close()
        return status, data

    def _breaker(self, worker: WorkerHandle) -> CircuitBreaker:
        """The circuit breaker guarding one worker (keyed by port, so a
        respawned worker always starts with a fresh closed breaker)."""
        with self._breaker_lock:
            breaker = self._breakers.get(worker.port)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.breaker_threshold,
                    recovery_time=self.breaker_recovery,
                    half_open_max_probes=self.breaker_probes,
                    on_transition=lambda old, new: (
                        self._breaker_transitions[new].inc()
                    ),
                )
                self._breakers[worker.port] = breaker
                self.metrics.gauge(
                    "dpsc_router_breaker_state",
                    "Per-worker breaker state (0 closed, 1 half-open, 2 open).",
                    {"worker": worker.worker_id},
                ).set_function(lambda b=breaker: b.state_code)
            return breaker

    @contextlib.contextmanager
    def admission(self):
        """Admission control around one client request (load shedding).

        When more than ``max_inflight`` requests are already inside, the
        request is shed immediately with ``503 + Retry-After`` instead of
        queueing behind work the tier cannot absorb.
        """
        gate = self._gate
        if gate is None:
            yield
            return
        if not gate.try_enter():
            self._shed.inc()
            raise RouterHTTPError(
                503,
                f"router at capacity ({gate.limit} requests in flight)",
                retry_after=self.shed_retry_after,
            )
        try:
            yield
        finally:
            gate.leave()

    @staticmethod
    def _deadline_headers(deadline: Deadline | None) -> dict[str, str] | None:
        return (
            None
            if deadline is None
            else {DEADLINE_HEADER: deadline.header_value()}
        )

    def forward_any(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        *,
        preferred: WorkerHandle | None = None,
        deadline: Deadline | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes]:
        """Forward to some admitted live worker, retrying on failure.

        Safe because every endpoint is an idempotent read: re-executing a
        query on a second worker after the first died mid-response returns
        the same deterministic counts.  Candidates pass through their
        per-worker circuit breaker (an open breaker skips a worker that has
        recently failed repeatedly, instead of burning a timeout on it);
        worker 5xx responses count as breaker failures and are retried
        elsewhere, with the freshest 5xx relayed if retries run out.
        Blocks (bounded by ``retry_timeout``) while no worker is admitted,
        which is exactly the crash-respawn window — the supervisor races
        this deadline.  An expired request ``deadline`` stops the loop
        early with 504: nobody is waiting for the answer any more.
        """
        retry_deadline = time.monotonic() + self.retry_timeout
        tried: set[int] = set()
        last_error: tuple[int, bytes] | None = None
        use_preferred = preferred is not None
        while True:
            if deadline is not None and deadline.expired():
                self._deadline_exceeded.inc()
                raise RouterHTTPError(
                    504, f"deadline expired while forwarding {method} {path}"
                )
            worker = None
            breaker = None
            if use_preferred and preferred.is_alive():
                candidate_breaker = self._breaker(preferred)
                if candidate_breaker.try_acquire():
                    worker, breaker = preferred, candidate_breaker
            use_preferred = False
            if worker is None:
                workers = self.table.live()
                pool = [w for w in workers if w.port not in tried] or workers
                if pool:
                    start = next(self._rr)
                    for offset in range(len(pool)):
                        candidate = pool[(start + offset) % len(pool)]
                        candidate_breaker = self._breaker(candidate)
                        if candidate_breaker.try_acquire():
                            worker, breaker = candidate, candidate_breaker
                            break
            if worker is None:
                # nothing live, or every live worker's breaker is open
                if time.monotonic() >= retry_deadline:
                    if last_error is not None:
                        return last_error
                    raise RouterHTTPError(503, "no live workers to forward to")
                time.sleep(self.retry_wait)
                continue
            try:
                status, data = self.forward(
                    worker, method, path, body, headers=headers
                )
            except _RELAY_RETRYABLE:
                breaker.record_failure()
                tried.add(worker.port)
                self._retries.inc()
                self.table.note_failure(worker)
                if time.monotonic() >= retry_deadline:
                    if last_error is not None:
                        return last_error
                    raise RouterHTTPError(
                        503,
                        f"workers unavailable after retries on {method} {path}",
                    ) from None
                time.sleep(self.retry_wait)
                continue
            if status >= 500:
                # the worker answered, but with a server-side failure on an
                # idempotent read — count it against the breaker and retry
                # elsewhere; keep the freshest body in case retries run out.
                breaker.record_failure()
                last_error = (status, data)
                tried.add(worker.port)
                self._retries.inc()
                if time.monotonic() >= retry_deadline:
                    return last_error
                time.sleep(self.retry_wait)
                continue
            breaker.record_success()
            return status, data

    # ------------------------------------------------------------------
    # Endpoint logic (the handler below is a thin shim over these)
    # ------------------------------------------------------------------
    def route_query(
        self, pattern: str, release: str | None, deadline: Deadline | None = None
    ) -> float:
        self._requests["query"].inc()
        with self._latency["query"].time():
            if self._batcher is not None:
                # coalesced queries share a flush; the flush carries no
                # single request's deadline (workers answer micro-batches
                # in well under any sane per-request budget).
                return self._batcher.submit(pattern, release)
            payload: dict = {"pattern": pattern}
            if release is not None:
                payload["release"] = release
            status, body = self.forward_any(
                "POST",
                "/query",
                json.dumps(payload).encode("utf-8"),
                deadline=deadline,
                headers=self._deadline_headers(deadline),
            )
            if status != 200:
                raise RouterHTTPError(status, _error_message(body, status))
            return float(json.loads(body.decode("utf-8"))["count"])

    def route_batch(
        self,
        raw: bytes,
        payload: dict,
        patterns: list[str],
        release: str | None,
        deadline: Deadline | None = None,
    ) -> tuple[int, bytes]:
        """Dispatch one validated ``/batch``: split when profitable, else
        forward the original bytes untouched."""
        self._requests["batch"].inc()
        self._batch_patterns.inc(len(patterns))
        with self._latency["batch"].time():
            live = self.table.live()
            splittable = (
                len(live) > 1
                and len(patterns) >= self.split_min_patterns
                # uniform q-gram traffic: one pattern length across the batch
                and len({len(p) for p in patterns}) == 1
                # unknown extra keys must survive verbatim -> passthrough
                and set(payload) <= {"patterns", "release"}
            )
            if not splittable:
                return self.forward_any(
                    "POST",
                    "/batch",
                    raw,
                    deadline=deadline,
                    headers=self._deadline_headers(deadline),
                )
            return self._split_batch(live, patterns, release, deadline)

    def _split_batch(
        self,
        live: list[WorkerHandle],
        patterns: list[str],
        release: str | None,
        deadline: Deadline | None = None,
    ) -> tuple[int, bytes]:
        shards = len(live)
        assignment: list[list[tuple[int, str]]] = [[] for _ in range(shards)]
        for index, pattern in enumerate(patterns):
            assignment[shard_of(index, shards)].append((index, pattern))
        futures = []
        for shard_index, members in enumerate(assignment):
            if not members:
                continue
            sub: dict = {"patterns": [pattern for _, pattern in members]}
            if release is not None:
                sub["release"] = release
            futures.append(
                (
                    members,
                    self._executor.submit(
                        self.forward_any,
                        "POST",
                        "/batch",
                        json.dumps(sub).encode("utf-8"),
                        preferred=live[shard_index],
                        deadline=deadline,
                        headers=self._deadline_headers(deadline),
                    ),
                )
            )
        self._split_batches.inc()
        self._split_subrequests.inc(len(futures))
        counts = [0.0] * len(patterns)
        relay: tuple[int, bytes] | None = None
        for members, future in futures:
            try:
                status, body = future.result()
            except RouterHTTPError as error:
                # still join the remaining futures so no shard outlives the
                # request, then relay the first failure
                relay = relay or (
                    error.status,
                    json.dumps({"error": error.message}).encode("utf-8"),
                )
                continue
            if status != 200:
                # relay the first upstream error verbatim (still joining the
                # remaining futures so no shard outlives the request)
                relay = relay or (status, body)
                continue
            sub_counts = json.loads(body.decode("utf-8"))["counts"]
            for (index, _), count in zip(members, sub_counts):
                counts[index] = float(count)
        if relay is not None:
            return relay
        body = json.dumps(
            {"release": release or self.default_release, "counts": counts}
        ).encode("utf-8")
        return 200, body

    def route_mine(
        self, raw: bytes, deadline: Deadline | None = None
    ) -> tuple[int, bytes]:
        self._requests["mine"].inc()
        with self._latency["mine"].time():
            return self.forward_any(
                "POST",
                "/mine",
                raw,
                deadline=deadline,
                headers=self._deadline_headers(deadline),
            )

    def route_releases(self) -> tuple[int, bytes]:
        return self.forward_any("GET", "/releases")

    def health(self) -> dict:
        self._requests["healthz"].inc()
        with self._latency["healthz"].time():
            workers = self.table.workers()
            live = [worker for worker in workers if worker.is_alive()]
            payload = {
                "status": "ok" if workers and len(live) == len(workers) else "degraded",
                "role": "router",
                "uptime_seconds": time.time() - self.started_at,
                "releases": sorted(self.table.versions),
                "default_release": self.default_release,
                # Router-edge traffic counters under the single-process
                # keys: the load test's exact delta checks stay valid for
                # the tier even across worker crashes and reloads (worker
                # counters die with the worker; these do not).
                "queries": int(self._requests["query"].value),
                "batches": int(self._requests["batch"].value),
                "batch_patterns": int(self._batch_patterns.value),
                "mines": int(self._requests["mine"].value),
                "split_batches": int(self._split_batches.value),
                "retries": int(self._retries.value),
                "sheds": int(self._shed.value),
                "deadline_exceeded": int(self._deadline_exceeded.value),
                "workers": {
                    "total": len(workers),
                    "alive": len(live),
                    "generation": self.table.generation,
                    "respawns": int(self.respawns_fn()),
                    "versions": dict(self.table.versions),
                    "members": [
                        {
                            "id": worker.worker_id,
                            "generation": worker.generation,
                            "port": worker.port,
                            "pid": worker.pid,
                            "alive": worker.is_alive(),
                        }
                        for worker in workers
                    ],
                },
            }
            if self._batcher is not None:
                payload["micro_batches_flushed"] = self._batcher.batches_flushed
                payload["micro_batched_requests"] = self._batcher.requests_batched
            return payload

    def merged_snapshot(self) -> dict:
        """Router registry + every live worker's, merged tier-wide."""
        sources = [("router", self.metrics.snapshot())]
        for worker in self.table.live():
            try:
                status, body = self.forward(
                    worker, "GET", "/metrics?format=json", pooled=False
                )
                if status != 200:
                    raise ValueError(f"scrape returned HTTP {status}")
                sources.append((worker.worker_id, json.loads(body.decode("utf-8"))))
            except (*_RETRYABLE, ValueError, UnicodeDecodeError):
                self._scrape_failures.inc()
        return merge_snapshots(sources, label="worker")

    def render_metrics(self) -> str:
        return render_snapshot(self.merged_snapshot())

    def close(self) -> None:
        if self._batcher is not None:
            self._batcher.close()
            self._batcher = None
        self._executor.shutdown(wait=False)


class _RouterHandler(BaseHTTPRequestHandler):
    """Thin JSON shim over :class:`Router` — endpoint surface and error
    texts mirror the single-process handler so clients cannot tell the
    tiers apart (the parity tests assert this)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-dpsc-router"
    #: same rationale as the worker handler: keep-alive + Nagle + delayed
    #: ACK turns two-write responses into ~40ms stalls.
    disable_nagle_algorithm = True

    @property
    def router(self) -> Router:
        return self.server.router  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - BaseHTTPRequestHandler API
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _respond(self, payload: dict, status: int = 200) -> None:
        self._respond_raw(status, json.dumps(payload).encode("utf-8"))

    def _respond_raw(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self, message: str, status: int, retry_after: float | None = None
    ) -> None:
        body = json.dumps({"error": message}).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:g}")
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", "0"))
        return self.rfile.read(length) if length else b""

    def _request_deadline(self):
        """The request's :class:`Deadline` (or ``None``); raises 504 when it
        already expired — no point routing work nobody is waiting for."""
        deadline = Deadline.from_header(self.headers.get(DEADLINE_HEADER))
        if deadline is not None and deadline.expired():
            self.router._deadline_exceeded.inc()
            raise RouterHTTPError(
                504, "request deadline expired before routing began"
            )
        return deadline

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/healthz":
                self._respond(self.router.health())
            elif parsed.path == "/metrics":
                query = parse_qs(parsed.query)
                if query.get("format", [""])[0] == "json":
                    self._respond(self.router.merged_snapshot())
                else:
                    body = self.router.render_metrics().encode("utf-8")
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                    )
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
            elif parsed.path == "/releases":
                status, body = self.router.route_releases()
                self._respond_raw(status, body)
            elif parsed.path == "/query":
                deadline = self._request_deadline()
                query = parse_qs(parsed.query)
                pattern = query.get("pattern", [""])[0]
                release = query.get("release", [None])[0]
                with self.router.admission():
                    count = self.router.route_query(pattern, release, deadline)
                self._respond(
                    {
                        "pattern": pattern,
                        "release": release or self.router.default_release,
                        "count": count,
                    }
                )
            else:
                self._error(f"unknown path {parsed.path!r}", 404)
        except RouterHTTPError as error:
            self._error(error.message, error.status, error.retry_after)
        except Exception as error:  # noqa: BLE001 - JSON 500, not a raw traceback
            self._error(f"internal error: {error}", 500)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        raw = self._read_body()
        try:
            if self.path == "/mine":
                # Validation happens at the worker (identical handler code),
                # so error bodies relay verbatim without a router-side parse.
                deadline = self._request_deadline()
                with self.router.admission():
                    status, body = self.router.route_mine(raw, deadline)
                self._respond_raw(status, body)
                return
            if self.path == "/admin/reload":
                reload_fn = self.router.reload_fn
                if reload_fn is None:
                    self._error("reload is not available", 503)
                else:
                    self._respond(reload_fn())
                return
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (ValueError, UnicodeDecodeError):
                self._error("request body is not valid JSON", 400)
                return
            if not isinstance(payload, dict):
                self._error("request body must be a JSON object", 400)
                return
            release = payload.get("release")
            if self.path == "/query":
                pattern = payload.get("pattern")
                if not isinstance(pattern, str):
                    self._error("'pattern' must be a string", 400)
                    return
                deadline = self._request_deadline()
                with self.router.admission():
                    count = self.router.route_query(pattern, release, deadline)
                self._respond(
                    {
                        "pattern": pattern,
                        "release": release or self.router.default_release,
                        "count": count,
                    }
                )
            elif self.path == "/batch":
                patterns = payload.get("patterns")
                if not isinstance(patterns, list) or not all(
                    isinstance(p, str) for p in patterns
                ):
                    self._error("'patterns' must be a list of strings", 400)
                    return
                deadline = self._request_deadline()
                with self.router.admission():
                    status, body = self.router.route_batch(
                        raw, payload, patterns, release, deadline
                    )
                self._respond_raw(status, body)
            else:
                self._error(f"unknown path {self.path!r}", 404)
        except RouterHTTPError as error:
            self._error(error.message, error.status, error.retry_after)
        except Exception as error:  # noqa: BLE001 - JSON 500, not a raw traceback
            self._error(f"internal error: {error}", 500)


def create_router_server(
    router: Router,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-run public-port server bound to ``host:port`` (port 0
    picks a free port; read it back from ``server.server_address``)."""
    server = ThreadingHTTPServer((host, port), _RouterHandler)
    server.router = router  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server
