"""The public-port router of the sharded serving tier.

One ``ThreadingHTTPServer`` that owns no release data at all: every count
comes from a worker.  Three request paths, ordered by how much the router
has to understand the bytes flowing through it:

* **passthrough** — ``/mine``, ``/releases`` and non-split ``/batch``
  requests are forwarded as the original raw bytes to one worker and the
  worker's response bytes are relayed verbatim.  Workers run the exact
  single-process handler code, so passthrough replies are bit-identical to
  the single-process server by construction.
* **split** — a uniform-length ``/batch`` of at least ``split_min_patterns``
  patterns is sharded across the live workers by a *stable hash of the
  pattern index* (:func:`shard_of` — deterministic across runs and
  processes, unlike ``hash()`` under ``PYTHONHASHSEED``), the sub-batches
  run concurrently, and the counts are scattered back into request order.
  Counts are deterministic post-processing of the released structure and
  JSON floats round-trip exactly through ``repr``, so the reassembled body
  is byte-identical to the single-process answer for the same request.
* **micro-batch** — concurrent single ``/query`` requests coalesce in a
  router-side batcher (same eager-flush design as the in-process
  :class:`~repro.serving.server.MicroBatcher`) and ride one worker
  ``/batch`` call instead of N worker round-trips.

Failure policy: every endpoint is an idempotent read (queries are
post-processing; the only server-side state is counters), so a connection
failure mid-request is retried on another live worker until
``retry_timeout`` — a ``kill -9`` mid-batch costs latency, never a lost or
wrong answer.  Failures also wake the supervisor immediately
(:meth:`WorkerTable.note_failure`) so the respawn races the retry deadline.

Observability: the router keeps its own registry under ``dpsc_router_*``
names (so tier-wide merges never double-count worker ``dpsc_*`` series) and
``/metrics`` scrapes every live worker's JSON snapshot, merging via
:func:`repro.obs.merge_snapshots` — counters sum, histograms bucket-merge,
gauges stay per-worker.  ``/healthz`` reports router-edge traffic counters
under the same keys as the single-process server, which keeps the load
test's exact counter-delta checks meaningful for the whole tier.
"""

from __future__ import annotations

import http.client
import itertools
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.obs import MetricsRegistry, log_buckets, merge_snapshots, render_snapshot
from repro.serving.cluster.workers import WorkerHandle, WorkerTable

__all__ = ["Router", "RouterHTTPError", "create_router_server", "shard_of"]

_ENDPOINTS = ("query", "batch", "mine", "healthz")
_FLUSH_SIZE_BUCKETS = log_buckets(1.0, 512.0, 2.0)
#: connection-level failures worth retrying on another worker; an HTTP
#: *error response* is not among them — that is the worker answering.
_RETRYABLE = (OSError, http.client.HTTPException)

#: Knuth's multiplicative constant (2^32 / phi); see :func:`shard_of`.
_HASH_MULTIPLIER = 2654435761


def shard_of(index: int, shards: int) -> int:
    """Stable shard for a pattern index.

    A multiplicative hash rather than ``index % shards`` so shard loads stay
    balanced under any access pattern, and rather than ``hash()`` so the
    assignment is identical across processes and runs (``PYTHONHASHSEED``
    randomizes ``str`` hashes, and determinism here is part of the replay
    story).
    """
    return ((index * _HASH_MULTIPLIER) & 0xFFFFFFFF) % shards


def _error_message(body: bytes, status: int) -> str:
    """The worker's JSON error text, or a fallback for unparseable bodies."""
    try:
        message = json.loads(body.decode("utf-8")).get("error")
    except (ValueError, UnicodeDecodeError, AttributeError):
        message = None
    return message if isinstance(message, str) else f"upstream error (HTTP {status})"


class RouterHTTPError(Exception):
    """An error to relay to the client as a JSON ``{"error": ...}`` body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class _PendingRouted:
    """One single-pattern query waiting for a router micro-batch flush."""

    __slots__ = ("pattern", "release", "event", "result", "error")

    def __init__(self, pattern: str, release: str | None) -> None:
        self.pattern = pattern
        self.release = release
        self.event = threading.Event()
        self.result: float = 0.0
        self.error: Exception | None = None


class RouterBatcher:
    """Micro-batches straggler ``/query`` traffic into worker ``/batch`` calls.

    The in-process :class:`~repro.serving.server.MicroBatcher` design with
    the flush retargeted at the tier: eager flushing (a lone request pays no
    artificial wait), coalescing under concurrency, grouped by release.  One
    flush is one worker round-trip regardless of how many clients piled up.
    """

    def __init__(
        self,
        router: "Router",
        *,
        max_batch: int = 256,
        max_wait: float = 0.002,
    ) -> None:
        self._router = router
        self._max_batch = max_batch
        self._max_wait = max_wait
        self._queue: list[_PendingRouted] = []
        self._condition = threading.Condition()
        self._closed = False
        metrics = router.metrics
        self._flushes = metrics.counter(
            "dpsc_router_microbatch_flushes_total",
            "Router micro-batch flushes executed.",
        )
        self._flushed_requests = metrics.counter(
            "dpsc_router_microbatch_requests_total",
            "Single queries answered through router micro-batch flushes.",
        )
        self._flush_size = metrics.histogram(
            "dpsc_router_microbatch_flush_size",
            "Requests coalesced per router micro-batch flush.",
            buckets=_FLUSH_SIZE_BUCKETS,
        )
        self._worker = threading.Thread(
            target=self._run, name="repro-router-microbatcher", daemon=True
        )
        self._worker.start()

    @property
    def batches_flushed(self) -> int:
        return int(self._flushes.value)

    @property
    def requests_batched(self) -> int:
        return int(self._flushed_requests.value)

    def submit(self, pattern: str, release: str | None) -> float:
        pending = _PendingRouted(pattern, release)
        with self._condition:
            if self._closed:
                raise RouterHTTPError(503, "router is shutting down")
            self._queue.append(pending)
            self._condition.notify()
        pending.event.wait()
        if pending.error is not None:
            raise pending.error
        return pending.result

    def close(self) -> None:
        with self._condition:
            self._closed = True
            self._condition.notify_all()
        self._worker.join(timeout=5.0)

    def _run(self) -> None:
        while True:
            with self._condition:
                while not self._queue and not self._closed:
                    self._condition.wait(timeout=self._max_wait)
                if self._closed and not self._queue:
                    return
                batch = self._queue[: self._max_batch]
                del self._queue[: len(batch)]
            if batch:
                self._flush(batch)

    def _flush(self, batch: list[_PendingRouted]) -> None:
        self._flushes.inc()
        self._flushed_requests.inc(len(batch))
        self._flush_size.observe(float(len(batch)))
        by_release: dict[str | None, list[_PendingRouted]] = {}
        for pending in batch:
            by_release.setdefault(pending.release, []).append(pending)
        for release, group in by_release.items():
            payload: dict = {"patterns": [pending.pattern for pending in group]}
            if release is not None:
                payload["release"] = release
            try:
                status, body = self._router.forward_any(
                    "POST", "/batch", json.dumps(payload).encode("utf-8")
                )
                if status != 200:
                    raise RouterHTTPError(status, _error_message(body, status))
                counts = json.loads(body.decode("utf-8"))["counts"]
                for pending, count in zip(group, counts):
                    pending.result = float(count)
            except Exception as error:  # propagate to every waiter
                for pending in group:
                    pending.error = error
            finally:
                for pending in group:
                    pending.event.set()


class Router:
    """Shards tier traffic over a :class:`WorkerTable`; owns no releases."""

    def __init__(
        self,
        table: WorkerTable,
        *,
        micro_batch: bool = True,
        max_batch: int = 256,
        max_wait: float = 0.002,
        split_min_patterns: int = 512,
        worker_timeout: float = 60.0,
        retry_timeout: float = 15.0,
        retry_wait: float = 0.05,
        scrape_timeout: float = 5.0,
        split_threads: int = 16,
    ) -> None:
        self.table = table
        self.split_min_patterns = split_min_patterns
        self.worker_timeout = worker_timeout
        self.retry_timeout = retry_timeout
        self.retry_wait = retry_wait
        self.scrape_timeout = scrape_timeout
        self.started_at = time.time()
        #: set by the supervisor once it exists; ``/admin/reload`` is a 503
        #: until then (a bare router has nothing to reload).
        self.reload_fn = None
        self.respawns_fn = lambda: 0
        self.metrics = MetricsRegistry()
        self._requests = {
            endpoint: self.metrics.counter(
                "dpsc_router_requests_total",
                "Requests accepted at the router, by endpoint.",
                {"endpoint": endpoint},
            )
            for endpoint in _ENDPOINTS
        }
        self._latency = {
            endpoint: self.metrics.histogram(
                "dpsc_router_request_seconds",
                "Router end-to-end request latency in seconds, by endpoint.",
                {"endpoint": endpoint},
            )
            for endpoint in _ENDPOINTS
        }
        self._batch_patterns = self.metrics.counter(
            "dpsc_router_batch_patterns_total",
            "Patterns accepted across all router /batch requests.",
        )
        self._split_batches = self.metrics.counter(
            "dpsc_router_split_batches_total",
            "Batches sharded across workers by pattern-index hash.",
        )
        self._split_subrequests = self.metrics.counter(
            "dpsc_router_split_subrequests_total",
            "Worker sub-requests issued by the batch splitter.",
        )
        self._retries = self.metrics.counter(
            "dpsc_router_retries_total",
            "Forward attempts that failed at the connection level and were retried.",
        )
        self._scrape_failures = self.metrics.counter(
            "dpsc_router_scrape_failures_total",
            "Worker /metrics scrapes that failed during aggregation.",
        )
        self.metrics.gauge(
            "dpsc_router_uptime_seconds", "Seconds since the router started."
        ).set_function(lambda: time.time() - self.started_at)
        self.metrics.gauge(
            "dpsc_router_workers_alive", "Live workers in the active generation."
        ).set_function(lambda: float(len(self.table.live())))
        self.metrics.gauge(
            "dpsc_router_generation", "Active worker generation number."
        ).set_function(lambda: float(self.table.generation))
        self.metrics.gauge(
            "dpsc_router_worker_respawns", "Workers respawned after crashes."
        ).set_function(lambda: float(self.respawns_fn()))
        self._rr = itertools.count()
        self._local = threading.local()
        self._executor = ThreadPoolExecutor(
            max_workers=split_threads, thread_name_prefix="repro-router-shard"
        )
        self._batcher = (
            RouterBatcher(self, max_batch=max_batch, max_wait=max_wait)
            if micro_batch
            else None
        )

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    @property
    def default_release(self) -> str | None:
        versions = self.table.versions
        return sorted(versions)[0] if versions else None

    @staticmethod
    def _new_connection(port: int, timeout: float) -> http.client.HTTPConnection:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
        conn.connect()
        # Nagle + the peer's delayed ACK costs ~40ms per request on a
        # reused keep-alive connection; queries are sub-millisecond.
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def _connection(self, port: int) -> http.client.HTTPConnection:
        pool = self._local.__dict__.setdefault("connections", {})
        conn = pool.get(port)
        if conn is None:
            conn = self._new_connection(port, self.worker_timeout)
            pool[port] = conn
        return conn

    def _drop_connection(self, port: int) -> None:
        pool = self._local.__dict__.setdefault("connections", {})
        conn = pool.pop(port, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - best effort
                pass

    def forward(
        self,
        worker: WorkerHandle,
        method: str,
        path: str,
        body: bytes | None = None,
        *,
        pooled: bool = True,
        timeout: float | None = None,
    ) -> tuple[int, bytes]:
        """One HTTP round-trip to one worker; raises on connection failure.

        Pooled connections are keep-alive (workers speak HTTP/1.1) and
        thread-local, so handler threads and shard-executor threads never
        contend on a socket.  Unpooled mode is for scrapes, which want a
        short timeout instead of the batch-sized one.
        """
        if pooled:
            conn = self._connection(worker.port)
        else:
            conn = self._new_connection(
                worker.port, timeout or self.scrape_timeout
            )
        try:
            headers = {"Content-Type": "application/json"} if body is not None else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            status = response.status
        except BaseException:
            if pooled:
                self._drop_connection(worker.port)
            else:
                conn.close()
            raise
        if not pooled:
            conn.close()
        return status, data

    def forward_any(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        *,
        preferred: WorkerHandle | None = None,
    ) -> tuple[int, bytes]:
        """Forward to some live worker, retrying others on connection failure.

        Safe because every endpoint is an idempotent read: re-executing a
        query on a second worker after the first died mid-response returns
        the same deterministic counts.  Blocks (bounded by
        ``retry_timeout``) while no worker is live, which is exactly the
        crash-respawn window — the supervisor races this deadline.
        """
        deadline = time.monotonic() + self.retry_timeout
        tried: set[int] = set()
        use_preferred = preferred is not None
        while True:
            if use_preferred and preferred.is_alive():
                worker = preferred
            else:
                workers = self.table.live()
                pool = [w for w in workers if w.port not in tried] or workers
                if not pool:
                    if time.monotonic() >= deadline:
                        raise RouterHTTPError(
                            503, "no live workers to forward to"
                        )
                    time.sleep(self.retry_wait)
                    continue
                worker = pool[next(self._rr) % len(pool)]
            use_preferred = False
            try:
                return self.forward(worker, method, path, body)
            except _RETRYABLE:
                tried.add(worker.port)
                self._retries.inc()
                self.table.note_failure(worker)
                if time.monotonic() >= deadline:
                    raise RouterHTTPError(
                        503,
                        f"workers unavailable after retries on {method} {path}",
                    ) from None
                time.sleep(self.retry_wait)

    # ------------------------------------------------------------------
    # Endpoint logic (the handler below is a thin shim over these)
    # ------------------------------------------------------------------
    def route_query(self, pattern: str, release: str | None) -> float:
        self._requests["query"].inc()
        with self._latency["query"].time():
            if self._batcher is not None:
                return self._batcher.submit(pattern, release)
            payload: dict = {"pattern": pattern}
            if release is not None:
                payload["release"] = release
            status, body = self.forward_any(
                "POST", "/query", json.dumps(payload).encode("utf-8")
            )
            if status != 200:
                raise RouterHTTPError(status, _error_message(body, status))
            return float(json.loads(body.decode("utf-8"))["count"])

    def route_batch(
        self, raw: bytes, payload: dict, patterns: list[str], release: str | None
    ) -> tuple[int, bytes]:
        """Dispatch one validated ``/batch``: split when profitable, else
        forward the original bytes untouched."""
        self._requests["batch"].inc()
        self._batch_patterns.inc(len(patterns))
        with self._latency["batch"].time():
            live = self.table.live()
            splittable = (
                len(live) > 1
                and len(patterns) >= self.split_min_patterns
                # uniform q-gram traffic: one pattern length across the batch
                and len({len(p) for p in patterns}) == 1
                # unknown extra keys must survive verbatim -> passthrough
                and set(payload) <= {"patterns", "release"}
            )
            if not splittable:
                return self.forward_any("POST", "/batch", raw)
            return self._split_batch(live, patterns, release)

    def _split_batch(
        self, live: list[WorkerHandle], patterns: list[str], release: str | None
    ) -> tuple[int, bytes]:
        shards = len(live)
        assignment: list[list[tuple[int, str]]] = [[] for _ in range(shards)]
        for index, pattern in enumerate(patterns):
            assignment[shard_of(index, shards)].append((index, pattern))
        futures = []
        for shard_index, members in enumerate(assignment):
            if not members:
                continue
            sub: dict = {"patterns": [pattern for _, pattern in members]}
            if release is not None:
                sub["release"] = release
            futures.append(
                (
                    members,
                    self._executor.submit(
                        self.forward_any,
                        "POST",
                        "/batch",
                        json.dumps(sub).encode("utf-8"),
                        preferred=live[shard_index],
                    ),
                )
            )
        self._split_batches.inc()
        self._split_subrequests.inc(len(futures))
        counts = [0.0] * len(patterns)
        relay: tuple[int, bytes] | None = None
        for members, future in futures:
            status, body = future.result()
            if status != 200:
                # relay the first upstream error verbatim (still joining the
                # remaining futures so no shard outlives the request)
                relay = relay or (status, body)
                continue
            sub_counts = json.loads(body.decode("utf-8"))["counts"]
            for (index, _), count in zip(members, sub_counts):
                counts[index] = float(count)
        if relay is not None:
            return relay
        body = json.dumps(
            {"release": release or self.default_release, "counts": counts}
        ).encode("utf-8")
        return 200, body

    def route_mine(self, raw: bytes) -> tuple[int, bytes]:
        self._requests["mine"].inc()
        with self._latency["mine"].time():
            return self.forward_any("POST", "/mine", raw)

    def route_releases(self) -> tuple[int, bytes]:
        return self.forward_any("GET", "/releases")

    def health(self) -> dict:
        self._requests["healthz"].inc()
        with self._latency["healthz"].time():
            workers = self.table.workers()
            live = [worker for worker in workers if worker.is_alive()]
            payload = {
                "status": "ok" if workers and len(live) == len(workers) else "degraded",
                "role": "router",
                "uptime_seconds": time.time() - self.started_at,
                "releases": sorted(self.table.versions),
                "default_release": self.default_release,
                # Router-edge traffic counters under the single-process
                # keys: the load test's exact delta checks stay valid for
                # the tier even across worker crashes and reloads (worker
                # counters die with the worker; these do not).
                "queries": int(self._requests["query"].value),
                "batches": int(self._requests["batch"].value),
                "batch_patterns": int(self._batch_patterns.value),
                "mines": int(self._requests["mine"].value),
                "split_batches": int(self._split_batches.value),
                "retries": int(self._retries.value),
                "workers": {
                    "total": len(workers),
                    "alive": len(live),
                    "generation": self.table.generation,
                    "respawns": int(self.respawns_fn()),
                    "versions": dict(self.table.versions),
                    "members": [
                        {
                            "id": worker.worker_id,
                            "generation": worker.generation,
                            "port": worker.port,
                            "pid": worker.pid,
                            "alive": worker.is_alive(),
                        }
                        for worker in workers
                    ],
                },
            }
            if self._batcher is not None:
                payload["micro_batches_flushed"] = self._batcher.batches_flushed
                payload["micro_batched_requests"] = self._batcher.requests_batched
            return payload

    def merged_snapshot(self) -> dict:
        """Router registry + every live worker's, merged tier-wide."""
        sources = [("router", self.metrics.snapshot())]
        for worker in self.table.live():
            try:
                status, body = self.forward(
                    worker, "GET", "/metrics?format=json", pooled=False
                )
                if status != 200:
                    raise ValueError(f"scrape returned HTTP {status}")
                sources.append((worker.worker_id, json.loads(body.decode("utf-8"))))
            except (*_RETRYABLE, ValueError, UnicodeDecodeError):
                self._scrape_failures.inc()
        return merge_snapshots(sources, label="worker")

    def render_metrics(self) -> str:
        return render_snapshot(self.merged_snapshot())

    def close(self) -> None:
        if self._batcher is not None:
            self._batcher.close()
            self._batcher = None
        self._executor.shutdown(wait=False)


class _RouterHandler(BaseHTTPRequestHandler):
    """Thin JSON shim over :class:`Router` — endpoint surface and error
    texts mirror the single-process handler so clients cannot tell the
    tiers apart (the parity tests assert this)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-dpsc-router"
    #: same rationale as the worker handler: keep-alive + Nagle + delayed
    #: ACK turns two-write responses into ~40ms stalls.
    disable_nagle_algorithm = True

    @property
    def router(self) -> Router:
        return self.server.router  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - BaseHTTPRequestHandler API
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _respond(self, payload: dict, status: int = 200) -> None:
        self._respond_raw(status, json.dumps(payload).encode("utf-8"))

    def _respond_raw(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, message: str, status: int) -> None:
        self._respond({"error": message}, status=status)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", "0"))
        return self.rfile.read(length) if length else b""

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/healthz":
                self._respond(self.router.health())
            elif parsed.path == "/metrics":
                query = parse_qs(parsed.query)
                if query.get("format", [""])[0] == "json":
                    self._respond(self.router.merged_snapshot())
                else:
                    body = self.router.render_metrics().encode("utf-8")
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                    )
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
            elif parsed.path == "/releases":
                status, body = self.router.route_releases()
                self._respond_raw(status, body)
            elif parsed.path == "/query":
                query = parse_qs(parsed.query)
                pattern = query.get("pattern", [""])[0]
                release = query.get("release", [None])[0]
                self._respond(
                    {
                        "pattern": pattern,
                        "release": release or self.router.default_release,
                        "count": self.router.route_query(pattern, release),
                    }
                )
            else:
                self._error(f"unknown path {parsed.path!r}", 404)
        except RouterHTTPError as error:
            self._error(error.message, error.status)
        except Exception as error:  # noqa: BLE001 - JSON 500, not a raw traceback
            self._error(f"internal error: {error}", 500)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        raw = self._read_body()
        try:
            if self.path == "/mine":
                # Validation happens at the worker (identical handler code),
                # so error bodies relay verbatim without a router-side parse.
                status, body = self.router.route_mine(raw)
                self._respond_raw(status, body)
                return
            if self.path == "/admin/reload":
                reload_fn = self.router.reload_fn
                if reload_fn is None:
                    self._error("reload is not available", 503)
                else:
                    self._respond(reload_fn())
                return
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (ValueError, UnicodeDecodeError):
                self._error("request body is not valid JSON", 400)
                return
            if not isinstance(payload, dict):
                self._error("request body must be a JSON object", 400)
                return
            release = payload.get("release")
            if self.path == "/query":
                pattern = payload.get("pattern")
                if not isinstance(pattern, str):
                    self._error("'pattern' must be a string", 400)
                    return
                self._respond(
                    {
                        "pattern": pattern,
                        "release": release or self.router.default_release,
                        "count": self.router.route_query(pattern, release),
                    }
                )
            elif self.path == "/batch":
                patterns = payload.get("patterns")
                if not isinstance(patterns, list) or not all(
                    isinstance(p, str) for p in patterns
                ):
                    self._error("'patterns' must be a list of strings", 400)
                    return
                status, body = self.router.route_batch(
                    raw, payload, patterns, release
                )
                self._respond_raw(status, body)
            else:
                self._error(f"unknown path {self.path!r}", 404)
        except RouterHTTPError as error:
            self._error(error.message, error.status)
        except Exception as error:  # noqa: BLE001 - JSON 500, not a raw traceback
            self._error(f"internal error: {error}", 500)


def create_router_server(
    router: Router,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-run public-port server bound to ``host:port`` (port 0
    picks a free port; read it back from ``server.server_address``)."""
    server = ThreadingHTTPServer((host, port), _RouterHandler)
    server.router = router  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server
